"""Figure 10 — speedup when the base does NOT speculate on memory
dependences (loads wait for all preceding store addresses).

Two bars per program: RAW-based and RAW+RAR-based cloaking/bypassing with
selective invalidation.  Paper: speedups are "significantly higher (often
double)" than Figure 9 — RAW+RAR reaches +9.8% INT / +6.1% FP — with some
programs lower because the lengthened critical path is made of loads that
cloaking cannot attack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments import fig9
from repro.experiments.report import format_table, signed_pct
from repro.experiments.runner import experiment_parser, maybe_write_json
from repro.pipeline import ProcessorConfig
from repro.pipeline.recovery import RecoveryPolicy
from repro.core import CloakingMode

CONFIGS = (
    ("RAW", CloakingMode.RAW, RecoveryPolicy.SELECTIVE),
    ("RAW+RAR", CloakingMode.RAW_RAR, RecoveryPolicy.SELECTIVE),
)


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List["fig9.SpeedupRow"]:
    config = ProcessorConfig(memory_speculation=False)
    from repro.experiments.runner import select_workloads
    return [
        fig9._simulate_workload(workload, scale, config, configs=CONFIGS)
        for workload in select_workloads(workloads)
    ]


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List["fig9.SpeedupRow"]) -> str:
    table_rows = [
        [row.abbrev, f"{row.base_ipc:.2f}",
         signed_pct(row.speedups["RAW"]), signed_pct(row.speedups["RAW+RAR"])]
        for row in rows
    ]
    body = format_table(
        ["Ab.", "base IPC", "RAW", "RAW+RAR"], table_rows,
        title="Figure 10: speedup with no memory dependence speculation",
    )
    from repro.util.stats import harmonic_mean_speedup
    lines = [body, ""]
    for label in ("RAW", "RAW+RAR"):
        for class_label, predicate in (
            ("INT", lambda r: r.category == "int"),
            ("FP", lambda r: r.category == "fp"),
        ):
            values = [r.speedups[label] for r in rows if predicate(r)]
            if values:
                lines.append(
                    f"HM {label} {class_label}: "
                    f"{signed_pct(harmonic_mean_speedup(values))}"
                )
    lines.append("paper: RAW+RAR +9.8% INT / +6.1% FP")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
