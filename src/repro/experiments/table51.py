"""Table 5.1 — benchmark execution characteristics.

Reports dynamic instruction count, load fraction, store fraction and the
sampling ratio per program, next to the paper's values for the original
SPEC'95 runs.  Absolute instruction counts differ by design (scaled
synthetic kernels); the instruction-mix *shape* is the comparison target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)
from repro.trace.stats import collect_stats

#: The paper's Table 5.1: (IC in millions, loads, stores, sampling ratio).
PAPER_TABLE51 = {
    "go": (133.8, 0.209, 0.073, "N/A"),
    "m88": (196.3, 0.188, 0.096, "1:1"),
    "gcc": (316.9, 0.243, 0.175, "N/A"),
    "com": (153.8, 0.217, 0.135, "1:2"),
    "li": (206.5, 0.296, 0.176, "N/A"),
    "ijp": (129.6, 0.177, 0.087, "N/A"),
    "per": (176.8, 0.256, 0.166, "1:1"),
    "vor": (376.9, 0.263, 0.273, "N/A"),
    "tom": (329.1, 0.319, 0.088, "1:2"),
    "swm": (188.8, 0.270, 0.066, "1:2"),
    "su2": (279.9, 0.338, 0.101, "1:3"),
    "hyd": (1128.9, 0.297, 0.082, "1:10"),
    "mgd": (95.0, 0.466, 0.030, "N/A"),
    "apl": (168.9, 0.314, 0.079, "1:1"),
    "trb": (1666.6, 0.213, 0.146, "1:10"),
    "aps": (125.9, 0.314, 0.134, "N/A"),
    "fp*": (214.2, 0.488, 0.175, "1:2"),
    "wav": (290.8, 0.302, 0.130, "1:2"),
}


@dataclass
class CharacteristicsRow:
    abbrev: str
    spec_name: str
    instructions: int
    load_fraction: float
    store_fraction: float
    sampling: str


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[CharacteristicsRow]:
    """Measure execution characteristics for the selected workloads."""
    rows = []
    for workload in select_workloads(workloads):
        stats = collect_stats(workload.trace(scale=scale))
        rows.append(CharacteristicsRow(
            abbrev=workload.abbrev,
            spec_name=workload.spec_name,
            instructions=stats.instructions,
            load_fraction=stats.load_fraction,
            store_fraction=stats.store_fraction,
            sampling=workload.sampling,
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[CharacteristicsRow]) -> str:
    table_rows = []
    for row in rows:
        paper = PAPER_TABLE51.get(row.abbrev)
        paper_loads = pct(paper[1]) if paper else "-"
        paper_stores = pct(paper[2]) if paper else "-"
        table_rows.append([
            row.abbrev, row.spec_name, f"{row.instructions:,}",
            pct(row.load_fraction), paper_loads,
            pct(row.store_fraction), paper_stores,
            row.sampling,
        ])
    return format_table(
        ["Ab.", "Program", "IC", "Loads", "(paper)", "Stores", "(paper)", "SR"],
        table_rows,
        title="Table 5.1: Benchmark execution characteristics",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
