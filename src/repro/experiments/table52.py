"""Table 5.2 — cloaking/bypassing vs last-value load value prediction.

(The paper's text labels this table "Table 5.1" a second time; we call it
5.2.)  For every program: the fraction of loads that get a correct value
from cloaking/bypassing *but not* from a 16K fully-associative last-value
predictor (split into RAW and RAR), and vice versa.  Headline: for most
programs cloaking-only exceeds VP-only — the techniques are complementary
— with 104.hydro2d the prominent VP-favoured exception.

Configuration per Section 5.5: 16K DPNT, 128-entry DDT, 2K synonym file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import CloakingConfig, CloakingEngine, LoadOutcome
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)
from repro.predictors.value_prediction import LastValuePredictor


@dataclass
class OverlapRow:
    abbrev: str
    category: str
    loads: int
    cloak_only_raw: int    # correct via cloaking (RAW producer), VP wrong
    cloak_only_rar: int
    vp_only: int           # correct via VP, cloaking wrong or silent
    both: int

    def frac(self, count: int) -> float:
        return count / self.loads if self.loads else 0.0

    @property
    def cloak_only_total(self) -> float:
        return self.frac(self.cloak_only_raw + self.cloak_only_rar)


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[OverlapRow]:
    rows = []
    for workload in select_workloads(workloads):
        engine = CloakingEngine(CloakingConfig.paper_overlap())
        predictor = LastValuePredictor(capacity=16 * 1024)
        row = OverlapRow(workload.abbrev, workload.category, 0, 0, 0, 0, 0)
        for inst in workload.trace(scale=scale):
            outcome = engine.observe(inst)
            if not inst.is_load:
                continue
            row.loads += 1
            vp_correct = predictor.observe(inst.pc, inst.value)
            cloak_correct = outcome is not None and outcome.correct
            if cloak_correct and not vp_correct:
                if outcome == LoadOutcome.CORRECT_RAW:
                    row.cloak_only_raw += 1
                else:
                    row.cloak_only_rar += 1
            elif vp_correct and not cloak_correct:
                row.vp_only += 1
            elif vp_correct and cloak_correct:
                row.both += 1
        rows.append(row)
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[OverlapRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.abbrev,
            pct(row.frac(row.cloak_only_raw), 2),
            pct(row.frac(row.cloak_only_rar), 2),
            pct(row.cloak_only_total, 2),
            pct(row.frac(row.vp_only), 2),
            pct(row.frac(row.both), 2),
        ])
    return format_table(
        ["Ab.", "Cloak-only RAW", "Cloak-only RAR", "Cloak-only total",
         "VP-only", "Both"],
        table_rows,
        title=("Table 5.2: loads correct via cloaking/bypassing but not via a "
               "last-value predictor, and vice versa"),
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
