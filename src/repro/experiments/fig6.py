"""Figure 6 — cloaking coverage (a) and misspeculation rates (b).

The Section 5.3 accuracy study: infinite DPNT/SF, 128-entry DDT, and two
confidence mechanisms — the non-adaptive 1-bit (a rough coverage upper
bound) and the adaptive 2-bit automaton.  Headline claims: RAR adds ~20%
(integer) / ~30% (floating-point) correctly speculated loads on top of
RAW, and the adaptive predictor cuts misspeculation by almost an order of
magnitude at a minor coverage cost (paper misspeculation: 2.0% INT,
0.35% FP with the adaptive automaton).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import CloakingConfig, CloakingEngine
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    class_means,
    experiment_parser,
    maybe_write_json,
    select_workloads,
)
from repro.predictors.confidence import ConfidenceKind


@dataclass
class AccuracyRow:
    abbrev: str
    category: str
    confidence: str
    coverage_raw: float
    coverage_rar: float
    misspec_raw: float
    misspec_rar: float

    @property
    def coverage(self) -> float:
        return self.coverage_raw + self.coverage_rar

    @property
    def misspeculation(self) -> float:
        return self.misspec_raw + self.misspec_rar


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[AccuracyRow]:
    """Run both confidence mechanisms over the suite in one trace pass each."""
    rows = []
    for workload in select_workloads(workloads):
        engines = {
            ConfidenceKind.ONE_BIT: CloakingEngine(
                CloakingConfig.paper_accuracy(confidence=ConfidenceKind.ONE_BIT)),
            ConfidenceKind.TWO_BIT: CloakingEngine(
                CloakingConfig.paper_accuracy(confidence=ConfidenceKind.TWO_BIT)),
        }
        for inst in workload.trace(scale=scale):
            for engine in engines.values():
                engine.observe(inst)
        for kind, engine in engines.items():
            stats = engine.stats
            rows.append(AccuracyRow(
                abbrev=workload.abbrev,
                category=workload.category,
                confidence=kind.value,
                coverage_raw=stats.coverage_raw,
                coverage_rar=stats.coverage_rar,
                misspec_raw=stats.misspeculation_raw,
                misspec_rar=stats.misspeculation_rar,
            ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[AccuracyRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.abbrev, row.confidence,
            pct(row.coverage_raw), pct(row.coverage_rar), pct(row.coverage),
            pct(row.misspec_raw, 2), pct(row.misspec_rar, 2),
            pct(row.misspeculation, 2),
        ])
    body = format_table(
        ["Ab.", "Confidence", "cov RAW", "cov RAR", "cov total",
         "miss RAW", "miss RAR", "miss total"],
        table_rows,
        title="Figure 6: cloaking coverage and misspeculation per dependence type",
    )
    # Class means for the adaptive predictor (the paper's summary numbers).
    adaptive = [r for r in rows if r.confidence == ConfidenceKind.TWO_BIT.value]

    class _W:  # tiny adaptor for class_means
        def __init__(self, cat): self.is_integer = cat == "int"

    workloads = [_W(r.category) for r in adaptive]
    rar_int, rar_fp = class_means([r.coverage_rar for r in adaptive], workloads)
    miss_int, miss_fp = class_means([r.misspeculation for r in adaptive], workloads)
    summary = (
        f"\n2-bit adaptive means: additional RAR coverage "
        f"INT {pct(rar_int)} / FP {pct(rar_fp)} (paper ~20% / ~30%); "
        f"misspeculation INT {pct(miss_int, 2)} / FP {pct(miss_fp, 2)} "
        f"(paper 2.0% / 0.35%)"
    )
    return body + summary


def render_chart(rows: List[AccuracyRow]) -> str:
    """Figure 6(a) as stacked-style bars (adaptive predictor only)."""
    from repro.experiments.report import bar_chart

    adaptive = [r for r in rows if r.confidence == ConfidenceKind.TWO_BIT.value]
    labels = [r.abbrev for r in adaptive]
    return bar_chart(
        labels,
        [("RAW", [r.coverage_raw for r in adaptive]),
         ("RAR", [r.coverage_rar for r in adaptive]),
         ("tot", [r.coverage for r in adaptive])],
        title="Figure 6(a): cloaking coverage (2-bit adaptive)",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))
    if args.chart:
        print()
        print(render_chart(rows))


if __name__ == "__main__":
    main()
