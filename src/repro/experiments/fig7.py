"""Figure 7 — address locality (a) and value locality (b) breakdowns.

For every program: the fraction of loads exhibiting address/value locality
(same address/value as the previous execution of the same static load),
broken down by the dependence a 128-entry DDT detects (RAW / RAR / none),
shown next to cloaking coverage for the same run.  Headline observations:
many loads covered by cloaking do not exhibit address locality, and very
few loads exhibit address locality while having no visible dependence
(145.fpppp excepted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.columnar.backend import DEFAULT_BACKEND, get_backend
from repro.core import CloakingConfig, CloakingEngine
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)


@dataclass
class LocalityBreakdownRow:
    abbrev: str
    category: str
    # address locality fractions by detected-dependence bucket
    addr_raw: float
    addr_rar: float
    addr_none: float
    # value locality fractions by bucket
    value_raw: float
    value_rar: float
    value_none: float
    # cloaking coverage for comparison (right bar in the paper's plots)
    coverage_raw: float
    coverage_rar: float

    @property
    def address_locality(self) -> float:
        return self.addr_raw + self.addr_rar + self.addr_none

    @property
    def value_locality(self) -> float:
        return self.value_raw + self.value_rar + self.value_none

    @property
    def coverage(self) -> float:
        return self.coverage_raw + self.coverage_rar


def run(scale: float = 1.0, workloads: Optional[Sequence[str]] = None,
        backend: str = DEFAULT_BACKEND) -> List[LocalityBreakdownRow]:
    rows = []
    sim = get_backend(backend)
    for workload in select_workloads(workloads):
        # the locality stage may be vectorized; the cloaking engine (the
        # predict stage) always sees the per-instruction stream via ``tee``
        engine = CloakingEngine(CloakingConfig.paper_accuracy())
        analysis = sim.address_value_locality(workload, scale,
                                              tee=engine.observe)
        stats = engine.stats
        rows.append(LocalityBreakdownRow(
            abbrev=workload.abbrev,
            category=workload.category,
            addr_raw=analysis.address.fraction("raw"),
            addr_rar=analysis.address.fraction("rar"),
            addr_none=analysis.address.fraction("none"),
            value_raw=analysis.value.fraction("raw"),
            value_rar=analysis.value.fraction("rar"),
            value_none=analysis.value.fraction("none"),
            coverage_raw=stats.coverage_raw,
            coverage_rar=stats.coverage_rar,
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[LocalityBreakdownRow]) -> str:
    addr_rows = []
    value_rows = []
    for row in rows:
        addr_rows.append([
            row.abbrev, pct(row.addr_raw), pct(row.addr_rar),
            pct(row.addr_none), pct(row.address_locality), pct(row.coverage),
        ])
        value_rows.append([
            row.abbrev, pct(row.value_raw), pct(row.value_rar),
            pct(row.value_none), pct(row.value_locality), pct(row.coverage),
        ])
    part_a = format_table(
        ["Ab.", "RAW", "RAR", "no dep", "addr locality", "cloaking cov"],
        addr_rows, title="Figure 7(a): address locality breakdown",
    )
    part_b = format_table(
        ["Ab.", "RAW", "RAR", "no dep", "value locality", "cloaking cov"],
        value_rows, title="Figure 7(b): value locality breakdown",
    )
    return part_a + "\n\n" + part_b


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__, backends=True).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads,
               backend=args.backend)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
