"""Extension experiment — static dependence analysis vs the dynamic DDT.

The static analyzer (:mod:`repro.analysis`) derives, per kernel, the
may-alias RAR and RAW pair sets over static load/store PCs.  This
experiment replays each kernel's committed trace through an *infinite*
DDT — the ground truth the paper's Section 3 tables are built on — and
measures, per workload:

* **coverage**: the fraction of distinct dynamic (source PC, sink PC)
  pairs the static sets contain.  The static approximation is designed
  to be one-sided, so coverage should sit at (or very near) 100%; a drop
  means a kernel's address arithmetic escaped the analyzer's in-bounds
  assumptions — exactly the situation a fidelity claim needs to know
  about.
* **tightness**: the fraction of static pairs actually observed
  dynamically — how much the may-analysis over-approximates.

A new fidelity table alongside Table 5.1/5.2: the suite's dependence
structure validated from two independent directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis import analyze_program
from repro.dependence.ddt import DDT, DDTConfig, DependenceKind
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)

#: Maximum uncovered pairs echoed into a row (diagnostic breadcrumb).
MISS_LIMIT = 8


@dataclass
class StaticDDTRow:
    abbrev: str
    category: str
    static_rar: int          # static may-alias pair counts
    static_raw: int
    dyn_rar: int             # distinct dynamic pairs (infinite DDT)
    dyn_raw: int
    rar_coverage: float      # dynamic pairs present in the static set
    raw_coverage: float
    rar_tightness: float     # static pairs observed dynamically
    raw_tightness: float
    missing_rar: List[List[int]]   # up to MISS_LIMIT uncovered dynamic pairs
    missing_raw: List[List[int]]


def _dynamic_pairs(trace) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
    """Distinct (source_pc, sink_pc) pairs an unbounded DDT detects."""
    ddt = DDT(DDTConfig(size=None))
    rar: Set[Tuple[int, int]] = set()
    raw: Set[Tuple[int, int]] = set()
    for inst in trace:
        if inst.is_load:
            dep = ddt.observe_load(inst.pc, inst.word_addr)
            if dep is not None:
                pair = (dep.source_pc, dep.sink_pc)
                (rar if dep.kind == DependenceKind.RAR else raw).add(pair)
        elif inst.is_store:
            ddt.observe_store(inst.pc, inst.word_addr)
    return rar, raw


def _coverage(dynamic: Set[Tuple[int, int]],
              static: Set[Tuple[int, int]]) -> Tuple[float, List[List[int]]]:
    if not dynamic:
        return 1.0, []
    missing = sorted(dynamic - static)
    return 1.0 - len(missing) / len(dynamic), [
        list(p) for p in missing[:MISS_LIMIT]]


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[StaticDDTRow]:
    rows = []
    for workload in select_workloads(workloads):
        program = workload.program(scale, verify=True)
        report = analyze_program(program)
        static_rar = set(map(tuple, report.rar_pairs))
        static_raw = set(map(tuple, report.raw_pairs))
        dyn_rar, dyn_raw = _dynamic_pairs(workload.trace(scale=scale))
        rar_cov, missing_rar = _coverage(dyn_rar, static_rar)
        raw_cov, missing_raw = _coverage(dyn_raw, static_raw)
        rows.append(StaticDDTRow(
            abbrev=workload.abbrev,
            category=workload.category,
            static_rar=len(static_rar),
            static_raw=len(static_raw),
            dyn_rar=len(dyn_rar),
            dyn_raw=len(dyn_raw),
            rar_coverage=rar_cov,
            raw_coverage=raw_cov,
            rar_tightness=(len(dyn_rar & static_rar) / len(static_rar)
                           if static_rar else 1.0),
            raw_tightness=(len(dyn_raw & static_raw) / len(static_raw)
                           if static_raw else 1.0),
            missing_rar=missing_rar,
            missing_raw=missing_raw,
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[StaticDDTRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.abbrev,
            f"{row.static_rar:,}", f"{row.dyn_rar:,}", pct(row.rar_coverage),
            pct(row.rar_tightness),
            f"{row.static_raw:,}", f"{row.dyn_raw:,}", pct(row.raw_coverage),
            pct(row.raw_tightness),
        ])
    headers = ["Ab.", "RAR st.", "RAR dyn", "cover", "tight",
               "RAW st.", "RAW dyn", "cover", "tight"]
    lines = [format_table(
        headers, table_rows,
        title=("Extension: static may-alias pair sets vs the dynamic DDT "
               "(coverage = dynamic pairs the static analysis predicts)"))]
    gaps = [row for row in rows if row.missing_rar or row.missing_raw]
    for row in gaps:
        for kind, missing in (("RAR", row.missing_rar),
                              ("RAW", row.missing_raw)):
            if missing:
                pairs = ", ".join(f"({a:#x}->{b:#x})" for a, b in missing)
                lines.append(f"  {row.abbrev}: uncovered {kind}: {pairs}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
