"""Extension experiment — static distance bounds vs dynamic measurements.

The distance pass (:mod:`repro.analysis.distance`) publishes, per static
load PC, bounds on RAR/RAW dependence distance (the paper's Fig. 2 /
Fig. 7 address-window metric), synonym-set membership, and a static upper
bound on achievable cloaking/bypassing coverage.  This experiment replays
each kernel's committed trace through an *infinite* DDT plus a
:class:`~repro.dependence.distance.RecencyRanker` and checks
**soundness** — no dynamic observation may escape the static
over-approximation:

1. every detected dynamic (source PC, sink PC) pair is in the static
   may-alias pair set of its kind;
2. every observed dependence distance is ≤ the sink PC's static bound
   (an unbounded ``None`` bound is trivially satisfied);
3. both endpoints of every detected pair share a static synonym set;
4. every detected sink PC is statically *coverable*, so the
   execution-weighted detected fraction is ≤ the weighted static
   coverage upper bound.

It also reports **tightness** — how loose the over-approximation is:
pair-count inflation (static / dynamic) and mean distance-bound
inflation (static bound / max observed) over finitely-bounded sinks.

Any soundness violation is a correctness bug in the static passes; the
harness entry point (``run_one``) raises so a suite-wide harness run
turns red, and the CLI exits 1.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import analyze_program
from repro.dependence.ddt import DDT, DDTConfig, DependenceKind
from repro.dependence.distance import RecencyRanker
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)

#: Maximum violation records echoed into a row (the count is exact).
VIOLATION_LIMIT = 5


class SoundnessViolation(AssertionError):
    """A dynamic observation escaped the static over-approximation."""


@dataclass
class StaticDistanceRow:
    abbrev: str
    category: str
    dyn_loads: int                    # committed loads replayed
    detected: int                     # loads with an (infinite-DDT) dep
    detected_fraction: float
    coverage_bound: float             # execution-weighted static bound
    static_rar: int                   # pair-set sizes, word granular
    dyn_rar: int
    static_raw: int
    dyn_raw: int
    rar_pair_inflation: float         # static / max(dynamic, 1)
    raw_pair_inflation: float
    rar_distance_inflation: Optional[float]  # mean bound / max observed
    raw_distance_inflation: Optional[float]  # (None: nothing finite seen)
    violation_count: int = 0
    violations: List[dict] = field(default_factory=list)  # ≤ VIOLATION_LIMIT


class _Violations:
    """Exact count, capped samples."""

    def __init__(self) -> None:
        self.count = 0
        self.samples: List[dict] = []

    def add(self, check: str, **detail) -> None:
        self.count += 1
        if len(self.samples) < VIOLATION_LIMIT:
            self.samples.append({"check": check, **detail})


def _bound_of(pcd, kind: str) -> Optional[int]:
    return pcd.rar_bound if kind == "rar" else pcd.raw_bound


def _replay(trace, report, violations: "_Violations"):
    """Replay a committed trace against the static report.

    Returns ``(loads, detected, exec_loads, dyn_pairs, max_observed)``
    where ``dyn_pairs[kind]`` is the distinct pair set and
    ``max_observed[(kind, sink_pc)]`` the largest distance seen.
    """
    dist = report.distances
    graph = dist.graph
    static_pairs = {
        "rar": set(map(tuple, report.rar_pairs)),
        "raw": set(map(tuple, report.raw_pairs)),
    }
    ddt = DDT(DDTConfig(size=None))
    ranker = RecencyRanker()
    dyn_pairs: Dict[str, Set[Tuple[int, int]]] = {"rar": set(), "raw": set()}
    max_observed: Dict[Tuple[str, int], int] = {}
    exec_loads: Dict[int, int] = {}
    loads = detected = 0

    for inst in trace:
        if inst.is_load:
            loads += 1
            exec_loads[inst.pc] = exec_loads.get(inst.pc, 0) + 1
            rank = ranker.touch(inst.word_addr)
            dep = ddt.observe_load(inst.pc, inst.word_addr)
            if dep is None:
                continue
            detected += 1
            kind = "rar" if dep.kind == DependenceKind.RAR else "raw"
            pair = (dep.source_pc, dep.sink_pc)
            dyn_pairs[kind].add(pair)
            distance = rank if rank is not None else 0
            key = (kind, dep.sink_pc)
            max_observed[key] = max(max_observed.get(key, 0), distance)

            if pair not in static_pairs[kind]:
                violations.add(
                    "pair", kind=kind,
                    source=f"{dep.source_pc:#x}", sink=f"{dep.sink_pc:#x}")
            pcd = dist.per_pc.get(dep.sink_pc)
            if pcd is None:
                violations.add("pc", kind=kind, sink=f"{dep.sink_pc:#x}")
            else:
                bound = _bound_of(pcd, kind)
                if bound is not None and distance > bound:
                    violations.add(
                        "distance", kind=kind, sink=f"{dep.sink_pc:#x}",
                        observed=distance, bound=bound)
            src_set = graph.set_of(dep.source_pc)
            sink_set = graph.set_of(dep.sink_pc)
            if src_set is None or src_set != sink_set:
                violations.add(
                    "synonym", kind=kind,
                    source=f"{dep.source_pc:#x}", sink=f"{dep.sink_pc:#x}",
                    source_set=src_set, sink_set=sink_set)
            if dep.sink_pc not in dist.coverable:
                violations.add("coverage", kind=kind,
                               sink=f"{dep.sink_pc:#x}")
        elif inst.is_store:
            ranker.touch(inst.word_addr)
            ddt.observe_store(inst.pc, inst.word_addr)
    return loads, detected, exec_loads, dyn_pairs, max_observed


def _distance_inflation(dist, max_observed: Dict[Tuple[str, int], int],
                        kind: str) -> Optional[float]:
    """Mean static-bound / max-observed over finitely-bounded sinks."""
    ratios = []
    for (k, sink), observed in max_observed.items():
        if k != kind:
            continue
        pcd = dist.per_pc.get(sink)
        bound = _bound_of(pcd, kind) if pcd is not None else None
        if bound is not None:
            ratios.append(bound / max(observed, 1))
    return sum(ratios) / len(ratios) if ratios else None


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[StaticDistanceRow]:
    rows = []
    for workload in select_workloads(workloads):
        program = workload.program(scale, verify=True)
        report = analyze_program(program, distances=True)
        dist = report.distances
        violations = _Violations()
        loads, detected, exec_loads, dyn_pairs, max_observed = _replay(
            workload.trace(scale=scale), report, violations)

        coverable_weight = sum(
            count for pc, count in exec_loads.items()
            if pc in dist.coverable)
        coverage_bound = coverable_weight / loads if loads else 0.0
        detected_fraction = detected / loads if loads else 0.0
        if detected_fraction > coverage_bound + 1e-12:
            violations.add("coverage_bound",
                           detected=detected_fraction,
                           bound=coverage_bound)

        static_rar = len(report.rar_pairs)
        static_raw = len(report.raw_pairs)
        rows.append(StaticDistanceRow(
            abbrev=workload.abbrev,
            category=workload.category,
            dyn_loads=loads,
            detected=detected,
            detected_fraction=detected_fraction,
            coverage_bound=coverage_bound,
            static_rar=static_rar,
            dyn_rar=len(dyn_pairs["rar"]),
            static_raw=static_raw,
            dyn_raw=len(dyn_pairs["raw"]),
            rar_pair_inflation=static_rar / max(len(dyn_pairs["rar"]), 1),
            raw_pair_inflation=static_raw / max(len(dyn_pairs["raw"]), 1),
            rar_distance_inflation=_distance_inflation(
                dist, max_observed, "rar"),
            raw_distance_inflation=_distance_inflation(
                dist, max_observed, "raw"),
            violation_count=violations.count,
            violations=violations.samples,
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point.

    Raises :class:`SoundnessViolation` when the dynamic replay escapes
    the static approximation, so a harness run over this artefact is a
    suite-wide soundness gate.
    """
    rows = run(scale=scale, workloads=[workload], **kwargs)
    for row in rows:
        if row.violation_count:
            samples = "; ".join(str(v) for v in row.violations)
            raise SoundnessViolation(
                f"{row.abbrev}: {row.violation_count} dynamic observation(s) "
                f"outside the static may-set/bounds — {samples}")
    return rows


def _ratio(value: Optional[float]) -> str:
    return "—" if value is None else f"{value:.1f}×"


def render(rows: List[StaticDistanceRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.abbrev,
            f"{row.dyn_loads:,}",
            pct(row.detected_fraction),
            pct(row.coverage_bound),
            f"{row.dyn_rar}/{row.static_rar}",
            _ratio(row.rar_distance_inflation),
            f"{row.dyn_raw}/{row.static_raw}",
            _ratio(row.raw_distance_inflation),
            str(row.violation_count),
        ])
    headers = ["Ab.", "loads", "det", "≤cover", "RAR d/s", "dist×",
               "RAW d/s", "dist×", "viol"]
    lines = [format_table(
        headers, table_rows,
        title=("Extension: dynamic dependence distances vs static bounds "
               "(det ≤ cover is the weighted soundness check; dist× = mean "
               "static-over-dynamic distance inflation)"))]
    for row in rows:
        for violation in row.violations:
            lines.append(f"  {row.abbrev}: VIOLATION {violation}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))
    return 1 if any(row.violation_count for row in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
