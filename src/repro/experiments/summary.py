"""Run the complete evaluation and emit one combined report.

``python -m repro.experiments.summary --scale 0.2`` regenerates every
table and figure (plus the hybrid extension) at the given scale and prints
them in paper order, with the headline comparisons at the end.

Execution goes through :mod:`repro.harness`: the evaluation decomposes
into per-(artefact, workload) jobs, so ``--workers N`` fans the grid out
over worker processes while the default (``--workers 0``) runs the same
jobs inline, serially — parallel and serial output agree by construction.
``python -m repro.harness run summary`` adds the content-addressed result
store on top, making reruns incremental.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments import fig9
from repro.experiments.report import signed_pct
from repro.experiments.runner import experiment_parser
from repro.harness.api import SweepOutcome, run_artefacts
from repro.harness.jobs import render_rows
from repro.harness.registry import ARTEFACTS as _REGISTRY

#: (title, artefact name, scale multiplier) — timing experiments get a
#: smaller default because the cycle-level model is ~50x the cost per
#: instruction.  Derived from the harness registry (paper order).
ARTEFACTS = tuple(
    (spec.title, spec.name, spec.summary_multiplier)
    for spec in _REGISTRY.values()
    if spec.summary_multiplier is not None
)


def sweep(scale: float = 0.2, workloads: Optional[Sequence[str]] = None,
          **harness_kwargs) -> SweepOutcome:
    """Run every summary artefact through the harness (one pooled pass)."""
    requests = [(name, scale * multiplier)
                for _, name, multiplier in ARTEFACTS]
    return run_artefacts(requests, workloads, **harness_kwargs)


def compose_sections(outcome: SweepOutcome) -> List[str]:
    """Render a sweep outcome into the report's ordered sections."""
    sections = []
    for title, name, _ in ARTEFACTS:
        rows = outcome.rows(name)
        # the harness owns dynamic module dispatch (CK101): it is outside
        # the code fingerprint, and the registry maps name -> module
        rendered = render_rows(name, rows)
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{rendered}")
        if title == "Figure 9":
            sections.append(_headline(rows))
    return sections


def run_all(scale: float = 0.2,
            workloads: Optional[Sequence[str]] = None,
            workers: int = 0, **harness_kwargs) -> List[str]:
    """Run every artefact; returns the rendered sections."""
    return compose_sections(
        sweep(scale=scale, workloads=workloads, workers=workers,
              **harness_kwargs))


def _headline(fig9_rows) -> str:
    summary = fig9.summarize(fig9_rows)

    def fmt(config: str, cls: str) -> str:
        value = summary[config].get(cls)
        return signed_pct(value) if value is not None else "n/a"

    return (
        "HEADLINE (Figure 9, harmonic means, selective invalidation):\n"
        f"  RAW-based cloaking/bypassing:     "
        f"INT {fmt('selective/RAW', 'INT')}  FP {fmt('selective/RAW', 'FP')}"
        "   (paper +4.28% / +3.20%)\n"
        f"  RAW+RAR (this paper's technique): "
        f"INT {fmt('selective/RAW+RAR', 'INT')}"
        f"  FP {fmt('selective/RAW+RAR', 'FP')}"
        "   (paper +6.44% / +4.66%)"
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = experiment_parser(__doc__)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the sweep (default: 0 = serial inline)",
    )
    args = parser.parse_args(argv)
    sections = run_all(scale=args.scale, workloads=args.workloads,
                       workers=args.workers)
    for section in sections:
        print(section)
        print()
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps({"sections": sections}, indent=2) + "\n",
            encoding="utf-8")


if __name__ == "__main__":
    main()
