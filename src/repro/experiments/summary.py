"""Run the complete evaluation and emit one combined report.

``python -m repro.experiments.summary --scale 0.2`` regenerates every
table and figure (plus the hybrid extension) at the given scale and prints
them in paper order, with the headline comparisons at the end.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.experiments import (
    ext_distance,
    ext_hybrid,
    fig2,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    table51,
    table52,
)
from repro.experiments.report import signed_pct
from repro.experiments.runner import experiment_parser

#: (title, module, scale multiplier) — timing experiments get a smaller
#: default because the cycle-level model is ~50x the cost per instruction.
ARTEFACTS = (
    ("Table 5.1", table51, 1.0),
    ("Figure 2", fig2, 1.0),
    ("Figure 5", fig5, 1.0),
    ("Figure 6", fig6, 1.0),
    ("Figure 7", fig7, 1.0),
    ("Table 5.2", table52, 1.0),
    ("Figure 9", fig9, 0.25),
    ("Figure 10", fig10, 0.25),
    ("Extension: hybrid", ext_hybrid, 1.0),
    ("Extension: distances", ext_distance, 1.0),
)


def run_all(scale: float = 0.2,
            workloads: Optional[Sequence[str]] = None) -> List[str]:
    """Run every artefact; returns the rendered sections."""
    sections = []
    for title, module, multiplier in ARTEFACTS:
        start = time.time()
        rows = module.run(scale=scale * multiplier, workloads=workloads)
        rendered = module.render(rows)
        elapsed = time.time() - start
        sections.append(f"{'=' * 72}\n{title}  ({elapsed:.1f}s)\n{'=' * 72}\n"
                        f"{rendered}")
        if title == "Figure 9":
            sections.append(_headline(rows))
    return sections


def _headline(fig9_rows) -> str:
    summary = fig9.summarize(fig9_rows)

    def fmt(config: str, cls: str) -> str:
        value = summary[config].get(cls)
        return signed_pct(value) if value is not None else "n/a"

    return (
        "HEADLINE (Figure 9, harmonic means, selective invalidation):\n"
        f"  RAW-based cloaking/bypassing:     "
        f"INT {fmt('selective/RAW', 'INT')}  FP {fmt('selective/RAW', 'FP')}"
        "   (paper +4.28% / +3.20%)\n"
        f"  RAW+RAR (this paper's technique): "
        f"INT {fmt('selective/RAW+RAR', 'INT')}"
        f"  FP {fmt('selective/RAW+RAR', 'FP')}"
        "   (paper +6.44% / +4.66%)"
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = experiment_parser(__doc__)
    args = parser.parse_args(argv)
    for section in run_all(scale=args.scale, workloads=args.workloads):
        print(section)
        print()


if __name__ == "__main__":
    main()
