"""Figure 5 — fraction of loads with RAW or RAR dependences vs DDT size.

Sweeps DDT sizes 32..2K (powers of two, LRU) and reports, per program, the
fraction of committed loads whose RAW or RAR dependence is visible.
Headline shapes: RAW roughly twice RAR for the integer codes at small
DDTs, roles reversed for the floating-point codes, and a ~128-entry DDT
already captures most of what larger tables capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.columnar.backend import DEFAULT_BACKEND, get_backend
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)

DDT_SIZES: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048)


@dataclass
class SweepRow:
    abbrev: str
    category: str
    ddt_size: int
    raw_fraction: float
    rar_fraction: float

    @property
    def total(self) -> float:
        return self.raw_fraction + self.rar_fraction


def run(scale: float = 1.0, workloads: Optional[Sequence[str]] = None,
        sizes: Sequence[int] = DDT_SIZES,
        backend: str = DEFAULT_BACKEND) -> List[SweepRow]:
    """One trace pass per workload drives every DDT size simultaneously."""
    rows = []
    sim = get_backend(backend)
    for workload in select_workloads(workloads):
        for profile in sim.ddt_profiles(workload, scale, list(sizes)):
            rows.append(SweepRow(
                abbrev=workload.abbrev,
                category=workload.category,
                ddt_size=profile.config.size,
                raw_fraction=profile.raw_fraction,
                rar_fraction=profile.rar_fraction,
            ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[SweepRow]) -> str:
    by_workload: Dict[str, List[SweepRow]] = {}
    for row in rows:
        by_workload.setdefault(row.abbrev, []).append(row)
    table_rows = []
    sizes = sorted({row.ddt_size for row in rows})
    for abbrev, workload_rows in by_workload.items():
        by_size = {r.ddt_size: r for r in workload_rows}
        cells = [abbrev]
        for size in sizes:
            r = by_size[size]
            cells.append(f"{pct(r.raw_fraction)}/{pct(r.rar_fraction)}")
        table_rows.append(cells)
    return format_table(
        ["Ab."] + [f"DDT {s} (RAW/RAR)" for s in sizes],
        table_rows,
        title="Figure 5: loads with visible RAW/RAR dependences vs DDT size",
    )


def render_chart(rows: List[SweepRow], ddt_size: int = 128) -> str:
    """One DDT size as grouped bars (the paper plots all sizes; pick one)."""
    from repro.experiments.report import bar_chart

    at_size = [r for r in rows if r.ddt_size == ddt_size]
    return bar_chart(
        [r.abbrev for r in at_size],
        [("RAW", [r.raw_fraction for r in at_size]),
         ("RAR", [r.rar_fraction for r in at_size])],
        title=f"Figure 5 (DDT {ddt_size}): loads with visible dependences",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__, backends=True).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads,
               backend=args.backend)
    maybe_write_json(args, rows)
    print(render(rows))
    if args.chart:
        print()
        print(render_chart(rows))


if __name__ == "__main__":
    main()
