"""Extension experiment — a wider value-predictor comparison.

Section 5.5 compares cloaking against last-value prediction only, noting
that "context-based value predictors could be used to increase load value
prediction coverage".  This harness adds a stride predictor to the
comparison: per program, the fraction of loads correctly predicted by
last-value, by stride, and by cloaking/bypassing, plus the fraction only
cloaking gets right against the *stronger* VP (stride) — a harder version
of Table 5.2's complementarity claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import CloakingConfig, CloakingEngine
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)
from repro.predictors.stride import StrideValuePredictor
from repro.predictors.value_prediction import LastValuePredictor


@dataclass
class PredictorRow:
    abbrev: str
    category: str
    loads: int
    last_value_correct: int
    stride_correct: int
    cloaking_correct: int
    cloak_only_vs_stride: int   # cloaking right, stride wrong

    def frac(self, count: int) -> float:
        return count / self.loads if self.loads else 0.0


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[PredictorRow]:
    rows = []
    for workload in select_workloads(workloads):
        last_value = LastValuePredictor()
        stride = StrideValuePredictor()
        engine = CloakingEngine(CloakingConfig.paper_overlap())
        row = PredictorRow(workload.abbrev, workload.category, 0, 0, 0, 0, 0)
        for inst in workload.trace(scale=scale):
            outcome = engine.observe(inst)
            if not inst.is_load:
                continue
            row.loads += 1
            lv_hit = last_value.observe(inst.pc, inst.value)
            st_hit = stride.observe(inst.pc, inst.value)
            cloak_hit = outcome is not None and outcome.correct
            row.last_value_correct += lv_hit
            row.stride_correct += st_hit
            row.cloaking_correct += cloak_hit
            if cloak_hit and not st_hit:
                row.cloak_only_vs_stride += 1
        rows.append(row)
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[PredictorRow]) -> str:
    table_rows = [
        [row.abbrev,
         pct(row.frac(row.last_value_correct)),
         pct(row.frac(row.stride_correct)),
         pct(row.frac(row.cloaking_correct)),
         pct(row.frac(row.cloak_only_vs_stride))]
        for row in rows
    ]
    return format_table(
        ["Ab.", "last-value", "stride", "cloaking", "cloak-only vs stride"],
        table_rows,
        title=("Extension: value-predictor comparison "
               "(fractions of all loads correctly predicted)"),
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
