"""Plain-text report formatting shared by the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) if i else cell.ljust(w)
                               for i, (cell, w) in enumerate(zip(row, widths))))
    return "\n".join(lines)


def pct(fraction: float, digits: int = 1) -> str:
    """``0.1234`` → ``"12.3%"``."""
    return f"{fraction * 100.0:.{digits}f}%"


def signed_pct(ratio: float, digits: int = 2) -> str:
    """A speedup ratio (1.05) as a signed percentage ("+5.00%")."""
    return f"{(ratio - 1.0) * 100.0:+.{digits}f}%"


def bar_chart(
    labels: Sequence[str],
    series: Sequence[tuple],
    width: int = 50,
    max_value: float = 1.0,
    title: str = "",
) -> str:
    """Render grouped horizontal bars, one group per label.

    ``series`` is a sequence of ``(series_name, values)`` where each values
    sequence aligns with ``labels``.  Fractions in ``[0, max_value]`` map
    onto ``width`` characters — a terminal rendition of the paper's
    stacked-bar figures.
    """
    if not series:
        raise ValueError("bar_chart needs at least one series")
    for name, values in series:
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    name_width = max(len(name) for name, _ in series)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series):
            value = values[i]
            filled = max(0, min(width, round(width * value / max_value)))
            prefix = label.ljust(label_width) if j == 0 else " " * label_width
            lines.append(
                f"{prefix}  {name.ljust(name_width)} "
                f"|{'#' * filled}{' ' * (width - filled)}| {value * 100:5.1f}%"
            )
    return "\n".join(lines)
