"""The reproduction report card.

DESIGN.md §3 commits to a list of *shape criteria* — orderings and
magnitude classes from the paper that the reproduction must exhibit.  This
harness measures every criterion in one run and grades it PASS/FAIL, so
the claim "the shapes reproduce" is checked by code rather than prose.

Run with ``python -m repro report_card [--scale S]``.  Criteria:

(i)    RAR adds substantial coverage on top of RAW; more for FP than INT
       in relative terms.
(ii)   RAW dominates INT visibility at a 128-entry DDT; RAR dominates FP.
(iii)  The 2-bit adaptive predictor cuts misspeculation by ≥5x vs the
       non-adaptive 1-bit, at ≤20% coverage cost.
(iv)   Selective invalidation outperforms squash invalidation (HM).
(v)    RAW+RAR speedup ≥ RAW speedup (HM, selective).
(vi)   Speedups grow when the base does not speculate on memory
       dependences (INT class).
(vii)  Cloaking-only coverage exceeds VP-only coverage for most programs.
(viii) RAR dependence locality(4) exceeds 70% for most programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import fig9
from repro.experiments.report import format_table
from repro.experiments.runner import experiment_parser
from repro.harness.api import rows_for
from repro.predictors.confidence import ConfidenceKind
from repro.util.stats import harmonic_mean_speedup


@dataclass
class Criterion:
    ident: str
    description: str
    measured: str
    passed: bool

    @property
    def verdict(self) -> str:
        return "PASS" if self.passed else "FAIL"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run(scale: float = 0.1, timing_scale: Optional[float] = None,
        workloads: Optional[Sequence[str]] = None,
        **harness_kwargs) -> List[Criterion]:
    """Measure every shape criterion; returns the graded list.

    Experiment rows come through :func:`repro.harness.api.rows_for`, so
    ``workers=N`` parallelizes each grid and ``store=ResultStore(...)``
    makes repeated gradings incremental.
    """
    timing_scale = timing_scale if timing_scale is not None else scale / 2
    criteria: List[Criterion] = []

    # --- accuracy-side experiments -------------------------------------
    fig6_rows = rows_for("fig6", scale, workloads, **harness_kwargs)
    adaptive = [r for r in fig6_rows
                if r.confidence == ConfidenceKind.TWO_BIT.value]
    one_bit = [r for r in fig6_rows
               if r.confidence == ConfidenceKind.ONE_BIT.value]
    int_rar = _mean([r.coverage_rar for r in adaptive if r.category == "int"])
    fp_rar = _mean([r.coverage_rar for r in adaptive if r.category == "fp"])
    criteria.append(Criterion(
        "i", "RAR adds coverage; FP gains more than INT",
        f"INT +{int_rar:.1%}, FP +{fp_rar:.1%}",
        int_rar > 0.05 and fp_rar > int_rar,
    ))

    fig5_rows = rows_for("fig5", scale, workloads, {"sizes": (128,)},
                         **harness_kwargs)
    int_rows = [r for r in fig5_rows if r.category == "int"]
    fp_rows = [r for r in fig5_rows if r.category == "fp"]
    int_raw = _mean([r.raw_fraction for r in int_rows])
    int_rar_vis = _mean([r.rar_fraction for r in int_rows])
    fp_raw = _mean([r.raw_fraction for r in fp_rows])
    fp_rar_vis = _mean([r.rar_fraction for r in fp_rows])
    criteria.append(Criterion(
        "ii", "INT leans RAW at DDT=128; FP roles reversed",
        f"INT {int_raw:.1%} RAW vs {int_rar_vis:.1%} RAR; "
        f"FP {fp_raw:.1%} vs {fp_rar_vis:.1%}",
        int_raw > int_rar_vis and fp_rar_vis > fp_raw,
    ))

    miss_adaptive = _mean([r.misspeculation for r in adaptive])
    miss_one_bit = _mean([r.misspeculation for r in one_bit])
    cov_adaptive = _mean([r.coverage for r in adaptive])
    cov_one_bit = _mean([r.coverage for r in one_bit])
    ratio = miss_one_bit / miss_adaptive if miss_adaptive else float("inf")
    criteria.append(Criterion(
        "iii", "adaptive cuts misspeculation >=5x at <=20% coverage cost",
        f"misspec {miss_one_bit:.2%} -> {miss_adaptive:.2%} ({ratio:.0f}x), "
        f"coverage {cov_one_bit:.1%} -> {cov_adaptive:.1%}",
        ratio >= 5 and cov_adaptive >= 0.8 * cov_one_bit,
    ))

    table52_rows = rows_for("table52", scale, workloads, **harness_kwargs)
    cloak_favoured = sum(1 for r in table52_rows
                         if r.cloak_only_total > r.frac(r.vp_only))
    criteria.append(Criterion(
        "vii", "cloaking-only exceeds VP-only for most programs",
        f"{cloak_favoured}/{len(table52_rows)} programs cloak-favoured",
        cloak_favoured > len(table52_rows) / 2,
    ))

    fig2_rows = [r for r in rows_for("fig2", scale, workloads,
                                     **harness_kwargs)
                 if r.window == "infinite" and r.sink_loads]
    high_locality = sum(1 for r in fig2_rows if r.locality[3] > 0.7)
    criteria.append(Criterion(
        "viii", "RAR locality(4) > 70% for most programs",
        f"{high_locality}/{len(fig2_rows)} programs above 70%",
        high_locality >= 0.7 * len(fig2_rows),
    ))

    # --- timing-side experiments ----------------------------------------
    fig9_rows = rows_for("fig9", timing_scale, workloads, **harness_kwargs)
    summary = fig9.summarize(fig9_rows)
    sel = summary["selective/RAW+RAR"]["ALL"]
    squ = summary["squash/RAW+RAR"]["ALL"]
    criteria.append(Criterion(
        "iv", "selective invalidation beats squash (HM, RAW+RAR)",
        f"selective {sel - 1:+.2%} vs squash {squ - 1:+.2%}",
        sel > squ,
    ))
    sel_raw = summary["selective/RAW"]["ALL"]
    criteria.append(Criterion(
        "v", "RAW+RAR speedup >= RAW speedup (HM, selective)",
        f"RAW+RAR {sel - 1:+.2%} vs RAW {sel_raw - 1:+.2%}",
        sel >= sel_raw - 0.002,
    ))

    fig10_rows = rows_for("fig10", timing_scale, workloads,
                          **harness_kwargs)
    int9 = summary["selective/RAW+RAR"].get("INT")
    int10_values = [r.speedups["RAW+RAR"] for r in fig10_rows
                    if r.category == "int"]
    if int9 is not None and int10_values:
        int10 = harmonic_mean_speedup(int10_values)
        criteria.append(Criterion(
            "vi", "no-spec base amplifies INT speedups",
            f"Fig9 INT {int9 - 1:+.2%} -> Fig10 INT {int10 - 1:+.2%}",
            int10 > int9,
        ))

    return criteria


def render(criteria: List[Criterion]) -> str:
    rows = [[c.ident, c.verdict, c.description, c.measured]
            for c in criteria]
    passed = sum(1 for c in criteria if c.passed)
    body = format_table(
        ["#", "verdict", "criterion", "measured"], rows,
        title="Reproduction report card (DESIGN.md shape criteria)",
    )
    return f"{body}\n\n{passed}/{len(criteria)} criteria PASS"


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = experiment_parser(__doc__)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes per experiment grid (default: serial)",
    )
    args = parser.parse_args(argv)
    criteria = run(scale=args.scale, workloads=args.workloads,
                   workers=args.workers)
    print(render(criteria))
    if args.json:
        from repro.harness.store import write_rows_json

        write_rows_json(args.json, criteria)


if __name__ == "__main__":
    main()
