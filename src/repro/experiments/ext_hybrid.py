"""Extension experiment — hybrid cloaking + value prediction.

Not a paper artefact: the paper's Section 5.5 / conclusion *suggest* a
synergy between cloaking/bypassing and load value prediction ("these
observations suggest a potential synergy of the two techniques"); this
harness quantifies it.  For every program it reports coverage of: cloaking
alone, a confidence-gated last-value predictor alone, and the hybrid that
consults cloaking first and falls back to the value predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import CloakingConfig, CloakingEngine
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)
from repro.predictors.hybrid import HybridLoadPredictor
from repro.predictors.value_prediction import LastValuePredictor


@dataclass
class HybridRow:
    abbrev: str
    category: str
    cloaking_coverage: float
    vp_hit_rate: float
    hybrid_coverage: float
    hybrid_misspec: float

    @property
    def gain_over_cloaking(self) -> float:
        return self.hybrid_coverage - self.cloaking_coverage


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[HybridRow]:
    rows = []
    for workload in select_workloads(workloads):
        cloak = CloakingEngine(CloakingConfig.paper_overlap())
        vp = LastValuePredictor()
        hybrid = HybridLoadPredictor()
        loads = vp_correct = 0
        for inst in workload.trace(scale=scale):
            cloak.observe(inst)
            hybrid.observe(inst)
            if inst.is_load:
                loads += 1
                vp_correct += vp.observe(inst.pc, inst.value)
        rows.append(HybridRow(
            abbrev=workload.abbrev,
            category=workload.category,
            cloaking_coverage=cloak.stats.coverage,
            vp_hit_rate=vp_correct / loads if loads else 0.0,
            hybrid_coverage=hybrid.stats.coverage,
            hybrid_misspec=hybrid.stats.misspeculation_rate,
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[HybridRow]) -> str:
    table_rows = [
        [row.abbrev, pct(row.cloaking_coverage), pct(row.vp_hit_rate),
         pct(row.hybrid_coverage), pct(row.gain_over_cloaking),
         pct(row.hybrid_misspec, 2)]
        for row in rows
    ]
    return format_table(
        ["Ab.", "cloaking", "last-value VP", "hybrid", "gain", "hybrid miss"],
        table_rows,
        title=("Extension: hybrid cloaking + value prediction "
               "(cloaking first, confidence-gated VP fallback)"),
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
