"""Experiment harnesses reproducing every table and figure of the paper.

One module per evaluation artefact, each runnable as
``python -m repro.experiments.<name> [--scale S]``:

=============  =======================================================
Module         Paper artefact
=============  =======================================================
``table51``    Table 5.1 — benchmark execution characteristics
``fig2``       Figure 2 — RAR memory dependence locality (n = 1..4)
``fig5``       Figure 5 — loads with RAW/RAR dependences vs DDT size
``fig6``       Figure 6 — cloaking coverage and misspeculation rates
``fig7``       Figure 7 — address / value locality breakdowns
``table52``    Table 5.2 — cloaking/bypassing vs load value prediction
``fig9``       Figure 9 — speedup with naive memory dep. speculation
``fig10``      Figure 10 — speedup with no memory dep. speculation
=============  =======================================================

All harnesses accept a ``scale`` factor (1.0 = the standard workload
size of a few hundred thousand dynamic instructions per program) and an
optional workload subset, and return plain data structures so tests and
benchmarks can assert on them.
"""

# Submodules are imported lazily (``import repro.experiments.fig9``) so that
# ``python -m repro.experiments.<name>`` does not double-import the target.
__all__ = [
    "table51", "fig2", "fig5", "fig6", "fig7", "table52", "fig9", "fig10",
]
