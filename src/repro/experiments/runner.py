"""Shared experiment plumbing: workload selection and argument parsing."""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload

DEFAULT_SCALE = 1.0


def select_workloads(names: Optional[Sequence[str]] = None) -> List[Workload]:
    """The requested workloads (paper order), or the full suite.

    Raises :class:`ValueError` for a duplicate or unknown abbreviation —
    a duplicate would silently double-count a program in every mean, and
    an unknown name should report the valid list rather than whatever
    the registry lookup throws.
    """
    if not names:
        return all_workloads()
    selected = []
    seen = set()
    for name in names:
        if name in seen:
            raise ValueError(f"duplicate workload abbreviation {name!r}")
        seen.add(name)
        try:
            selected.append(get_workload(name))
        except KeyError:
            valid = ", ".join(w.abbrev for w in all_workloads())
            raise ValueError(
                f"unknown workload abbreviation {name!r}; "
                f"valid abbreviations: {valid}") from None
    return selected


def experiment_parser(description: str,
                      backends: bool = False) -> argparse.ArgumentParser:
    """The common CLI for ``python -m repro.experiments.<name>``.

    ``backends=True`` adds the ``--backend`` choice for the measurement
    experiments that run behind the :mod:`repro.columnar` interface.
    """
    parser = argparse.ArgumentParser(description=description)
    if backends:
        from repro.columnar.backend import DEFAULT_BACKEND, backend_names

        parser.add_argument(
            "--backend", choices=backend_names(), default=DEFAULT_BACKEND,
            help="simulation backend (default %(default)s; 'numpy' is the "
                 "vectorized columnar fast path, validated against "
                 "'reference' by the parity suite)",
        )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="workload scale factor (1.0 = standard size, default %(default)s)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="ABBREV",
        help="subset of workload abbreviations (default: full suite)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render ASCII bar charts (where the experiment supports them)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the computed rows as machine-readable JSON "
             "(the same serialization the repro.harness result store uses)",
    )
    return parser


def maybe_write_json(args, rows) -> None:
    """Honour the shared ``--json PATH`` flag for a computed row list."""
    path = getattr(args, "json", None)
    if path:
        from repro.harness.store import write_rows_json

        write_rows_json(path, rows)


def class_means(values_by_workload, workloads) -> tuple:
    """Arithmetic means over the integer and floating-point classes."""
    int_values = [v for v, w in zip(values_by_workload, workloads) if w.is_integer]
    fp_values = [v for v, w in zip(values_by_workload, workloads) if not w.is_integer]
    int_mean = sum(int_values) / len(int_values) if int_values else 0.0
    fp_mean = sum(fp_values) / len(fp_values) if fp_values else 0.0
    return int_mean, fp_mean
