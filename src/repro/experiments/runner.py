"""Shared experiment plumbing: workload selection and argument parsing."""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload

DEFAULT_SCALE = 1.0


def select_workloads(names: Optional[Sequence[str]] = None) -> List[Workload]:
    """The requested workloads (paper order), or the full suite."""
    if not names:
        return all_workloads()
    return [get_workload(name) for name in names]


def experiment_parser(description: str) -> argparse.ArgumentParser:
    """The common CLI for ``python -m repro.experiments.<name>``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="workload scale factor (1.0 = standard size, default %(default)s)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="ABBREV",
        help="subset of workload abbreviations (default: full suite)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render ASCII bar charts (where the experiment supports them)",
    )
    return parser


def class_means(values_by_workload, workloads) -> tuple:
    """Arithmetic means over the integer and floating-point classes."""
    int_values = [v for v, w in zip(values_by_workload, workloads) if w.is_integer]
    fp_values = [v for v, w in zip(values_by_workload, workloads) if not w.is_integer]
    int_mean = sum(int_values) / len(int_values) if int_values else 0.0
    fp_mean = sum(fp_values) / len(fp_values) if fp_values else 0.0
    return int_mean, fp_mean
