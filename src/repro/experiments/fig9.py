"""Figure 9 — performance of cloaking/bypassing with naive memory
dependence speculation.

Four configurations per program, all relative to the base processor:
{selective, squash} misspeculation recovery x {RAW, RAW+RAR} cloaking.
Paper means (selective): RAW +4.28% INT / +3.20% FP; RAW+RAR +6.44% INT /
+4.66% FP; squash invalidation rarely yields improvements.

All five machines (base + four cloaked) observe a single trace pass per
workload, using each program's Table 5.1 sampling plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import CloakingConfig, CloakingMode
from repro.experiments.report import format_table, signed_pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)
from repro.pipeline import CloakedProcessor, Processor, ProcessorConfig, RecoveryPolicy
from repro.trace.sampling import TIMING
from repro.util.stats import harmonic_mean_speedup

CONFIGS: Tuple[Tuple[str, CloakingMode, RecoveryPolicy], ...] = (
    ("selective/RAW", CloakingMode.RAW, RecoveryPolicy.SELECTIVE),
    ("selective/RAW+RAR", CloakingMode.RAW_RAR, RecoveryPolicy.SELECTIVE),
    ("squash/RAW", CloakingMode.RAW, RecoveryPolicy.SQUASH),
    ("squash/RAW+RAR", CloakingMode.RAW_RAR, RecoveryPolicy.SQUASH),
)


@dataclass
class SpeedupRow:
    abbrev: str
    category: str
    base_ipc: float
    speedups: Dict[str, float]  # config label -> speedup ratio


def _simulate_workload(workload, scale: float,
                       processor_config: ProcessorConfig,
                       configs=CONFIGS) -> SpeedupRow:
    """One trace pass drives the base machine and every cloaked variant."""
    base = Processor(processor_config)
    cloaked = {
        label: CloakedProcessor(
            processor_config,
            cloaking=CloakingConfig.paper_timing(mode),
            recovery=recovery,
        )
        for label, mode, recovery in configs
    }
    machines = [base] + list(cloaked.values())
    plan = workload.sampling_plan()
    trace = workload.trace(scale=scale)
    if plan.enabled:
        for segment in plan.segments(trace):
            timing = segment.mode == TIMING
            for inst in segment.instructions:
                for machine in machines:
                    machine.feed(inst, timing=timing)
    else:
        for inst in trace:
            for machine in machines:
                machine.feed(inst)
    base_result = base.finalize(workload.abbrev)
    return SpeedupRow(
        abbrev=workload.abbrev,
        category=workload.category,
        base_ipc=base_result.ipc,
        speedups={
            label: machine.finalize(workload.abbrev).speedup_over(base_result)
            for label, machine in cloaked.items()
        },
    )


def run(scale: float = 1.0, workloads: Optional[Sequence[str]] = None,
        processor_config: Optional[ProcessorConfig] = None) -> List[SpeedupRow]:
    processor_config = processor_config or ProcessorConfig()
    return [
        _simulate_workload(workload, scale, processor_config)
        for workload in select_workloads(workloads)
    ]


def summarize(rows: List[SpeedupRow]) -> Dict[str, Dict[str, float]]:
    """Harmonic-mean speedups per config for INT / FP / ALL."""
    summary: Dict[str, Dict[str, float]] = {}
    for label, _, _ in CONFIGS:
        per_class = {}
        for class_label, predicate in (
            ("INT", lambda r: r.category == "int"),
            ("FP", lambda r: r.category == "fp"),
            ("ALL", lambda r: True),
        ):
            values = [r.speedups[label] for r in rows if predicate(r)]
            if values:
                per_class[class_label] = harmonic_mean_speedup(values)
        summary[label] = per_class
    return summary


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[SpeedupRow]) -> str:
    labels = [label for label, _, _ in CONFIGS]
    table_rows = [
        [row.abbrev, f"{row.base_ipc:.2f}"]
        + [signed_pct(row.speedups[label]) for label in labels]
        for row in rows
    ]
    body = format_table(
        ["Ab.", "base IPC"] + labels, table_rows,
        title="Figure 9: speedup over the base (naive memory dependence speculation)",
    )
    summary = summarize(rows)
    lines = [body, ""]
    for label in labels:
        parts = ", ".join(
            f"{cls} {signed_pct(v)}" for cls, v in summary[label].items()
        )
        lines.append(f"HM {label}: {parts}")
    lines.append("paper (selective): RAW INT +4.28% FP +3.20%; "
                 "RAW+RAR INT +6.44% FP +4.66%")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
