"""Figure 2 — memory dependence locality of RAR dependences (n = 1..4).

Part (a) uses an infinite address window, part (b) a 4K-entry window.  The
paper's headline observation: "More than 70% of all loads experience a
dependence among the four most recently encountered RAR dependences."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.columnar.backend import DEFAULT_BACKEND, get_backend
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)

WINDOWS = {"infinite": None, "4K": 4096}


@dataclass
class LocalityRow:
    abbrev: str
    window: str
    sink_loads: int
    locality: List[float]  # locality(1) .. locality(max_n)


def run(scale: float = 1.0, workloads: Optional[Sequence[str]] = None,
        max_n: int = 4, backend: str = DEFAULT_BACKEND) -> List[LocalityRow]:
    """Measure RAR dependence locality for both address windows."""
    rows = []
    sim = get_backend(backend)
    for workload in select_workloads(workloads):
        results = sim.rar_locality(workload, scale, max_n, WINDOWS)
        for label, result in results.items():
            rows.append(LocalityRow(
                abbrev=workload.abbrev,
                window=label,
                sink_loads=result.sink_loads,
                locality=[result.locality(n) for n in range(1, max_n + 1)],
            ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[LocalityRow]) -> str:
    sections = []
    for window in WINDOWS:
        table_rows = []
        for row in rows:
            if row.window != window:
                continue
            table_rows.append(
                [row.abbrev, f"{row.sink_loads:,}"]
                + [pct(value) for value in row.locality]
            )
        part = "(a)" if window == "infinite" else "(b)"
        sections.append(format_table(
            ["Ab.", "Sink loads", "loc(1)", "loc(2)", "loc(3)", "loc(4)"],
            table_rows,
            title=f"Figure 2{part}: RAR dependence locality, {window} address window",
        ))
    return "\n\n".join(sections)


def render_chart(rows: List[LocalityRow]) -> str:
    """Figure 2(a) as bars: locality(1) and locality(4) per program."""
    from repro.experiments.report import bar_chart

    infinite = [r for r in rows if r.window == "infinite"]
    return bar_chart(
        [r.abbrev for r in infinite],
        [("loc(1)", [r.locality[0] for r in infinite]),
         ("loc(4)", [r.locality[3] for r in infinite])],
        title="Figure 2(a): RAR dependence locality, infinite window",
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__, backends=True).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads,
               backend=args.backend)
    maybe_write_json(args, rows)
    print(render(rows))
    if args.chart:
        print()
        print(render_chart(rows))


if __name__ == "__main__":
    main()
