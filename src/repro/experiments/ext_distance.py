"""Extension experiment — dependence distance distributions.

Not a paper artefact, but the quantity underneath two of them: the
distance (in unique intervening addresses) of each dependence explains the
DDT-size sweep of Figure 5, and the "distant-store RAW, near RAR"
population explains the Section 3.1 argument for why RAR prediction helps
loads whose stores are out of the DDT's reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dependence.distance import DependenceDistanceAnalysis
from repro.experiments.report import format_table, pct
from repro.experiments.runner import (
    experiment_parser,
    maybe_write_json,
    select_workloads,
)

LIMITS = (32, 128, 512, 2048)


@dataclass
class DistanceRow:
    abbrev: str
    category: str
    raw_total: int
    rar_total: int
    raw_within: List[float]    # fraction of RAW deps within each LIMIT
    rar_within: List[float]
    rescued_distant_raw: int   # Section 3.1's rescued population
    rescued_no_raw: int        # pure data sharing


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[DistanceRow]:
    rows = []
    for workload in select_workloads(workloads):
        analysis = DependenceDistanceAnalysis(rescue_limit=128)
        analysis.run(workload.trace(scale=scale))
        rows.append(DistanceRow(
            abbrev=workload.abbrev,
            category=workload.category,
            raw_total=analysis.raw.total,
            rar_total=analysis.rar.total,
            raw_within=[analysis.raw.fraction_within(n) for n in LIMITS],
            rar_within=[analysis.rar.fraction_within(n) for n in LIMITS],
            rescued_distant_raw=analysis.rescued_distant_raw,
            rescued_no_raw=analysis.rescued_no_raw,
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[DistanceRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.abbrev]
            + [pct(v) for v in row.raw_within]
            + [pct(v) for v in row.rar_within]
            + [f"{row.rescued_distant_raw:,}", f"{row.rescued_no_raw:,}"]
        )
    headers = (
        ["Ab."]
        + [f"RAW<{n}" for n in LIMITS]
        + [f"RAR<{n}" for n in LIMITS]
        + ["rescued(RAW far)", "sharing(no RAW)"]
    )
    return format_table(
        headers, table_rows,
        title=("Extension: dependence distances (fraction within N unique "
               "addresses) and the RAR-rescued load population"),
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))


if __name__ == "__main__":
    main()
