"""``python -m repro.harness`` — run, inspect or reset the sweep substrate.

    python -m repro.harness run summary --scale 0.1 --workers 8
    python -m repro.harness run fig2 --scale 0.5 --workers 4
    python -m repro.harness run fig2 --exec-backend worker --workers 3
    python -m repro.harness enqueue fig2 --scale 0.5 --store S --queue Q
    python -m repro.harness worker --queue Q --store S
    python -m repro.harness status
    python -m repro.harness clean

``run`` prints the same sections as the serial ``python -m repro``
equivalent (stdout is byte-identical across execution backends);
orchestration chatter — per-cell progress and the manifest summary —
goes to stderr.  ``--exec-backend`` picks *where* cells execute (inline /
fork / worker); ``--backend`` still picks the *simulation* backend
(reference / numpy) of backend-aware artefacts.

``enqueue`` + ``worker`` are the distributed pieces: enqueue serializes
a grid's cache-miss cells into a persistent queue directory, and any
number of workers — on this host or any host sharing the queue and
store directories — lease and execute them.  ``run --exec-backend
worker --workers 0`` enqueues and waits for external workers only.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.backends import BACKEND_NAMES
from repro.harness.manifest import STATUS_HIT, JobRecord, RunManifest
from repro.harness.registry import ARTEFACTS
from repro.harness.store import ResultStore, code_fingerprint

#: artefacts whose ``run_one`` accepts a ``backend`` parameter
BACKEND_AWARE = frozenset({"fig2", "fig5", "fig7"})


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run an artefact (or 'summary'/'all') through the "
                    "parallel harness")
    run.add_argument("artefact",
                     help="one of: " + ", ".join(ARTEFACTS)
                          + ", report_card, summary, all")
    run.add_argument("--scale", type=float, default=None,
                     help="workload scale factor (default 1.0; summary "
                          "applies its per-artefact multipliers on top)")
    run.add_argument("--workloads", nargs="*", default=None,
                     metavar="ABBREV",
                     help="subset of workload abbreviations")
    run.add_argument("--backend", choices=("reference", "numpy"),
                     default=None,
                     help="simulation backend for backend-aware artefacts "
                          "(fig2, fig5, fig7); participates in the store "
                          "cache key")
    run.add_argument("--exec-backend", choices=BACKEND_NAMES, default=None,
                     help="execution backend (default: inline when "
                          "--workers 0, else fork); 'worker' drains a "
                          "persistent job queue with --workers local "
                          "workers plus any external ones")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: cpu count; "
                          "0 = run inline)")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-job timeout in seconds (default: none)")
    run.add_argument("--retries", type=int, default=1,
                     help="retries per failed/crashed/timed-out job "
                          "(default %(default)s)")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="result store directory "
                          "(default results/store)")
    run.add_argument("--queue", default=None, metavar="DIR",
                     help="job queue directory for the worker backend "
                          "(default <store>/queue)")
    run.add_argument("--lease-ttl", type=float, default=None,
                     help="seconds before a queue lease may be reclaimed "
                          "(worker backend; default 300)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute every cell (results still stored)")
    run.add_argument("--manifest", default=None, metavar="PATH",
                     help="manifest output path (default: "
                          "<store>/manifests/run-<id>.json)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress on stderr")

    enqueue = sub.add_parser(
        "enqueue", help="serialize a grid's cache-miss cells into a "
                        "persistent job queue (drained by 'worker')")
    enqueue.add_argument("artefact",
                         help="one of: " + ", ".join(ARTEFACTS))
    enqueue.add_argument("--scale", type=float, default=None)
    enqueue.add_argument("--workloads", nargs="*", default=None,
                         metavar="ABBREV")
    enqueue.add_argument("--backend", choices=("reference", "numpy"),
                         default=None,
                         help="simulation backend param (fig2, fig5, fig7)")
    enqueue.add_argument("--store", default=None, metavar="DIR")
    enqueue.add_argument("--queue", default=None, metavar="DIR",
                         help="queue directory (default <store>/queue)")
    enqueue.add_argument("--no-cache", action="store_true",
                         help="enqueue cells even when already cached")

    worker = sub.add_parser(
        "worker", help="run a standalone queue worker: lease jobs, "
                       "execute them, write results to the store")
    worker.add_argument("--queue", required=True, metavar="DIR")
    worker.add_argument("--store", required=True, metavar="DIR")
    worker.add_argument("--retries", type=int, default=1,
                        help="total retry budget per job, shared across "
                             "all workers (default %(default)s)")
    worker.add_argument("--lease-ttl", type=float, default=None,
                        help="lease seconds before reclaim (default 300)")
    worker.add_argument("--poll", type=float, default=0.5,
                        help="idle poll interval in seconds "
                             "(default %(default)s)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after claiming this many jobs")
    worker.add_argument("--keep-alive", action="store_true",
                        help="idle for new work instead of exiting once "
                             "the queue is drained")
    worker.add_argument("--quiet", action="store_true")

    status = sub.add_parser("status", help="show store and last-run stats")
    status.add_argument("--store", default=None, metavar="DIR")
    status.add_argument("--queue", default=None, metavar="DIR",
                        help="also report this queue directory "
                             "(default <store>/queue when present)")

    clean = sub.add_parser("clean",
                           help="delete every cached result, manifest "
                                "and queued job")
    clean.add_argument("--store", default=None, metavar="DIR")
    clean.add_argument("--queue", default=None, metavar="DIR")
    return parser


def _progress(quiet: bool):
    def report(record: JobRecord) -> None:
        if quiet or record.status == STATUS_HIT:
            return
        line = (f"  {record.artefact}/{record.workload}: {record.status}"
                f" ({record.wall_time:.2f}s)")
        if record.error:
            line += f" [attempt {record.attempts}]"
        print(line, file=sys.stderr)
    return report


def _cmd_run(args) -> int:
    from repro.experiments.runner import DEFAULT_SCALE

    store = ResultStore(args.store)
    scale = DEFAULT_SCALE if args.scale is None else args.scale
    kwargs = dict(
        workers=args.workers if args.workers is not None else None,
        store=store, use_cache=not args.no_cache, timeout=args.timeout,
        retries=args.retries, manifest_path=args.manifest,
        progress=_progress(args.quiet), backend=args.exec_backend,
        queue_dir=args.queue, lease_ttl=args.lease_ttl,
    )
    if kwargs["workers"] is None:
        import os
        kwargs["workers"] = os.cpu_count() or 1

    name = args.artefact
    if args.backend is not None and name not in BACKEND_AWARE:
        print(f"--backend applies only to: {', '.join(sorted(BACKEND_AWARE))}"
              f" (got artefact {name!r})", file=sys.stderr)
        return 2
    if name in ("summary", "all"):
        from repro.experiments import summary

        outcome = summary.sweep(scale=scale, workloads=args.workloads,
                                allow_failures=True, **kwargs)
        for section in summary.compose_sections(outcome):
            print(section)
            print()
    elif name == "report_card":
        from repro.experiments import report_card

        for unused in ("manifest_path", "progress", "queue_dir",
                       "lease_ttl"):
            kwargs.pop(unused)
        criteria = report_card.run(scale=scale, workloads=args.workloads,
                                   **kwargs)
        print(report_card.render(criteria))
        print(file=sys.stderr)
        return 0
    elif name in ARTEFACTS:
        from repro.harness.api import run_artefacts
        from repro.harness.jobs import render_rows

        params = {"backend": args.backend} if args.backend else None
        outcome = run_artefacts([(name, scale, params)], args.workloads,
                                allow_failures=True, **kwargs)
        print(render_rows(name, outcome.runs[0].rows))
    else:
        print(f"unknown artefact {args.artefact!r}; known: "
              + ", ".join(ARTEFACTS) + ", report_card, summary, all",
              file=sys.stderr)
        return 2

    manifest = outcome.manifest
    print(manifest.summary_line(), file=sys.stderr)
    for record in manifest.failed:
        print(f"FAILED {record.artefact}/{record.workload}: "
              f"{(record.error or '').strip().splitlines()[-1]}",
              file=sys.stderr)
    return 1 if manifest.failed else 0


def _queue_for(args, store: ResultStore, require: bool = False):
    """The JobQueue named by ``--queue`` (default ``<store>/queue``)."""
    from repro.harness.queue import DEFAULT_LEASE_TTL, JobQueue

    root = args.queue if args.queue is not None else store.root / "queue"
    ttl = getattr(args, "lease_ttl", None)
    return JobQueue(root, lease_ttl=ttl if ttl else DEFAULT_LEASE_TTL)


def _cmd_enqueue(args) -> int:
    from repro.experiments.runner import DEFAULT_SCALE
    from repro.harness.jobs import expand_jobs

    if args.artefact not in ARTEFACTS:
        print(f"unknown artefact {args.artefact!r}; known: "
              + ", ".join(ARTEFACTS), file=sys.stderr)
        return 2
    if args.backend is not None and args.artefact not in BACKEND_AWARE:
        print(f"--backend applies only to: {', '.join(sorted(BACKEND_AWARE))}"
              f" (got artefact {args.artefact!r})", file=sys.stderr)
        return 2
    store = ResultStore(args.store)
    queue = _queue_for(args, store)
    scale = DEFAULT_SCALE if args.scale is None else args.scale
    params = {"backend": args.backend} if args.backend else None
    jobs = expand_jobs(args.artefact, scale, args.workloads, params)
    enqueued = hits = 0
    for spec in jobs:
        key = store.key_for(spec)
        if not args.no_cache and store.get(key) is not None:
            hits += 1
            continue
        queue.enqueue(spec, key)
        enqueued += 1
    print(f"enqueued {enqueued} jobs ({hits} cache hits skipped) "
          f"into {queue.root}")
    return 0


def _cmd_worker(args) -> int:
    from repro.harness.worker import worker_loop

    store = ResultStore(args.store)
    queue = _queue_for(args, store)
    say = None if args.quiet else (
        lambda message: print(f"  {message}", file=sys.stderr))
    stats = worker_loop(queue, store, retries=args.retries, poll=args.poll,
                        max_jobs=args.max_jobs,
                        keep_alive=args.keep_alive, progress=say)
    print(f"worker {stats.worker_id}: {stats.claimed} claimed, "
          f"{stats.completed} completed, {stats.failed} failed attempts",
          file=sys.stderr)
    return 0


def _cmd_status(args) -> int:
    store = ResultStore(args.store)
    objects = store.objects()
    manifests = store.manifests()
    quarantined = store.quarantined()
    stale = store.stale_tmps()
    print(f"store:        {store.root}")
    print(f"objects:      {len(objects)} ({store.size_bytes():,} bytes)")
    if objects:
        backends = store.cell_backends()
        print("backends:     " + ", ".join(
            f"{name}={count}" for name, count in sorted(backends.items())))
    print(f"manifests:    {len(manifests)}")
    print(f"quarantined:  {len(quarantined)}")
    for path in quarantined:
        print(f"  {path.name}: {store.quarantine_reason(path)}")
    if stale:
        print(f"stale tmps:   {len(stale)} (crashed writers; "
              f"'clean' removes them)")
    queue = _queue_for(args, store)
    if args.queue is not None or queue.root.is_dir():
        stats = queue.stats()
        print(f"queue:        {queue.root}")
        print(f"  jobs:       {stats['jobs']}")
        print(f"  done:       {stats['done']} ({stats['failed']} failed)")
        print(f"  leased:     {stats['leased']}")
        print(f"  ready:      {stats['ready']}"
              + (f" (+{stats['backing_off']} backing off)"
                 if stats["backing_off"] else ""))
    print(f"fingerprint:  {code_fingerprint()}")
    if manifests:
        last = RunManifest.load(manifests[-1])
        print(f"last run:     {last.summary_line()}")
        if last.backend:
            print(f"  backend:    {last.backend}")
        by_worker = last.by_worker()
        if by_worker:
            print("  computed by: " + ", ".join(
                f"{worker}={count}"
                for worker, count in sorted(by_worker.items())))
        if last.failed:
            for record in last.failed:
                print(f"  FAILED {record.artefact}/{record.workload}")
    return 0


def _cmd_clean(args) -> int:
    store = ResultStore(args.store)
    removed = store.clean()
    queue = _queue_for(args, store)
    if args.queue is not None or queue.root.is_dir():
        removed += queue.clean()
    print(f"removed {removed} files from {store.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "enqueue":
        return _cmd_enqueue(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_clean(args)


if __name__ == "__main__":
    sys.exit(main())
