"""``python -m repro.harness`` — run, inspect or reset the sweep substrate.

    python -m repro.harness run summary --scale 0.1 --workers 8
    python -m repro.harness run fig2 --scale 0.5 --workers 4
    python -m repro.harness status
    python -m repro.harness clean

``run`` prints the same sections as the serial ``python -m repro``
equivalent (stdout is byte-identical); orchestration chatter — per-cell
progress and the manifest summary — goes to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.manifest import STATUS_HIT, JobRecord, RunManifest
from repro.harness.registry import ARTEFACTS
from repro.harness.store import ResultStore, code_fingerprint

#: artefacts whose ``run_one`` accepts a ``backend`` parameter
BACKEND_AWARE = frozenset({"fig2", "fig5", "fig7"})


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run an artefact (or 'summary'/'all') through the "
                    "parallel harness")
    run.add_argument("artefact",
                     help="one of: " + ", ".join(ARTEFACTS)
                          + ", report_card, summary, all")
    run.add_argument("--scale", type=float, default=None,
                     help="workload scale factor (default 1.0; summary "
                          "applies its per-artefact multipliers on top)")
    run.add_argument("--workloads", nargs="*", default=None,
                     metavar="ABBREV",
                     help="subset of workload abbreviations")
    run.add_argument("--backend", choices=("reference", "numpy"),
                     default=None,
                     help="simulation backend for backend-aware artefacts "
                          "(fig2, fig5, fig7); participates in the store "
                          "cache key")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: cpu count; "
                          "0 = run inline)")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-job timeout in seconds (default: none)")
    run.add_argument("--retries", type=int, default=1,
                     help="retries per failed/crashed/timed-out job "
                          "(default %(default)s)")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="result store directory "
                          "(default results/store)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute every cell (results still stored)")
    run.add_argument("--manifest", default=None, metavar="PATH",
                     help="manifest output path (default: "
                          "<store>/manifests/run-<id>.json)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress on stderr")

    status = sub.add_parser("status", help="show store and last-run stats")
    status.add_argument("--store", default=None, metavar="DIR")

    clean = sub.add_parser("clean",
                           help="delete every cached result and manifest")
    clean.add_argument("--store", default=None, metavar="DIR")
    return parser


def _progress(quiet: bool):
    def report(record: JobRecord) -> None:
        if quiet or record.status == STATUS_HIT:
            return
        line = (f"  {record.artefact}/{record.workload}: {record.status}"
                f" ({record.wall_time:.2f}s)")
        if record.error:
            line += f" [attempt {record.attempts}]"
        print(line, file=sys.stderr)
    return report


def _cmd_run(args) -> int:
    from repro.experiments.runner import DEFAULT_SCALE

    store = ResultStore(args.store)
    scale = DEFAULT_SCALE if args.scale is None else args.scale
    kwargs = dict(
        workers=args.workers if args.workers is not None else None,
        store=store, use_cache=not args.no_cache, timeout=args.timeout,
        retries=args.retries, manifest_path=args.manifest,
        progress=_progress(args.quiet),
    )
    if kwargs["workers"] is None:
        import os
        kwargs["workers"] = os.cpu_count() or 1

    name = args.artefact
    if args.backend is not None and name not in BACKEND_AWARE:
        print(f"--backend applies only to: {', '.join(sorted(BACKEND_AWARE))}"
              f" (got artefact {name!r})", file=sys.stderr)
        return 2
    if name in ("summary", "all"):
        from repro.experiments import summary

        outcome = summary.sweep(scale=scale, workloads=args.workloads,
                                allow_failures=True, **kwargs)
        for section in summary.compose_sections(outcome):
            print(section)
            print()
    elif name == "report_card":
        from repro.experiments import report_card

        kwargs.pop("manifest_path")
        kwargs.pop("progress")
        criteria = report_card.run(scale=scale, workloads=args.workloads,
                                   **kwargs)
        print(report_card.render(criteria))
        print(file=sys.stderr)
        return 0
    elif name in ARTEFACTS:
        from repro.harness.api import run_artefacts
        from repro.harness.jobs import render_rows

        params = {"backend": args.backend} if args.backend else None
        outcome = run_artefacts([(name, scale, params)], args.workloads,
                                allow_failures=True, **kwargs)
        print(render_rows(name, outcome.runs[0].rows))
    else:
        print(f"unknown artefact {args.artefact!r}; known: "
              + ", ".join(ARTEFACTS) + ", report_card, summary, all",
              file=sys.stderr)
        return 2

    manifest = outcome.manifest
    print(manifest.summary_line(), file=sys.stderr)
    for record in manifest.failed:
        print(f"FAILED {record.artefact}/{record.workload}: "
              f"{(record.error or '').strip().splitlines()[-1]}",
              file=sys.stderr)
    return 1 if manifest.failed else 0


def _cmd_status(args) -> int:
    store = ResultStore(args.store)
    objects = store.objects()
    manifests = store.manifests()
    quarantined = store.quarantined()
    print(f"store:        {store.root}")
    print(f"objects:      {len(objects)} ({store.size_bytes():,} bytes)")
    if objects:
        backends = store.cell_backends()
        print("backends:     " + ", ".join(
            f"{name}={count}" for name, count in sorted(backends.items())))
    print(f"manifests:    {len(manifests)}")
    print(f"quarantined:  {len(quarantined)}")
    for path in quarantined:
        print(f"  {path.name}: {store.quarantine_reason(path)}")
    print(f"fingerprint:  {code_fingerprint()}")
    if manifests:
        last = RunManifest.load(manifests[-1])
        print(f"last run:     {last.summary_line()}")
        if last.failed:
            for record in last.failed:
                print(f"  FAILED {record.artefact}/{record.workload}")
    return 0


def _cmd_clean(args) -> int:
    store = ResultStore(args.store)
    removed = store.clean()
    print(f"removed {removed} files from {store.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_clean(args)


if __name__ == "__main__":
    sys.exit(main())
