"""The persistent work queue: leased JobSpecs over a shared directory.

One queue is one directory (typically ``<store>/queue``) that any number
of worker processes — on one host or many hosts sharing the filesystem —
drain cooperatively:

    queue/
      jobs/<key>.json     the serialized JobSpec (key = store key)
      leases/<key>.json   owner + deadline sidecar of the executing worker
      state/<key>.json    retry bookkeeping (attempts, backoff, last error)
      done/<key>.json     terminal outcome (ok -> rows are in the store)

The protocol is lock-free and crash-tolerant:

* **Claiming** a job creates its lease sidecar with ``O_CREAT|O_EXCL`` —
  an atomic test-and-set on POSIX filesystems — recording the owner id
  (``host:pid``) and a wall-clock deadline.  A job with a live lease is
  never claimed twice.
* **Reclaiming**: a lease whose deadline has passed, or whose owner pid
  is gone (same-host crash detection via ``kill(pid, 0)``), is *stolen*
  by renaming it to a per-claimant tombstone — exactly one of several
  racing claimants wins the rename — before the winner re-creates it.
* **Completion** writes rows to the content-addressed
  :class:`~repro.harness.store.ResultStore` (atomic, last-writer-wins,
  byte-identical payloads) and then the ``done`` marker, so a result is
  visible in the store no later than the queue says it is.
* **Retry accounting** lives in the ``state`` sidecar and is only ever
  written by the lease holder: each claim increments ``attempts``, so an
  attempt that died with its worker is still counted, and a claimant
  that finds the budget exhausted finalizes the job as failed instead of
  re-running it forever.

Every sidecar write is write-to-temp + fsync + atomic ``os.replace`` —
a killed writer leaves at worst a stale temp file, never a truncated
sidecar.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.harness.jobs import JobSpec

#: default seconds before an unrenewed lease may be reclaimed; generous
#: because same-host worker death is detected by pid, not deadline
DEFAULT_LEASE_TTL = 300.0


def default_worker_id() -> str:
    """The ``host:pid`` identity queue workers lease under."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` exists on this host (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True  # unknown -> assume alive, the deadline still applies
    return True


@dataclass(frozen=True)
class Claim:
    """A successfully leased job: run it, then complete or release."""

    spec: JobSpec
    key: str
    attempt: int        # 1-based: this claim is attempt number ``attempt``
    worker: str         # the owner id the lease was taken under


class JobQueue:
    """A directory of leasable jobs shared by cooperating workers."""

    def __init__(self, root: os.PathLike,
                 lease_ttl: float = DEFAULT_LEASE_TTL) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self._host = socket.gethostname()

    # -- paths -----------------------------------------------------------

    def _job_path(self, key: str) -> Path:
        return self.root / "jobs" / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / "leases" / f"{key}.json"

    def _state_path(self, key: str) -> Path:
        return self.root / "state" / f"{key}.json"

    def _done_path(self, key: str) -> Path:
        return self.root / "done" / f"{key}.json"

    # -- atomic sidecar IO ----------------------------------------------

    def _write_json(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # staticcheck: ignore[RS303] a tmp stranded by a crash mid-write
        # is deliberate debris: it is per-pid so never collides, is never
        # read as a sidecar, and cleanup-on-exception would race the
        # crash cases this pattern exists to survive.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[dict]:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # missing, racing rename, or torn write -> absent

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    # -- producing -------------------------------------------------------

    def enqueue(self, spec: JobSpec, key: str) -> bool:
        """Add one job; returns False when it was already queued.

        Re-enqueueing a key whose previous run finished resets its
        outcome and retry state, so a fresh sweep over the same grid
        recomputes instead of trusting a marker from another run.
        """
        fresh = not self._job_path(key).exists()
        self._remove(self._done_path(key))
        self._remove(self._state_path(key))
        self._write_json(self._job_path(key),
                         {"key": key, "spec": spec.to_json()})
        return fresh

    # -- consuming -------------------------------------------------------

    def claim(self, worker_id: Optional[str] = None,
              max_attempts: Optional[int] = None) -> Optional[Claim]:
        """Lease the first claimable job, or None when nothing is ready.

        A job is claimable when it has no terminal outcome, is not
        backing off, and carries no live lease.  When ``max_attempts`` is
        given, a claimable job whose attempt budget is already spent is
        finalized as failed (with the last recorded error) instead of
        being returned — this is how a job whose final attempt died with
        its worker still reaches a terminal state.
        """
        worker_id = worker_id or default_worker_id()
        for key in self.job_keys():
            if self._done_path(key).exists():
                continue
            state = self._read_json(self._state_path(key)) or {}
            if state.get("not_before", 0.0) > time.time():
                continue
            if not self._acquire_lease(key, worker_id):
                continue
            # Holding the lease now — re-read bookkeeping under it.
            state = self._read_json(self._state_path(key)) or {}
            attempts = int(state.get("attempts", 0))
            job = self._read_json(self._job_path(key))
            if (job is None or self._done_path(key).exists()
                    or state.get("not_before", 0.0) > time.time()):
                self._remove(self._lease_path(key))
                continue
            if max_attempts is not None and attempts >= max_attempts:
                self.finish_failed(
                    key,
                    error=state.get("error")
                    or "retry budget exhausted by attempts that died "
                       "with their workers",
                    attempts=attempts, worker=worker_id)
                continue
            self._write_json(self._state_path(key),
                             {"attempts": attempts + 1,
                              "not_before": 0.0,
                              "error": state.get("error")})
            return Claim(spec=JobSpec.from_json(job["spec"]), key=key,
                         attempt=attempts + 1, worker=worker_id)
        return None

    def release(self, key: str, error: Optional[str] = None,
                not_before: float = 0.0) -> None:
        """Give a leased job back (retryable failure or clean handoff)."""
        state = self._read_json(self._state_path(key)) or {}
        self._write_json(self._state_path(key),
                         {"attempts": int(state.get("attempts", 0)),
                          "not_before": not_before,
                          "error": error if error is not None
                          else state.get("error")})
        self._remove(self._lease_path(key))

    def complete(self, key: str, worker: str, elapsed: float = 0.0,
                 attempts: int = 1) -> None:
        """Mark a leased job done (its rows are already in the store)."""
        self._write_json(self._done_path(key),
                         {"status": "ok", "worker": worker,
                          "elapsed": round(elapsed, 6),
                          "attempts": attempts, "error": None})
        self._remove(self._state_path(key))
        self._remove(self._lease_path(key))

    def finish_failed(self, key: str, error: str, attempts: int,
                      worker: Optional[str] = None) -> None:
        """Record a terminal failure (retry budget exhausted)."""
        self._write_json(self._done_path(key),
                         {"status": "failed", "worker": worker,
                          "elapsed": 0.0, "attempts": attempts,
                          "error": error})
        self._remove(self._state_path(key))
        self._remove(self._lease_path(key))

    # -- the lease protocol ---------------------------------------------

    def _lease_live(self, lease: dict, now: float) -> bool:
        if float(lease.get("deadline", 0.0)) <= now:
            return False  # expired, whoever held it
        if lease.get("host") == self._host:
            pid = lease.get("pid")
            if isinstance(pid, int) and not _pid_alive(pid):
                return False  # same-host owner is gone
        return True

    def _acquire_lease(self, key: str, worker_id: str) -> bool:
        path = self._lease_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        now = time.time()
        payload = {"owner": worker_id, "host": self._host,
                   "pid": os.getpid(), "acquired": now,
                   "deadline": now + self.lease_ttl}
        try:
            fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = self._read_json(path)
            if existing is not None and self._lease_live(existing, now):
                return False
            # Stale (expired, dead owner, or torn): steal via rename so
            # exactly one of several racing claimants proceeds.
            tomb = path.with_name(f".steal.{key}.{os.getpid()}")
            try:
                os.replace(path, tomb)
            except FileNotFoundError:
                return False  # a racing claimant already stole it
            self._remove(tomb)
            try:
                fd = os.open(str(path),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False  # and re-leased it before we could
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return True

    # -- introspection ---------------------------------------------------

    def job_keys(self) -> List[str]:
        jobs_dir = self.root / "jobs"
        if not jobs_dir.is_dir():
            return []
        return sorted(path.stem for path in jobs_dir.glob("*.json"))

    def outcome(self, key: str) -> Optional[dict]:
        """The terminal outcome of ``key`` (None while still pending)."""
        return self._read_json(self._done_path(key))

    def lease_info(self, key: str) -> Optional[dict]:
        return self._read_json(self._lease_path(key))

    def remaining(self, keys: Optional[Sequence[str]] = None) -> List[str]:
        """Keys without a terminal outcome yet (subset of ``keys``)."""
        candidates = sorted(keys) if keys is not None else self.job_keys()
        return [key for key in candidates
                if not self._done_path(key).exists()]

    def stats(self) -> dict:
        """Queue census: jobs / done / failed / leased / ready counts."""
        now = time.time()
        keys = self.job_keys()
        done = failed = leased = ready = backing_off = 0
        for key in keys:
            outcome = self.outcome(key)
            if outcome is not None:
                done += 1
                if outcome.get("status") == "failed":
                    failed += 1
                continue
            lease = self.lease_info(key)
            if lease is not None and self._lease_live(lease, now):
                leased += 1
                continue
            state = self._read_json(self._state_path(key)) or {}
            if state.get("not_before", 0.0) > now:
                backing_off += 1
            else:
                ready += 1
        return {"jobs": len(keys), "done": done, "failed": failed,
                "leased": leased, "backing_off": backing_off,
                "ready": ready}

    def clean(self) -> int:
        """Delete every queue file; returns the number removed."""
        removed = 0
        for sub in ("jobs", "leases", "state", "done"):
            directory = self.root / sub
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*")):
                self._remove(path)
                removed += 1
        return removed
