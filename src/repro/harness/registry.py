"""The artefact registry: what the harness knows how to run.

Every entry names an experiment module exposing the uniform interface
``run(scale, workloads) -> rows`` / ``render(rows) -> str`` (plus the
per-cell ``run_one(workload, scale)`` entry point), together with a
*configuration descriptor* — the pipeline/DDT/predictor configuration the
experiment bakes in.  The descriptor participates in the result-store
hash key, so changing a paper configuration (say the DDT size behind
Figure 6) invalidates exactly the cached cells it affects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class ArtefactSpec:
    """One runnable artefact: module location plus cache-key metadata."""

    name: str
    module: str                     # dotted import path
    title: str                      # section heading used by ``summary``
    summary_multiplier: Optional[float] = None  # None = not part of summary
    config: Callable[[], dict] = field(default=lambda: {})
    #: custom cell axis: () -> cell names.  ``None`` means the default
    #: per-workload grid; artefacts whose unit of work is not a kernel
    #: (``ext_staticcheck`` shards by source subpackage) provide their
    #: own axis, and the ``--workloads`` filter does not apply to them.
    cells: Optional[Callable[[], List[str]]] = None

    def config_descriptor(self) -> dict:
        """The JSON-able configuration participating in the hash key."""
        return self.config()


def _accuracy_config() -> dict:
    from repro.core import CloakingConfig
    from repro.predictors.confidence import ConfidenceKind

    return {
        "cloaking": {
            kind.value: repr(CloakingConfig.paper_accuracy(confidence=kind))
            for kind in (ConfidenceKind.ONE_BIT, ConfidenceKind.TWO_BIT)
        },
    }


def _locality_config() -> dict:
    from repro.experiments.fig2 import WINDOWS

    return {"windows": {k: v for k, v in WINDOWS.items()}, "max_n": 4}


def _sweep_config() -> dict:
    from repro.experiments.fig5 import DDT_SIZES

    return {"ddt_sizes": list(DDT_SIZES)}


def _breakdown_config() -> dict:
    from repro.core import CloakingConfig

    return {"cloaking": repr(CloakingConfig.paper_accuracy())}


def _overlap_config() -> dict:
    from repro.core import CloakingConfig

    return {"cloaking": repr(CloakingConfig.paper_overlap()),
            "vp_capacity": 16 * 1024}


def _timing_config() -> dict:
    from repro.core import CloakingConfig
    from repro.pipeline import ProcessorConfig

    return {"processor": repr(ProcessorConfig()),
            "cloaking": repr(CloakingConfig.paper_timing())}


def _nospec_timing_config() -> dict:
    from repro.core import CloakingConfig
    from repro.pipeline import ProcessorConfig

    return {"processor": repr(ProcessorConfig(memory_speculation=False)),
            "cloaking": repr(CloakingConfig.paper_timing())}


def _hybrid_config() -> dict:
    from repro.core import CloakingConfig

    return {"cloaking": repr(CloakingConfig.paper_overlap()), "hybrid": True}


def _distance_config() -> dict:
    from repro.experiments.ext_distance import LIMITS

    return {"limits": list(LIMITS), "rescue_limit": 128}


def _predictors_config() -> dict:
    from repro.core import CloakingConfig

    return {"cloaking": repr(CloakingConfig.paper_overlap()),
            "predictors": ["last_value", "stride"]}


def _analysis_config() -> dict:
    from repro.analysis.__main__ import JSON_SCHEMA_VERSION

    return {"analyzer_schema": JSON_SCHEMA_VERSION}


def _static_ddt_config() -> dict:
    from repro.analysis.__main__ import JSON_SCHEMA_VERSION
    from repro.experiments.ext_static_ddt import MISS_LIMIT

    return {"analyzer_schema": JSON_SCHEMA_VERSION,
            "ddt": "infinite", "miss_limit": MISS_LIMIT}


def _static_distance_config() -> dict:
    from repro.analysis.__main__ import JSON_SCHEMA_VERSION
    from repro.experiments.ext_static_distance import VIOLATION_LIMIT

    return {"analyzer_schema": JSON_SCHEMA_VERSION,
            "ddt": "infinite", "metric": "distance",
            "violation_limit": VIOLATION_LIMIT}


def _staticcheck_config() -> dict:
    from pathlib import Path

    import repro.harness
    from repro.staticcheck import REGISTRY_VERSION, REPORT_SCHEMA_VERSION
    from repro.util.hashing import tree_fingerprint

    # the store's code fingerprint excludes repro/harness, so staticcheck
    # cells (which analyze it) fold their own fingerprint of it into the
    # config key; REGISTRY_VERSION invalidates on rule-set changes.
    harness_root = Path(repro.harness.__file__).resolve().parent
    return {"registry_version": REGISTRY_VERSION,
            "report_schema": REPORT_SCHEMA_VERSION,
            "harness_fingerprint": tree_fingerprint(harness_root)}


def _staticcheck_cells() -> List[str]:
    from repro.staticcheck.artefact import scopes

    return scopes()


def _serve_soak_config() -> dict:
    from repro.core import CloakingConfig
    from repro.serve.protocol import DEGRADED_REASONS, PROTO_VERSION
    from repro.serve.soak import SOAK_FAULTS, SOAK_VERSION

    return {"proto": PROTO_VERSION, "soak_version": SOAK_VERSION,
            "degraded_reasons": list(DEGRADED_REASONS),
            "faults": list(SOAK_FAULTS),
            "cloaking": repr(CloakingConfig.paper_accuracy())}


def _chaos_config() -> dict:
    from repro.chaos.inject import PREDICTOR_FAULTS
    from repro.chaos.oracle import ORACLE_VERSION
    from repro.core import CloakingConfig

    return {"oracle": ORACLE_VERSION,
            "faults": list(PREDICTOR_FAULTS),
            "cloaking": repr(CloakingConfig.paper_accuracy())}


#: Paper order; ``summary_multiplier`` mirrors ``summary.ARTEFACTS`` (the
#: timing experiments run at a reduced default scale).  Populated below
#: through :func:`register` so duplicate names fail loudly.
# staticcheck: ignore[FS101] import-time registry — register() runs at
# module top level (and in tests); parent and fork children see one state
ARTEFACTS: Dict[str, ArtefactSpec] = {}


def register(spec: ArtefactSpec) -> ArtefactSpec:
    """Add an artefact to the registry.

    Rejects duplicate names: a silent overwrite would redirect every
    cached result-store key and CLI invocation of the existing artefact
    to the new module, which is never what a typo'd registration wants.
    """
    if spec.name in ARTEFACTS:
        existing = ARTEFACTS[spec.name]
        raise ValueError(
            f"artefact {spec.name!r} is already registered "
            f"(module {existing.module}); pick a distinct name instead of "
            f"overwriting it")
    ARTEFACTS[spec.name] = spec
    return spec


for _spec in (
        ArtefactSpec("table51", "repro.experiments.table51",
                     "Table 5.1", 1.0),
        ArtefactSpec("fig2", "repro.experiments.fig2",
                     "Figure 2", 1.0, _locality_config),
        ArtefactSpec("fig5", "repro.experiments.fig5",
                     "Figure 5", 1.0, _sweep_config),
        ArtefactSpec("fig6", "repro.experiments.fig6",
                     "Figure 6", 1.0, _accuracy_config),
        ArtefactSpec("fig7", "repro.experiments.fig7",
                     "Figure 7", 1.0, _breakdown_config),
        ArtefactSpec("table52", "repro.experiments.table52",
                     "Table 5.2", 1.0, _overlap_config),
        ArtefactSpec("fig9", "repro.experiments.fig9",
                     "Figure 9", 0.25, _timing_config),
        ArtefactSpec("fig10", "repro.experiments.fig10",
                     "Figure 10", 0.25, _nospec_timing_config),
        ArtefactSpec("ext_hybrid", "repro.experiments.ext_hybrid",
                     "Extension: hybrid", 1.0, _hybrid_config),
        ArtefactSpec("ext_distance", "repro.experiments.ext_distance",
                     "Extension: distances", 1.0, _distance_config),
        ArtefactSpec("ext_predictors", "repro.experiments.ext_predictors",
                     "Extension: predictors", None, _predictors_config),
        ArtefactSpec("ext_static_ddt", "repro.experiments.ext_static_ddt",
                     "Extension: static vs dynamic DDT", None,
                     _static_ddt_config),
        ArtefactSpec("ext_static_distance",
                     "repro.experiments.ext_static_distance",
                     "Extension: static distance bounds", None,
                     _static_distance_config),
        ArtefactSpec("analysis", "repro.analysis.artefact",
                     "Static analysis", None, _analysis_config),
        ArtefactSpec("ext_staticcheck", "repro.staticcheck.artefact",
                     "Extension: invariant lint", None, _staticcheck_config,
                     cells=_staticcheck_cells),
        ArtefactSpec("chaos", "repro.chaos.artefact",
                     "Chaos: fault injection", None, _chaos_config),
        ArtefactSpec("ext_serve_soak", "repro.serve.artefact",
                     "Extension: serve soak", None, _serve_soak_config),
):
    register(_spec)
del _spec


def artefact_names(summary_only: bool = False) -> List[str]:
    """Registered artefact names (paper order)."""
    return [name for name, spec in ARTEFACTS.items()
            if not summary_only or spec.summary_multiplier is not None]


def get_artefact(name: str) -> ArtefactSpec:
    try:
        return ARTEFACTS[name]
    except KeyError:
        known = ", ".join(ARTEFACTS)
        raise ValueError(
            f"unknown artefact {name!r}; known: {known}") from None
