"""The scheduler: a thin orchestrator over execution backends.

The scheduler owns everything that must be identical no matter where
jobs execute — deduplication, store-key computation, cache lookups,
manifest records and aggregation bookkeeping — and delegates the actual
running to an :mod:`execution backend <repro.harness.backends>`:

* ``inline`` (``workers=0``): jobs run serially in the calling process;
  this is what plain ``python -m repro summary`` uses.
* ``fork`` (``workers>=1``, the default): one crash-isolated forked
  child per job with per-job timeout, SIGTERM→SIGKILL escalation and
  bounded retry.
* ``worker``: jobs are serialized into a persistent leased work queue
  (``repro.harness.queue``) and drained by worker processes — spawned
  locally, or running standalone on any host that shares the store
  directory (``python -m repro.harness worker``).

Because rows always travel through the same store serialization and are
recomposed in the same paper order, all backends produce byte-identical
reports for the same grid.  Retry pacing is key-derived (hashed from the
job identity, see ``backends.base.retry_backoff_delay``), so even retry
schedules are reproducible across backends.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Dict, List, Optional

from repro.harness.backends import (
    BACKEND_NAMES,
    BackendConfig,
    RunState,
    make_backend,
    retry_backoff_delay,
)
from repro.harness.jobs import JobSpec
from repro.harness.manifest import (
    STATUS_HIT,
    JobRecord,
    ProgressFn,
    RunManifest,
)
from repro.harness.store import ResultStore, code_fingerprint


class HarnessError(RuntimeError):
    """Raised when a sweep finishes with failed cells and the caller
    asked for all-or-nothing results."""


class Scheduler:
    """Fan a job list out over an execution backend, through the store."""

    #: seconds a terminated worker gets to exit before SIGKILL
    DEFAULT_TERM_GRACE = 5.0
    #: base retry delay (seconds); attempt N waits ~ backoff * 2**(N-1)
    DEFAULT_RETRY_BACKOFF = 0.1

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 term_grace: float = DEFAULT_TERM_GRACE,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 backend: Optional[str] = None,
                 queue_dir: Optional[os.PathLike] = None,
                 lease_ttl: Optional[float] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if term_grace < 0:
            raise ValueError("term_grace must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(f"unknown execution backend {backend!r}; "
                             f"known: {', '.join(BACKEND_NAMES)}")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.term_grace = term_grace
        self.retry_backoff = retry_backoff
        #: chosen lazily from ``workers`` unless pinned explicitly
        self.backend_name = backend or ("inline" if workers == 0
                                        else "fork")
        self.queue_dir = queue_dir
        self.lease_ttl = lease_ttl

    # -- public API ------------------------------------------------------

    def run(self, jobs: List[JobSpec], store: Optional[ResultStore] = None,
            use_cache: bool = True) -> "SchedulerRun":
        """Execute ``jobs``; returns rows per job plus the manifest."""
        started = time.time()
        manifest = RunManifest(workers=self.workers,
                               fingerprint=code_fingerprint(),
                               backend=self.backend_name)
        unique: List[JobSpec] = []
        seen = set()
        for spec in jobs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)

        keys = {spec: (store.key_for(spec) if store
                       else ResultStore().key_for(spec)) for spec in unique}
        results: Dict[JobSpec, list] = {}
        records: Dict[JobSpec, JobRecord] = {}

        pending: deque = deque()
        for spec in unique:
            cached = store.get(keys[spec]) if (store and use_cache) else None
            if cached is not None:
                results[spec] = cached
                records[spec] = self._record(spec, keys[spec], STATUS_HIT)
            else:
                pending.append((spec, 1, 0.0))

        if pending:
            backend = make_backend(
                self.backend_name,
                BackendConfig(workers=self.workers, timeout=self.timeout,
                              retries=self.retries,
                              term_grace=self.term_grace,
                              retry_backoff=self.retry_backoff),
                queue_dir=self.queue_dir, lease_ttl=self.lease_ttl)
            backend.execute(RunState(pending=pending, keys=keys,
                                     store=store, results=results,
                                     records=records, record=self._record))

        manifest.jobs = [records[spec] for spec in unique]
        manifest.wall_time = time.time() - started
        return SchedulerRun(results=results, manifest=manifest)

    # -- record helpers --------------------------------------------------

    def _backoff(self, spec: JobSpec, attempts: int) -> float:
        """Retry delay for ``spec``: the shared key-derived schedule."""
        return retry_backoff_delay(spec, attempts, self.retry_backoff)

    def _record(self, spec: JobSpec, key: str, status: str,
                wall_time: float = 0.0, worker=None,
                attempts: int = 1, error: Optional[str] = None) -> JobRecord:
        record = JobRecord(
            artefact=spec.artefact, workload=spec.workload, scale=spec.scale,
            params={k: list(v) if isinstance(v, tuple) else v
                    for k, v in spec.params},
            key=key, status=status, wall_time=round(wall_time, 4),
            worker=worker, attempts=attempts, error=error)
        if self.progress is not None:
            self.progress(record)
        return record


class SchedulerRun:
    """The outcome of one :meth:`Scheduler.run` call."""

    def __init__(self, results: Dict[JobSpec, list],
                 manifest: RunManifest) -> None:
        self.results = results
        self.manifest = manifest

    def rows_for_jobs(self, jobs: List[JobSpec],
                      allow_failures: bool = False) -> list:
        """Concatenate per-job rows in the given (paper) order."""
        missing = [spec for spec in jobs if spec not in self.results]
        if missing and not allow_failures:
            labels = ", ".join(spec.label for spec in missing)
            raise HarnessError(f"jobs failed: {labels}")
        rows: list = []
        for spec in jobs:
            rows.extend(self.results.get(spec, []))
        return rows
