"""The job scheduler: a crash-isolated ``multiprocessing`` fan-out.

Each cache-miss job runs in its own worker process (``fork`` start
method), so a worker that dies — segfault, OOM kill, unhandled exception
— fails exactly one cell and never takes the sweep down.  Jobs get a
per-job wall-clock timeout and a bounded number of retries; whatever
remains failed after the retry budget is recorded in the manifest with
its traceback and the sweep continues.

A worker that outlives its timeout is first sent SIGTERM; if it ignores
that (blocked in C code, masked signals, a deliberate chaos hang) it is
SIGKILLed after ``term_grace`` seconds — the sweep never blocks on an
unkillable child.  Retries are spaced by exponential backoff with
deterministic jitter (hashed from the job identity and attempt number),
so a crashing cell does not hot-loop and repeated runs back off
identically.

``workers=0`` executes jobs inline in the calling process (no
subprocesses, timeouts ignored) with identical bookkeeping — that is the
mode the plain serial ``python -m repro summary`` path uses, which is why
parallel and serial runs agree by construction: both produce rows through
the same job decomposition and aggregation, differing only in where each
cell executes.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.harness.jobs import JobSpec, execute_job
from repro.harness.manifest import (
    STATUS_COMPUTED,
    STATUS_FAILED,
    STATUS_HIT,
    JobRecord,
    RunManifest,
)
from repro.harness.store import ResultStore, code_fingerprint
from repro.util.hashing import stable_hash

ProgressFn = Callable[[JobRecord], None]


class HarnessError(RuntimeError):
    """Raised when a sweep finishes with failed cells and the caller
    asked for all-or-nothing results."""


def _worker_main(spec: JobSpec, key: str, store_root, conn) -> None:
    """Child-process entry: run one job, persist it, report back."""
    start = time.time()
    try:
        rows = execute_job(spec)
        elapsed = time.time() - start
        if store_root is not None:
            ResultStore(store_root).put(key, spec, rows, elapsed)
        conn.send(("ok", rows, elapsed))
    except BaseException:
        conn.send(("err", traceback.format_exc(), time.time() - start))
    finally:
        conn.close()


class _Attempt:
    """Book-keeping for one in-flight worker process."""

    def __init__(self, spec: JobSpec, key: str, attempts: int, proc, conn):
        self.spec = spec
        self.key = key
        self.attempts = attempts
        self.proc = proc
        self.conn = conn
        self.started = time.time()


class Scheduler:
    """Fan a job list out over worker processes, through the store."""

    #: seconds a terminated worker gets to exit before SIGKILL
    DEFAULT_TERM_GRACE = 5.0
    #: base retry delay (seconds); attempt N waits ~ backoff * 2**(N-1)
    DEFAULT_RETRY_BACKOFF = 0.1

    def __init__(self, workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 term_grace: float = DEFAULT_TERM_GRACE,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if term_grace < 0:
            raise ValueError("term_grace must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.term_grace = term_grace
        self.retry_backoff = retry_backoff

    # -- public API ------------------------------------------------------

    def run(self, jobs: List[JobSpec], store: Optional[ResultStore] = None,
            use_cache: bool = True) -> "SchedulerRun":
        """Execute ``jobs``; returns rows per job plus the manifest."""
        started = time.time()
        manifest = RunManifest(workers=self.workers,
                               fingerprint=code_fingerprint())
        unique: List[JobSpec] = []
        seen = set()
        for spec in jobs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)

        keys = {spec: (store.key_for(spec) if store
                       else ResultStore().key_for(spec)) for spec in unique}
        results: Dict[JobSpec, list] = {}
        records: Dict[JobSpec, JobRecord] = {}

        pending: deque = deque()
        for spec in unique:
            cached = store.get(keys[spec]) if (store and use_cache) else None
            if cached is not None:
                results[spec] = cached
                records[spec] = self._record(spec, keys[spec], STATUS_HIT)
            else:
                pending.append((spec, 1, 0.0))

        if self.workers == 0:
            self._run_inline(pending, keys, store, results, records)
        else:
            self._run_pool(pending, keys, store, results, records)

        manifest.jobs = [records[spec] for spec in unique]
        manifest.wall_time = time.time() - started
        return SchedulerRun(results=results, manifest=manifest)

    # -- execution strategies -------------------------------------------

    def _run_inline(self, pending, keys, store, results, records) -> None:
        while pending:
            spec, attempts, not_before = pending.popleft()
            delay = not_before - time.time()
            if delay > 0:
                time.sleep(delay)
            key = keys[spec]
            start = time.time()
            try:
                rows = execute_job(spec)
            except Exception:
                self._fail(pending, records, spec, key, attempts,
                           traceback.format_exc(), time.time() - start)
                continue
            elapsed = time.time() - start
            if store is not None:
                store.put(key, spec, rows, elapsed)
            results[spec] = rows
            records[spec] = self._record(spec, key, STATUS_COMPUTED,
                                         wall_time=elapsed, attempts=attempts)

    def _run_pool(self, pending, keys, store, results, records) -> None:
        ctx = multiprocessing.get_context("fork")
        store_root = store.root if store is not None else None
        active: List[_Attempt] = []
        try:
            while pending or active:
                # Scan the queue once per round; entries still backing off
                # rotate to the back without consuming a worker slot.
                for _ in range(len(pending)):
                    if len(active) >= self.workers:
                        break
                    spec, attempts, not_before = pending.popleft()
                    if not_before > time.time():
                        pending.append((spec, attempts, not_before))
                        continue
                    recv, send = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(spec, keys[spec], store_root, send))
                    proc.start()
                    send.close()
                    active.append(_Attempt(spec, keys[spec], attempts,
                                           proc, recv))
                if active:
                    multiprocessing.connection.wait(
                        [attempt.conn for attempt in active], timeout=0.05)
                else:
                    time.sleep(0.01)  # everything is backing off
                still_active: List[_Attempt] = []
                for attempt in active:
                    finished = self._reap(pending, results, records,
                                          attempt)
                    if not finished:
                        still_active.append(attempt)
                active = still_active
        finally:
            for attempt in active:
                self._stop_worker(attempt.proc)

    def _stop_worker(self, proc) -> None:
        """Terminate a worker, escalating to SIGKILL if it will not die.

        ``join`` after a plain ``terminate`` hangs forever on a worker
        that ignores SIGTERM; SIGKILL cannot be ignored.
        """
        proc.terminate()
        proc.join(self.term_grace)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def _reap(self, pending, results, records, attempt: _Attempt) -> bool:
        """Check one in-flight attempt; True when it has been resolved."""
        spec, key = attempt.spec, attempt.key
        if attempt.conn.poll():
            try:
                message = attempt.conn.recv()
            except EOFError:
                message = None
            attempt.proc.join()
            attempt.conn.close()
            if message is not None and message[0] == "ok":
                _, rows, elapsed = message
                results[spec] = rows
                records[spec] = self._record(
                    spec, key, STATUS_COMPUTED, wall_time=elapsed,
                    worker=attempt.proc.pid, attempts=attempt.attempts)
            else:
                error = (message[1] if message else
                         f"worker died without reporting a result "
                         f"(exit code {attempt.proc.exitcode})")
                self._fail(pending, records, spec, key, attempt.attempts,
                           error, time.time() - attempt.started,
                           worker=attempt.proc.pid)
            return True
        if not attempt.proc.is_alive():
            attempt.conn.close()
            self._fail(
                pending, records, spec, key, attempt.attempts,
                f"worker died without reporting a result "
                f"(exit code {attempt.proc.exitcode})",
                time.time() - attempt.started, worker=attempt.proc.pid)
            return True
        if (self.timeout is not None
                and time.time() - attempt.started > self.timeout):
            self._stop_worker(attempt.proc)
            attempt.conn.close()
            self._fail(pending, records, spec, key, attempt.attempts,
                       f"timed out after {self.timeout:g}s",
                       time.time() - attempt.started,
                       worker=attempt.proc.pid)
            return True
        return False

    # -- record helpers --------------------------------------------------

    def _fail(self, pending, records, spec, key, attempts, error,
              wall_time, worker=None) -> None:
        if attempts <= self.retries:
            not_before = time.time() + self._backoff(spec, attempts)
            pending.append((spec, attempts + 1, not_before))
            return
        records[spec] = self._record(spec, key, STATUS_FAILED,
                                     wall_time=wall_time, worker=worker,
                                     attempts=attempts, error=error)

    def _backoff(self, spec: JobSpec, attempts: int) -> float:
        """Retry delay: exponential in the attempt count, with jitter
        hashed from the job identity so reruns back off identically."""
        if self.retry_backoff <= 0:
            return 0.0
        base = self.retry_backoff * (2 ** (attempts - 1))
        frac = int(stable_hash((spec.label, attempts), length=8), 16)
        return base * (0.5 + 0.5 * frac / 0xFFFFFFFF)

    def _record(self, spec: JobSpec, key: str, status: str,
                wall_time: float = 0.0, worker: Optional[int] = None,
                attempts: int = 1, error: Optional[str] = None) -> JobRecord:
        record = JobRecord(
            artefact=spec.artefact, workload=spec.workload, scale=spec.scale,
            params={k: list(v) if isinstance(v, tuple) else v
                    for k, v in spec.params},
            key=key, status=status, wall_time=round(wall_time, 4),
            worker=worker, attempts=attempts, error=error)
        if self.progress is not None:
            self.progress(record)
        return record


class SchedulerRun:
    """The outcome of one :meth:`Scheduler.run` call."""

    def __init__(self, results: Dict[JobSpec, list],
                 manifest: RunManifest) -> None:
        self.results = results
        self.manifest = manifest

    def rows_for_jobs(self, jobs: List[JobSpec],
                      allow_failures: bool = False) -> list:
        """Concatenate per-job rows in the given (paper) order."""
        missing = [spec for spec in jobs if spec not in self.results]
        if missing and not allow_failures:
            labels = ", ".join(spec.label for spec in missing)
            raise HarnessError(f"jobs failed: {labels}")
        rows: list = []
        for spec in jobs:
            rows.extend(self.results.get(spec, []))
        return rows
