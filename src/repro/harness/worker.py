"""The standalone queue worker: lease, execute, store, repeat.

``python -m repro.harness worker --queue DIR --store DIR`` runs this loop
in any process on any host that can see the two directories.  Several
workers drain one queue cooperatively: the lease protocol (see
:mod:`repro.harness.queue`) guarantees a job is executed by one worker at
a time, crashed workers' jobs are reclaimed, and results land in the
content-addressed store under the same keys — and with byte-identical
payloads — that inline or fork execution would produce.

By default a worker exits once every queued job has a terminal outcome
(``drain`` mode, what the worker execution backend uses); with
``keep_alive`` it idles and keeps polling for new work, which is the
long-running-fleet mode: start workers first, ``enqueue`` from anywhere,
watch ``status``.
"""

from __future__ import annotations

import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.harness.backends.base import retry_backoff_delay
from repro.harness.jobs import execute_job
from repro.harness.queue import Claim, JobQueue, default_worker_id
from repro.harness.store import ResultStore

#: seconds between queue polls when nothing is claimable
DEFAULT_POLL = 0.05


@dataclass
class WorkerStats:
    """What one worker-loop invocation did."""

    worker_id: str
    claimed: int = 0
    completed: int = 0
    failed: int = 0        # failed attempts (retryable or terminal)
    finalized: int = 0     # jobs this worker marked terminally failed
    labels: List[str] = field(default_factory=list)


def worker_loop(queue: JobQueue, store: ResultStore, *,
                worker_id: Optional[str] = None,
                retries: int = 1,
                retry_backoff: float = 0.1,
                poll: float = DEFAULT_POLL,
                max_jobs: Optional[int] = None,
                keep_alive: bool = False,
                progress: Optional[Callable[[str], None]] = None
                ) -> WorkerStats:
    """Drain ``queue`` into ``store``; returns this worker's tally.

    ``retries`` bounds attempts per job exactly like the scheduler's
    ``--retries``: a job is tried at most ``retries + 1`` times *in
    total, across all workers* (the attempt count travels in the queue's
    state sidecar, so a retry on another worker still counts).  Retry
    backoff uses the shared key-derived jitter, so the schedule is
    reproducible no matter which worker retries.

    SIGTERM — the fleet drain signal — is converted to :class:`SystemExit`
    for the duration of the loop, so a worker killed mid-job travels the
    interrupt path in :func:`_run_claim` and *releases its held lease*
    on the way out instead of stranding the job until lease expiry.
    """
    worker_id = worker_id or default_worker_id()
    stats = WorkerStats(worker_id=worker_id)
    say = progress or (lambda message: None)

    def _drain(signum, frame):
        raise SystemExit(128 + signal.SIGTERM)

    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        previous = None  # not the main thread: rely on the caller's handler
    try:
        while True:
            claim = queue.claim(worker_id, max_attempts=retries + 1)
            if claim is None:
                if not keep_alive and not queue.remaining():
                    break  # every queued job has a terminal outcome
                time.sleep(poll)
                continue
            stats.claimed += 1
            stats.labels.append(claim.spec.label)
            _run_claim(queue, store, claim, stats, retries, retry_backoff,
                       say)
            if max_jobs is not None and stats.claimed >= max_jobs:
                break
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return stats


def _run_claim(queue: JobQueue, store: ResultStore, claim: Claim,
               stats: WorkerStats, retries: int, retry_backoff: float,
               say: Callable[[str], None]) -> None:
    """Execute one leased job and record its outcome in the queue."""
    spec = claim.spec
    start = time.time()
    try:
        rows = execute_job(spec)
    except (KeyboardInterrupt, SystemExit):
        # Interrupted mid-job: hand the lease back uncharged-looking
        # (the claim already counted the attempt) and stop the loop.
        queue.release(claim.key, error="worker interrupted mid-attempt")
        raise
    except Exception:
        error = traceback.format_exc()
        stats.failed += 1
        if claim.attempt >= retries + 1:
            queue.finish_failed(claim.key, error=error,
                                attempts=claim.attempt, worker=claim.worker)
            stats.finalized += 1
            say(f"{spec.label}: failed terminally "
                f"(attempt {claim.attempt}/{retries + 1})")
        else:
            delay = retry_backoff_delay(spec, claim.attempt, retry_backoff)
            queue.release(claim.key, error=error,
                          not_before=time.time() + delay)
            say(f"{spec.label}: attempt {claim.attempt} failed, "
                f"retry in {delay:.2f}s")
        return
    elapsed = time.time() - start
    store.put(claim.key, spec, rows, elapsed)
    queue.complete(claim.key, worker=claim.worker, elapsed=elapsed,
                   attempts=claim.attempt)
    stats.completed += 1
    say(f"{spec.label}: computed ({elapsed:.2f}s)")
