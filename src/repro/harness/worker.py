"""The standalone queue worker: lease, execute, store, repeat.

``python -m repro.harness worker --queue DIR --store DIR`` runs this loop
in any process on any host that can see the two directories.  Several
workers drain one queue cooperatively: the lease protocol (see
:mod:`repro.harness.queue`) guarantees a job is executed by one worker at
a time, crashed workers' jobs are reclaimed, and results land in the
content-addressed store under the same keys — and with byte-identical
payloads — that inline or fork execution would produce.

By default a worker exits once every queued job has a terminal outcome
(``drain`` mode, what the worker execution backend uses); with
``keep_alive`` it idles and keeps polling for new work, which is the
long-running-fleet mode: start workers first, ``enqueue`` from anywhere,
watch ``status``.
"""

from __future__ import annotations

import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.harness.backends.base import retry_backoff_delay
from repro.harness.jobs import JobSpec, execute_job
from repro.harness.queue import Claim, JobQueue, default_worker_id
from repro.harness.store import ResultStore

#: seconds between queue polls when nothing is claimable
DEFAULT_POLL = 0.05


def poll_delay(worker_id: str, poll: float = DEFAULT_POLL) -> float:
    """This worker's deterministic poll interval, in ``[poll/2, poll)``.

    A fleet started simultaneously (the CI job, a cluster launcher)
    would otherwise poll the queue in lockstep forever — every worker
    sleeps the same ``poll``, wakes at the same instant, and hammers
    the shared directory together.  Hashing the worker id through the
    spec-keyed backoff helper de-phases the fleet while staying fully
    reproducible: the same worker id always polls on the same cadence.
    """
    spec = JobSpec(artefact="harness.worker-poll", workload=worker_id,
                   scale=1.0)
    return retry_backoff_delay(spec, 1, poll)


@dataclass
class WorkerStats:
    """What one worker-loop invocation did."""

    worker_id: str
    claimed: int = 0
    completed: int = 0
    failed: int = 0        # failed attempts (retryable or terminal)
    finalized: int = 0     # jobs this worker marked terminally failed
    labels: List[str] = field(default_factory=list)


def worker_loop(queue: JobQueue, store: ResultStore, *,
                worker_id: Optional[str] = None,
                retries: int = 1,
                retry_backoff: float = 0.1,
                poll: float = DEFAULT_POLL,
                max_jobs: Optional[int] = None,
                keep_alive: bool = False,
                progress: Optional[Callable[[str], None]] = None
                ) -> WorkerStats:
    """Drain ``queue`` into ``store``; returns this worker's tally.

    ``retries`` bounds attempts per job exactly like the scheduler's
    ``--retries``: a job is tried at most ``retries + 1`` times *in
    total, across all workers* (the attempt count travels in the queue's
    state sidecar, so a retry on another worker still counts).  Retry
    backoff uses the shared key-derived jitter, so the schedule is
    reproducible no matter which worker retries.

    SIGTERM — the fleet drain signal — is converted to :class:`SystemExit`
    for the duration of the loop, so a worker killed mid-job travels the
    interrupt path in :func:`_run_claim` and *releases its held lease*
    on the way out instead of stranding the job until lease expiry.
    """
    worker_id = worker_id or default_worker_id()
    stats = WorkerStats(worker_id=worker_id)
    say = progress or (lambda message: None)
    delay = poll_delay(worker_id, poll)

    def _drain(signum, frame):
        raise SystemExit(128 + signal.SIGTERM)

    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        previous = None  # not the main thread: rely on the caller's handler
    try:
        while True:
            claim = queue.claim(worker_id, max_attempts=retries + 1)
            if claim is None:
                if not keep_alive and not queue.remaining():
                    break  # every queued job has a terminal outcome
                time.sleep(delay)
                continue
            _run_claim(queue, store, claim, stats, retries, retry_backoff,
                       say)
            if max_jobs is not None and stats.claimed >= max_jobs:
                break
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return stats


def _run_claim(queue: JobQueue, store: ResultStore, claim: Claim,
               stats: WorkerStats, retries: int, retry_backoff: float,
               say: Callable[[str], None]) -> None:
    """Execute one leased job and record its outcome in the queue.

    Every statement that can raise while the lease is held sits inside
    the try: a ``store.put`` failure used to escape *between*
    ``execute_job`` and ``complete`` and strand the lease until TTL
    expiry (RS302's bug class) — now it charges the attempt and
    releases like any other failure.
    """
    spec = claim.spec
    try:
        stats.claimed += 1
        stats.labels.append(spec.label)
        start = time.time()
        rows = execute_job(spec)
        elapsed = time.time() - start
        store.put(claim.key, spec, rows, elapsed)
    except (KeyboardInterrupt, SystemExit):
        # Interrupted mid-job: hand the lease back uncharged-looking
        # (the claim already counted the attempt) and stop the loop.
        queue.release(claim.key, error="worker interrupted mid-attempt")
        raise
    except Exception:
        # The terminal queue op is the first statement in each branch
        # that can raise: formatting the error or deriving the backoff
        # *before* it would strand the lease until TTL expiry if those
        # helpers themselves failed, so they ride inside the call.
        stats.failed += 1
        if claim.attempt >= retries + 1:
            queue.finish_failed(claim.key, error=traceback.format_exc(),
                                attempts=claim.attempt, worker=claim.worker)
            stats.finalized += 1
            say(f"{spec.label}: failed terminally "
                f"(attempt {claim.attempt}/{retries + 1})")
        else:
            queue.release(claim.key, error=traceback.format_exc(),
                          not_before=time.time() + retry_backoff_delay(
                              spec, claim.attempt, retry_backoff))
            # deterministic, so recomputing for the log line is exact
            delay = retry_backoff_delay(spec, claim.attempt, retry_backoff)
            say(f"{spec.label}: attempt {claim.attempt} failed, "
                f"retry in {delay:.2f}s")
        return
    queue.complete(claim.key, worker=claim.worker, elapsed=elapsed,
                   attempts=claim.attempt)
    stats.completed += 1
    say(f"{spec.label}: computed ({elapsed:.2f}s)")
