"""Parallel experiment orchestration with a content-addressed result store.

The evaluation is a grid of artefacts x workloads.  This package
decomposes each experiment into per-(artefact, workload, scale) jobs
(:mod:`repro.harness.jobs`), fans them out over a ``multiprocessing``
worker pool with per-job timeout, crash isolation and bounded retry
(:mod:`repro.harness.scheduler`), caches every cell's rows on disk keyed
by a stable hash of the cell's full configuration plus a code fingerprint
(:mod:`repro.harness.store`), and records what happened in a run manifest
(:mod:`repro.harness.manifest`).

``python -m repro.harness run summary --workers 8`` runs the whole
evaluation in parallel; a second invocation is almost entirely cache hits.
See docs/harness.md for the job model, hash key and manifest schema.
"""

from repro.harness.jobs import JobSpec, expand_jobs, execute_job
from repro.harness.manifest import JobRecord, RunManifest
from repro.harness.registry import (
    ARTEFACTS,
    ArtefactSpec,
    artefact_names,
    register,
)
from repro.harness.scheduler import HarnessError, Scheduler
from repro.harness.store import ResultStore, code_fingerprint, rows_to_payload

from repro.harness.api import rows_for, run_artefacts

__all__ = [
    "ARTEFACTS",
    "ArtefactSpec",
    "HarnessError",
    "JobRecord",
    "JobSpec",
    "ResultStore",
    "RunManifest",
    "Scheduler",
    "artefact_names",
    "code_fingerprint",
    "execute_job",
    "expand_jobs",
    "register",
    "rows_for",
    "rows_to_payload",
    "run_artefacts",
]
