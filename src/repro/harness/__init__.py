"""Parallel experiment orchestration with a content-addressed result store.

The evaluation is a grid of artefacts x workloads.  This package
decomposes each experiment into per-(artefact, workload, scale) jobs
(:mod:`repro.harness.jobs`), runs them through a pluggable execution
backend — inline in-process, a crash-isolated ``fork`` pool, or a
leased persistent work queue drained by workers on any host sharing the
store (:mod:`repro.harness.backends`, :mod:`repro.harness.queue`,
:mod:`repro.harness.worker`) — caches every cell's rows on disk keyed
by a stable hash of the cell's full configuration plus a code fingerprint
(:mod:`repro.harness.store`), and records what happened in a run manifest
(:mod:`repro.harness.manifest`).

``python -m repro.harness run summary --workers 8`` runs the whole
evaluation in parallel; a second invocation is almost entirely cache
hits; ``run --exec-backend worker --workers 3`` drains the same grid
through the work queue with byte-identical output.  See docs/harness.md
for the job model, backend architecture, hash key and manifest schema.
"""

from repro.harness.backends import (
    BACKEND_NAMES,
    BackendConfig,
    ExecutionBackend,
    retry_backoff_delay,
)
from repro.harness.jobs import JobSpec, expand_jobs, execute_job
from repro.harness.manifest import JobRecord, RunManifest
from repro.harness.queue import JobQueue
from repro.harness.registry import (
    ARTEFACTS,
    ArtefactSpec,
    artefact_names,
    register,
)
from repro.harness.scheduler import HarnessError, Scheduler
from repro.harness.store import ResultStore, code_fingerprint, rows_to_payload
from repro.harness.worker import WorkerStats, worker_loop

from repro.harness.api import rows_for, run_artefacts

__all__ = [
    "ARTEFACTS",
    "ArtefactSpec",
    "BACKEND_NAMES",
    "BackendConfig",
    "ExecutionBackend",
    "HarnessError",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "ResultStore",
    "RunManifest",
    "Scheduler",
    "WorkerStats",
    "artefact_names",
    "code_fingerprint",
    "execute_job",
    "expand_jobs",
    "register",
    "retry_backoff_delay",
    "rows_for",
    "rows_to_payload",
    "run_artefacts",
    "worker_loop",
]
