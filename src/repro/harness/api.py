"""High-level entry points used by ``summary``, ``report_card`` and the
``python -m repro.harness`` CLI.

``run_artefacts`` pools the jobs of *several* artefact requests into one
scheduler pass — so with ``--workers 8`` the slow Figure 9 cells overlap
with the cheap Table 5.1 cells instead of each artefact forming its own
barrier — then recomposes each request's rows in paper workload order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness.jobs import JobSpec, expand_jobs
from repro.harness.manifest import RunManifest
from repro.harness.scheduler import HarnessError, ProgressFn, Scheduler
from repro.harness.store import ResultStore


@dataclass(frozen=True)
class ArtefactRequest:
    """One artefact at one scale (with optional run_one kwargs)."""

    name: str
    scale: float
    params: tuple = field(default_factory=tuple)


@dataclass
class ArtefactRun:
    """Aggregated rows for one request, plus its failed cells."""

    request: ArtefactRequest
    rows: list
    failed: List[str]  # workload abbreviations that never produced rows

    @property
    def name(self) -> str:
        return self.request.name


@dataclass
class SweepOutcome:
    runs: List[ArtefactRun]
    manifest: RunManifest

    def rows(self, name: str) -> list:
        for run in self.runs:
            if run.name == name:
                return run.rows
        raise KeyError(name)


def _normalize_params(params: Optional[dict]) -> tuple:
    items = []
    for key, value in sorted((params or {}).items()):
        if isinstance(value, list):
            value = tuple(value)
        items.append((key, value))
    return tuple(items)


def run_artefacts(requests: Sequence[tuple],
                  workloads: Optional[Sequence[str]] = None, *,
                  workers: int = 0,
                  store: Optional[ResultStore] = None,
                  use_cache: bool = True,
                  timeout: Optional[float] = None,
                  retries: int = 1,
                  term_grace: float = Scheduler.DEFAULT_TERM_GRACE,
                  retry_backoff: float = Scheduler.DEFAULT_RETRY_BACKOFF,
                  allow_failures: bool = False,
                  manifest_path: Optional[os.PathLike] = None,
                  progress: Optional[ProgressFn] = None,
                  backend: Optional[str] = None,
                  queue_dir: Optional[os.PathLike] = None,
                  lease_ttl: Optional[float] = None) -> SweepOutcome:
    """Run a batch of ``(name, scale[, params])`` artefact requests.

    All requests' jobs execute in one pooled scheduler pass.  With
    ``allow_failures`` a failed cell drops its workload's rows from the
    aggregate (and is listed in ``ArtefactRun.failed`` / the manifest);
    otherwise any failure raises :class:`HarnessError` after the sweep
    completes, so one bad cell never cancels in-flight work.

    ``backend`` picks the execution backend (``inline``/``fork``/
    ``worker``); the default follows ``workers`` — inline when 0, fork
    otherwise.  The ``worker`` backend drains a persistent job queue
    (``queue_dir``, default ``<store>/queue``) with ``workers`` local
    worker processes; external ``python -m repro.harness worker``
    processes sharing the directories join the same drain.
    """
    normalized: List[ArtefactRequest] = []
    for request in requests:
        name, scale = request[0], request[1]
        params = request[2] if len(request) > 2 else None
        normalized.append(ArtefactRequest(name, float(scale),
                                          _normalize_params(params)))

    jobs_by_request: Dict[ArtefactRequest, List[JobSpec]] = {}
    all_jobs: List[JobSpec] = []
    for request in normalized:
        jobs = expand_jobs(request.name, request.scale, workloads,
                           dict(request.params))
        jobs_by_request[request] = jobs
        all_jobs.extend(jobs)

    scheduler = Scheduler(workers=workers, timeout=timeout, retries=retries,
                          progress=progress, term_grace=term_grace,
                          retry_backoff=retry_backoff, backend=backend,
                          queue_dir=queue_dir, lease_ttl=lease_ttl)
    outcome = scheduler.run(all_jobs, store=store, use_cache=use_cache)

    if manifest_path is None and store is not None:
        manifest_path = (store.manifest_dir()
                         / f"run-{outcome.manifest.run_id}.json")
    if manifest_path is not None:
        outcome.manifest.write(manifest_path)

    runs: List[ArtefactRun] = []
    failures: List[str] = []
    for request in normalized:
        jobs = jobs_by_request[request]
        failed = [spec.workload for spec in jobs
                  if spec not in outcome.results]
        rows = outcome.rows_for_jobs(jobs, allow_failures=True)
        runs.append(ArtefactRun(request=request, rows=rows, failed=failed))
        failures.extend(f"{request.name}/{abbrev}" for abbrev in failed)
    if failures and not allow_failures:
        raise HarnessError("jobs failed: " + ", ".join(failures))
    return SweepOutcome(runs=runs, manifest=outcome.manifest)


def rows_for(name: str, scale: float,
             workloads: Optional[Sequence[str]] = None,
             params: Optional[dict] = None, *,
             workers: int = 0,
             store: Optional[ResultStore] = None,
             use_cache: bool = True,
             timeout: Optional[float] = None,
             retries: int = 1,
             backend: Optional[str] = None) -> list:
    """The aggregated rows of one artefact, computed through the harness.

    This is the drop-in replacement for ``module.run(scale, workloads)``:
    identical rows (by construction — the serial path is the in-process
    scheduler), but parallelizable and store-cacheable.
    """
    outcome = run_artefacts([(name, scale, params)], workloads,
                            workers=workers, store=store,
                            use_cache=use_cache, timeout=timeout,
                            retries=retries, backend=backend,
                            manifest_path=None)
    return outcome.runs[0].rows


__all__ = [
    "ArtefactRequest",
    "ArtefactRun",
    "HarnessError",
    "SweepOutcome",
    "rows_for",
    "run_artefacts",
]
