"""The job model: one experiment cell per (artefact, workload, scale).

Every experiment module exposes ``run(scale, workloads)`` returning a
list of per-workload row dataclasses, and rows for different workloads
are independent — so the whole evaluation decomposes into a grid of
:class:`JobSpec` cells that can execute in any order on any worker, with
the aggregate recomposed by concatenating each artefact's per-workload
rows in paper order (exactly what the serial loop produced).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.registry import ARTEFACTS, get_artefact

#: Pre-execution hook invoked with the JobSpec inside the executing
#: process (worker or inline).  Fork workers inherit it, so a hook set in
#: the parent before ``Scheduler.run`` fires inside each child — this is
#: the seam the chaos subsystem (and the harness tests) use to sabotage
#: workers: crash, hang, or delay a cell without touching experiment code.
# staticcheck: ignore[FS101] deliberate cross-fork seam — inheriting the
# hook into fork children is the documented mechanism (see above)
_INJECTION_HOOK: Optional[Callable[["JobSpec"], None]] = None


def set_injection_hook(
        hook: Optional[Callable[["JobSpec"], None]]
) -> Optional[Callable[["JobSpec"], None]]:
    """Install (or clear, with ``None``) the fault-injection hook.

    Returns the previously installed hook so callers can restore it.
    """
    global _INJECTION_HOOK
    previous = _INJECTION_HOOK
    _INJECTION_HOOK = hook
    return previous


@dataclass(frozen=True)
class JobSpec:
    """One cell of the evaluation grid.

    ``params`` carries experiment-specific keyword arguments (for example
    ``sizes=(128,)`` for a reduced Figure 5 sweep); they are forwarded to
    ``run_one`` and participate in the store hash key.
    """

    artefact: str
    workload: str
    scale: float
    params: tuple = field(default_factory=tuple)  # sorted (key, value) pairs

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    @property
    def label(self) -> str:
        return f"{self.artefact}/{self.workload}@{self.scale:g}"

    def key_fields(self) -> dict:
        """The hashable identity of this cell (code fingerprint excluded)."""
        return {
            "artefact": self.artefact,
            "workload": self.workload,
            "scale": repr(float(self.scale)),
            "params": {k: v for k, v in self.params},
            "config": get_artefact(self.artefact).config_descriptor(),
        }

    def to_json(self) -> dict:
        """A JSON-able form that :meth:`from_json` rebuilds exactly.

        This is what the work queue persists: a job must survive the trip
        through a queue file to a worker on another host and come back
        *equal* (same dataclass equality, same store key), so tuple params
        are written as lists and re-tupled on the way in.
        """
        return {
            "artefact": self.artefact,
            "workload": self.workload,
            "scale": self.scale,
            "params": [[key, list(value) if isinstance(value, tuple)
                        else value]
                       for key, value in self.params],
        }

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        """Rebuild a spec serialized by :meth:`to_json` (exact round-trip)."""
        params = tuple(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in data["params"])
        return cls(artefact=data["artefact"], workload=data["workload"],
                   scale=float(data["scale"]), params=params)


def make_job(artefact: str, workload: str, scale: float,
             params: Optional[dict] = None) -> JobSpec:
    """A :class:`JobSpec` with normalized (sorted, tuple-ized) params."""
    items = tuple(sorted((params or {}).items()))
    return JobSpec(artefact=artefact, workload=workload, scale=float(scale),
                   params=items)


def expand_jobs(artefact: str, scale: float,
                workloads: Optional[Sequence[str]] = None,
                params: Optional[dict] = None) -> List[JobSpec]:
    """Decompose one artefact request into per-cell jobs (paper order).

    Most artefacts shard per workload kernel; an artefact with a custom
    ``cells`` axis (for example ``ext_staticcheck``, which shards by
    source subpackage) supplies its own cell names, and the kernel
    ``workloads`` filter is not applied to it.
    """
    from repro.experiments.runner import select_workloads

    spec = get_artefact(artefact)  # validate the name early
    if spec.cells is not None:
        return [make_job(artefact, cell, scale, params)
                for cell in spec.cells()]
    selected = select_workloads(workloads)
    return [make_job(artefact, w.abbrev, scale, params) for w in selected]


def load_experiment_module(dotted: str):
    """Import an experiment implementation module by dotted path.

    The harness is the sanctioned home for dynamic module loading: it
    sits *outside* the code fingerprint, while every loadable target
    lives *inside* it — so routing dispatch through here keeps
    fingerprinted code free of fingerprint-invisible imports (staticcheck
    rule CK101) without weakening the cache key: the target's bytes are
    still hashed by :func:`repro.util.hashing.tree_fingerprint`.
    """
    return importlib.import_module(dotted)


def execute_job(spec: JobSpec) -> list:
    """Run one cell in the current process; returns the row list."""
    if _INJECTION_HOOK is not None:
        _INJECTION_HOOK(spec)
    module = importlib.import_module(get_artefact(spec.artefact).module)
    run_one = getattr(module, "run_one", None)
    if run_one is not None:
        return run_one(spec.workload, spec.scale, **spec.params_dict)
    return module.run(scale=spec.scale, workloads=[spec.workload],
                      **spec.params_dict)


def render_rows(artefact: str, rows: list) -> str:
    """Render aggregated rows with the artefact's own ``render``."""
    module = importlib.import_module(get_artefact(artefact).module)
    return module.render(rows)
