"""The run manifest: what happened, cell by cell.

Written as JSON next to the store (``<store>/manifests/run-<id>.json``)
after every scheduler run.  Schema (see docs/harness.md):

    {
      "run_id": "20260805-143022.518200-1a2b3c",
      "created": "2026-08-05T14:30:22",
      "workers": 4,
      "fingerprint": "0f3a...",
      "jobs": [
        {"artefact": "fig2", "workload": "li", "scale": 0.1,
         "params": {}, "key": "ab12...", "status": "hit|computed|failed",
         "wall_time": 0.41, "worker": 12345, "attempts": 1,
         "error": null}
      ],
      "totals": {"jobs": 180, "hits": 162, "computed": 18,
                 "failed": 0, "wall_time": 12.3}
    }
"""

from __future__ import annotations

import json
import os
import time
import uuid
from datetime import datetime
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional

STATUS_HIT = "hit"
STATUS_COMPUTED = "computed"
STATUS_FAILED = "failed"


@dataclass
class JobRecord:
    """The manifest entry for one job."""

    artefact: str
    workload: str
    scale: float
    params: dict
    key: str
    status: str
    wall_time: float = 0.0
    worker: Optional[int] = None    # worker pid; None = ran in-process
    attempts: int = 1
    error: Optional[str] = None     # traceback text for failed jobs

    @property
    def ok(self) -> bool:
        return self.status != STATUS_FAILED


@dataclass
class RunManifest:
    """One scheduler run: per-job records plus aggregate totals."""

    run_id: str = ""
    created: str = ""
    workers: int = 0
    fingerprint: str = ""
    jobs: List[JobRecord] = field(default_factory=list)
    wall_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.run_id:
            # microsecond stamp so manifest filenames sort by creation
            stamp = datetime.now().strftime("%Y%m%d-%H%M%S.%f")
            self.run_id = f"{stamp}-{uuid.uuid4().hex[:6]}"
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S")

    # -- aggregates ------------------------------------------------------

    def count(self, status: str) -> int:
        return sum(1 for job in self.jobs if job.status == status)

    @property
    def hits(self) -> int:
        return self.count(STATUS_HIT)

    @property
    def computed(self) -> int:
        return self.count(STATUS_COMPUTED)

    @property
    def failed(self) -> List[JobRecord]:
        return [job for job in self.jobs if job.status == STATUS_FAILED]

    @property
    def cache_hit_rate(self) -> float:
        return self.hits / len(self.jobs) if self.jobs else 0.0

    def totals(self) -> dict:
        return {
            "jobs": len(self.jobs),
            "hits": self.hits,
            "computed": self.computed,
            "failed": len(self.failed),
            "wall_time": round(self.wall_time, 3),
        }

    def summary_line(self) -> str:
        t = self.totals()
        return (f"run {self.run_id}: {t['jobs']} jobs, "
                f"{t['hits']} cache hits, {t['computed']} computed, "
                f"{t['failed']} failed, {t['wall_time']:.1f}s wall")

    # -- (de)serialization ----------------------------------------------

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "created": self.created,
            "workers": self.workers,
            "fingerprint": self.fingerprint,
            "jobs": [asdict(job) for job in self.jobs],
            "totals": self.totals(),
        }

    def write(self, path: os.PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json(), indent=2) + "\n",
                          encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: os.PathLike) -> "RunManifest":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        manifest = cls(
            run_id=data["run_id"],
            created=data["created"],
            workers=data.get("workers", 0),
            fingerprint=data.get("fingerprint", ""),
            jobs=[JobRecord(**job) for job in data.get("jobs", [])],
        )
        manifest.wall_time = data.get("totals", {}).get("wall_time", 0.0)
        return manifest
