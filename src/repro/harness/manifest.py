"""The run manifest: what happened, cell by cell.

Written as JSON next to the store (``<store>/manifests/run-<id>.json``)
after every scheduler run.  Schema (see docs/harness.md):

    {
      "run_id": "20260805-143022.518200-1a2b3c",
      "created": "2026-08-05T14:30:22",
      "workers": 4,
      "backend": "fork",
      "fingerprint": "0f3a...",
      "jobs": [
        {"artefact": "fig2", "workload": "li", "scale": 0.1,
         "params": {}, "key": "ab12...", "status": "hit|computed|failed",
         "wall_time": 0.41, "worker": 12345, "attempts": 1,
         "error": null}
      ],
      "totals": {"jobs": 180, "hits": 162, "computed": 18,
                 "failed": 0, "wall_time": 12.3}
    }

``worker`` attributes the cell to whoever executed it: a pid for forked
children, a ``host:pid`` string for queue workers (which may live on
another machine), ``null`` for in-process execution.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from datetime import datetime
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

STATUS_HIT = "hit"
STATUS_COMPUTED = "computed"
STATUS_FAILED = "failed"

#: per-cell progress callback fired as records are created
ProgressFn = Callable[["JobRecord"], None]

#: who executed a cell: forked-child pid, queue-worker ``host:pid``
#: string, or None for in-process execution
WorkerRef = Optional[Union[int, str]]


@dataclass
class JobRecord:
    """The manifest entry for one job."""

    artefact: str
    workload: str
    scale: float
    params: dict
    key: str
    status: str
    wall_time: float = 0.0
    worker: WorkerRef = None
    attempts: int = 1
    error: Optional[str] = None     # traceback text for failed jobs

    @property
    def ok(self) -> bool:
        return self.status != STATUS_FAILED


@dataclass
class RunManifest:
    """One scheduler run: per-job records plus aggregate totals."""

    run_id: str = ""
    created: str = ""
    workers: int = 0
    backend: str = ""               # execution backend of the run
    fingerprint: str = ""
    jobs: List[JobRecord] = field(default_factory=list)
    wall_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.run_id:
            # microsecond stamp so manifest filenames sort by creation
            stamp = datetime.now().strftime("%Y%m%d-%H%M%S.%f")
            self.run_id = f"{stamp}-{uuid.uuid4().hex[:6]}"
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S")

    # -- aggregates ------------------------------------------------------

    def count(self, status: str) -> int:
        return sum(1 for job in self.jobs if job.status == status)

    @property
    def hits(self) -> int:
        return self.count(STATUS_HIT)

    @property
    def computed(self) -> int:
        return self.count(STATUS_COMPUTED)

    @property
    def failed(self) -> List[JobRecord]:
        return [job for job in self.jobs if job.status == STATUS_FAILED]

    @property
    def cache_hit_rate(self) -> float:
        return self.hits / len(self.jobs) if self.jobs else 0.0

    def by_worker(self) -> Dict[str, int]:
        """Computed-cell counts per executing worker.

        Keys are the manifest's worker references rendered as strings
        (pid, ``host:pid``, or ``inline`` for in-process cells) — the
        queue backend's per-worker attribution at a glance.
        """
        counts: Dict[str, int] = {}
        for job in self.jobs:
            if job.status != STATUS_COMPUTED:
                continue
            name = "inline" if job.worker is None else str(job.worker)
            counts[name] = counts.get(name, 0) + 1
        return counts

    def totals(self) -> dict:
        return {
            "jobs": len(self.jobs),
            "hits": self.hits,
            "computed": self.computed,
            "failed": len(self.failed),
            "wall_time": round(self.wall_time, 3),
        }

    def summary_line(self) -> str:
        t = self.totals()
        return (f"run {self.run_id}: {t['jobs']} jobs, "
                f"{t['hits']} cache hits, {t['computed']} computed, "
                f"{t['failed']} failed, {t['wall_time']:.1f}s wall")

    # -- (de)serialization ----------------------------------------------

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "created": self.created,
            "workers": self.workers,
            "backend": self.backend,
            "fingerprint": self.fingerprint,
            "jobs": [asdict(job) for job in self.jobs],
            "totals": self.totals(),
        }

    def write(self, path: os.PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json(), indent=2) + "\n",
                          encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: os.PathLike) -> "RunManifest":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        manifest = cls(
            run_id=data["run_id"],
            created=data["created"],
            workers=data.get("workers", 0),
            backend=data.get("backend", ""),
            fingerprint=data.get("fingerprint", ""),
            jobs=[JobRecord(**job) for job in data.get("jobs", [])],
        )
        manifest.wall_time = data.get("totals", {}).get("wall_time", 0.0)
        return manifest
