"""The content-addressed result store.

Each cached object is the row list of one job, stored as JSON under a key
that hashes the cell's full identity:

    sha256({artefact, workload, scale, params, config, fingerprint})

where ``config`` is the artefact's configuration descriptor (pipeline /
DDT / predictor settings, see :mod:`repro.harness.registry`) and
``fingerprint`` digests every ``.py`` file under ``src/repro`` except the
harness itself.  Unchanged cells are cache hits on the next run; any code
or configuration change misses cleanly instead of serving stale rows.

The row serializer (``rows_to_payload`` / ``rows_from_payload``) is also
what the shared ``--json`` experiment flag emits, so on-disk cache
objects and user-requested JSON exports share one format.

A cached object that exists but cannot be decoded (truncation, bit rot,
schema drift) is never served and never silently dropped: ``get`` moves
it to ``<store>/quarantine/`` with a ``.reason`` sidecar, logs one warning
per run, and reports a miss so the scheduler recomputes the cell.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import logging
import os
import time
from functools import lru_cache
from pathlib import Path
from typing import List, Optional

logger = logging.getLogger(__name__)

from repro.util.hashing import stable_hash, tree_fingerprint

#: Default store location (relative to the working directory).
DEFAULT_ROOT = Path("results") / "store"

#: seconds a ``.tmp`` file must sit untouched before it counts as stale.
#: ``put`` writes, fsyncs and renames its temp file within moments, so a
#: ``.tmp`` older than this belongs to a dead writer — while anything
#: younger may be an in-flight ``put`` that must not be reported or swept.
DEFAULT_TMP_AGE = 60.0


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the repro source tree (harness excluded)."""
    import repro

    return tree_fingerprint(Path(repro.__file__).parent, exclude=("harness",))


def rows_to_payload(rows: list) -> dict:
    """Serialize a homogeneous list of row dataclasses to JSON-able form."""
    if not rows:
        return {"row_type": None, "rows": []}
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError(f"expected dataclass rows, got {type(first).__name__}")
    row_type = f"{type(first).__module__}:{type(first).__qualname__}"
    return {
        "row_type": row_type,
        "rows": [dataclasses.asdict(row) for row in rows],
    }


def rows_from_payload(payload: dict) -> list:
    """Rebuild row dataclass instances from ``rows_to_payload`` output.

    A payload missing the ``row_type``/``rows`` keys is malformed (schema
    drift), not an empty result — raising here keeps ``ResultStore.get``
    from serving a corrupt object as a legitimate zero-row cache hit.
    """
    try:
        row_type = payload["row_type"]
        rows = payload["rows"]
    except (KeyError, TypeError):
        raise ValueError("malformed rows payload: missing row_type/rows")
    if row_type is None:
        if rows:
            raise ValueError("rows payload carries rows but no row_type")
        return []
    module_name, _, class_name = row_type.partition(":")
    cls = getattr(importlib.import_module(module_name), class_name)
    return [cls(**fields) for fields in rows]


def write_rows_json(path: str, rows: list, indent: int = 2) -> None:
    """Emit rows as machine-readable JSON (the ``--json`` flag)."""
    payload = rows_to_payload(rows)
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=indent) + "\n",
                      encoding="utf-8")


class ResultStore:
    """JSON objects on disk, addressed by content hash."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_ROOT
        # warn once per store instance (= once per run for the CLI/API,
        # which construct a single store); instance state stays
        # fork-safe where a module-level registry would not (FS101)
        self._quarantine_warned = False

    # -- keys ------------------------------------------------------------

    def key_for(self, spec, fingerprint: Optional[str] = None) -> str:
        """The store key of a :class:`~repro.harness.jobs.JobSpec`."""
        fields = dict(spec.key_fields())
        fields["fingerprint"] = (fingerprint if fingerprint is not None
                                 else code_fingerprint())
        return stable_hash(fields)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # -- object access ---------------------------------------------------

    def has(self, key: str) -> bool:
        return self._object_path(key).exists()

    def get(self, key: str) -> Optional[list]:
        """The cached rows for ``key``, or None on a miss.

        A present-but-undecodable object (truncated write, bit rot,
        schema drift) is quarantined rather than silently missed, so the
        damage is visible in ``python -m repro.harness status`` and the
        cell recomputes cleanly.
        """
        path = self._object_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(path, key, f"unreadable: {exc}")
            return None
        try:
            return rows_from_payload(json.loads(text))
        except Exception as exc:
            self._quarantine(
                path, key, f"corrupt: {type(exc).__name__}: {exc}")
            return None

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a bad object aside with a ``.reason`` sidecar and warn."""
        target_dir = self.quarantine_dir()
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            return  # racing reader already moved (or removed) it
        target.with_suffix(".reason").write_text(
            reason + "\n", encoding="utf-8")
        if not self._quarantine_warned:
            self._quarantine_warned = True
            logger.warning(
                "quarantined corrupt result-store object %s (%s); "
                "further quarantines this run are silent — see %s",
                key, reason, target_dir)

    def put(self, key: str, spec, rows: list, elapsed: float = 0.0) -> None:
        """Store rows for ``key`` (atomic write; last writer wins).

        Safe under concurrent multi-process writers — including workers
        on other hosts sharing the store directory: the payload goes to
        a per-pid temp file, is flushed and fsynced, and only then moves
        into place with an atomic ``os.replace``.  A writer killed at
        any point leaves either the previous object or none — never a
        truncated one — plus at worst a stale ``.tmp`` file that is
        never served (see :meth:`stale_tmps`).
        """
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = rows_to_payload(rows)
        payload["cell"] = spec.key_fields()
        payload["elapsed"] = elapsed
        # staticcheck: ignore[RS303] a tmp stranded by a crash mid-write
        # is the documented failure mode: it is never served, and
        # ``stale_tmps`` exists precisely to sweep this debris offline.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_dir(path.parent)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Persist a rename by fsyncing its directory (best effort)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- maintenance -----------------------------------------------------

    def objects(self) -> List[Path]:
        objects_dir = self.root / "objects"
        if not objects_dir.is_dir():
            return []
        return sorted(objects_dir.glob("*/*.json"))

    def stale_tmps(self, min_age: float = DEFAULT_TMP_AGE) -> List[Path]:
        """Leftover ``.tmp`` files from writers that died mid-``put``.

        Harmless (they are never served — lookups go by exact object
        name) but visible, so ``status`` can report them and ``clean``
        removes them.  Only files untouched for at least ``min_age``
        seconds qualify: a younger ``.tmp`` may belong to a concurrent
        in-flight ``put`` (another worker, another host) whose temp file
        must never be reported as damage — much less swept out from
        under the live writer.  Pass ``min_age=0.0`` to list every
        ``.tmp`` regardless of age.
        """
        objects_dir = self.root / "objects"
        if not objects_dir.is_dir():
            return []
        cutoff = time.time() - min_age
        stale = []
        for path in sorted(objects_dir.glob("*/.*.tmp")):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # the racing writer just renamed it into place
            if mtime <= cutoff:
                stale.append(path)
        return stale

    def cell_backends(self) -> dict:
        """Cached-cell counts per producing simulation backend.

        Reads each object's embedded cell descriptor: the ``backend``
        JobSpec param when present, else the default ``reference`` (cells
        whose artefact predates — or does not take — backend selection).
        Undecodable objects count as ``unknown`` rather than being
        quarantined here: ``status`` reporting must not mutate the store.
        """
        counts: dict = {}
        for path in self.objects():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                params = payload["cell"].get("params", {})
                backend = params.get("backend", "reference")
            except Exception:
                backend = "unknown"
            counts[backend] = counts.get(backend, 0) + 1
        return counts

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def quarantined(self) -> List[Path]:
        """Quarantined object files (each has a ``.reason`` sidecar)."""
        if not self.quarantine_dir().is_dir():
            return []
        return sorted(self.quarantine_dir().glob("*.json"))

    def quarantine_reason(self, path: Path) -> str:
        """The recorded reason for one quarantined object file."""
        sidecar = path.with_suffix(".reason")
        try:
            return sidecar.read_text(encoding="utf-8").strip()
        except OSError:
            return "unknown"

    def manifest_dir(self) -> Path:
        return self.root / "manifests"

    def manifests(self) -> List[Path]:
        if not self.manifest_dir().is_dir():
            return []
        return sorted(self.manifest_dir().glob("run-*.json"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.objects())

    def clean(self) -> int:
        """Delete every cached object, manifest and quarantined file;
        returns the number of files removed.  ``.tmp`` files younger
        than :data:`DEFAULT_TMP_AGE` are left alone — they may belong to
        a live concurrent ``put`` on another worker or host."""
        removed = 0
        quarantined = [p for path in self.quarantined()
                       for p in (path, path.with_suffix(".reason"))
                       if p.exists()]
        for path in (self.objects() + self.stale_tmps() + self.manifests()
                     + quarantined):
            path.unlink()
            removed += 1
        for sub in sorted(self.root.glob("objects/*")):
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        return removed
