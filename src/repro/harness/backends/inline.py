"""The inline backend: every job runs in the calling process.

No subprocesses, no timeouts — identical bookkeeping to the parallel
backends, which is why the plain serial ``python -m repro summary`` path
(which routes through here with ``workers=0``) agrees with them by
construction.
"""

from __future__ import annotations

import time
import traceback

from repro.harness.backends.base import ExecutionBackend, RunState
from repro.harness.jobs import execute_job
from repro.harness.manifest import STATUS_COMPUTED


class InlineBackend(ExecutionBackend):
    """Run jobs one at a time, in-process, in queue order."""

    name = "inline"

    def execute(self, state: RunState) -> None:
        pending = state.pending
        while pending:
            spec, attempts, not_before = pending.popleft()
            delay = not_before - time.time()
            if delay > 0:
                time.sleep(delay)
            key = state.keys[spec]
            start = time.time()
            try:
                rows = execute_job(spec)
            except Exception:
                self.fail(state, spec, key, attempts,
                          traceback.format_exc(), time.time() - start)
                continue
            elapsed = time.time() - start
            if state.store is not None:
                state.store.put(key, spec, rows, elapsed)
            state.results[spec] = rows
            state.records[spec] = state.record(
                spec, key, STATUS_COMPUTED, wall_time=elapsed,
                attempts=attempts)
