"""The execution-backend contract shared by inline, fork and worker.

A backend is handed the cache-miss jobs of one scheduler run (the
:class:`RunState`) and must resolve every one of them: either a row list
lands in ``state.results`` plus a ``computed`` record, or a ``failed``
record explains why.  *Where* the job executes — the calling process, a
forked child, a leased queue worker on another host — is the backend's
business; the job decomposition, the store key and the aggregation order
are fixed by the scheduler, which is why every backend produces
byte-identical reports for the same grid.

Retry pacing lives here too: :func:`retry_backoff_delay` derives the
jitter from the *job's own identity* (artefact, workload, scale, params),
not from any worker-local state, so the retry schedule of a given cell is
reproducible across backends, processes and hosts.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.harness.jobs import JobSpec
from repro.harness.manifest import STATUS_FAILED, JobRecord
from repro.harness.store import ResultStore
from repro.util.hashing import stable_hash

#: one pending entry: (spec, attempt number, earliest start time)
PendingEntry = Tuple[JobSpec, int, float]

#: signature of the scheduler's record factory (spec, key, status, ...)
RecordFn = Callable[..., JobRecord]


def retry_backoff_delay(spec: JobSpec, attempts: int, base: float) -> float:
    """Delay before retry ``attempts + 1`` of ``spec``.

    Exponential in the attempt count with deterministic jitter hashed
    from the job's serialized identity — *all* of it, params included, so
    two cells differing only in params do not retry in lockstep, and the
    same cell backs off identically no matter which backend, process or
    host is retrying it.
    """
    if base <= 0:
        return 0.0
    scale = base * (2 ** (attempts - 1))
    frac = int(stable_hash((spec.to_json(), attempts), length=8), 16)
    return scale * (0.5 + 0.5 * frac / 0xFFFFFFFF)


@dataclass(frozen=True)
class BackendConfig:
    """The execution policy a backend must honour."""

    workers: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    term_grace: float = 5.0
    retry_backoff: float = 0.1


@dataclass
class RunState:
    """The mutable bookkeeping of one scheduler run.

    Backends drain ``pending`` and fill ``results``/``records``; the
    ``record`` factory (owned by the scheduler) builds manifest entries
    and fires the progress callback.
    """

    pending: Deque[PendingEntry]
    keys: Dict[JobSpec, str]
    store: Optional[ResultStore]
    results: Dict[JobSpec, list]
    records: Dict[JobSpec, JobRecord]
    record: RecordFn


class ExecutionBackend(ABC):
    """Resolve every pending job of a run, somewhere."""

    #: registry name (``--exec-backend`` value); subclasses override
    name = "abstract"

    def __init__(self, config: BackendConfig) -> None:
        self.config = config

    @abstractmethod
    def execute(self, state: RunState) -> None:
        """Drain ``state.pending``, filling results and records."""

    # -- shared failure/retry policy ------------------------------------

    def fail(self, state: RunState, spec: JobSpec, key: str, attempts: int,
             error: str, wall_time: float, worker=None) -> None:
        """Requeue a failed attempt, or record it as terminally failed."""
        if attempts <= self.config.retries:
            not_before = time.time() + retry_backoff_delay(
                spec, attempts, self.config.retry_backoff)
            state.pending.append((spec, attempts + 1, not_before))
            return
        state.records[spec] = state.record(
            spec, key, STATUS_FAILED, wall_time=wall_time, worker=worker,
            attempts=attempts, error=error)


def make_pending(specs, start_attempt: int = 1) -> "deque[PendingEntry]":
    """A pending deque for ``specs``, all immediately runnable."""
    return deque((spec, start_attempt, 0.0) for spec in specs)
