"""Execution backends: *where* the scheduler's jobs run.

The scheduler owns job decomposition, cache lookups, aggregation order
and the manifest; a backend owns execution placement:

* ``inline`` — jobs run serially in the calling process (``workers=0``).
* ``fork``   — one crash-isolated forked child per job, with timeout,
  SIGTERM→SIGKILL escalation and bounded retry (``workers>=1``).
* ``worker`` — jobs are serialized into a persistent leased work queue
  and drained by N worker processes, on this host or any host sharing
  the store directory.

All three produce byte-identical reports for the same grid — the rows
travel through the same store serialization and are recomposed in the
same paper order.
"""

from __future__ import annotations

from typing import Optional

from repro.harness.backends.base import (
    BackendConfig,
    ExecutionBackend,
    RunState,
    make_pending,
    retry_backoff_delay,
)

#: the names ``make_backend`` (and ``--exec-backend``) accepts
BACKEND_NAMES = ("inline", "fork", "worker")


def make_backend(name: str, config: BackendConfig, *,
                 queue_dir=None,
                 lease_ttl: Optional[float] = None) -> ExecutionBackend:
    """Instantiate the named backend (lazy imports keep startup light)."""
    if name == "inline":
        from repro.harness.backends.inline import InlineBackend

        return InlineBackend(config)
    if name == "fork":
        from repro.harness.backends.fork import ForkBackend

        return ForkBackend(config)
    if name == "worker":
        from repro.harness.backends.worker import WorkerBackend

        return WorkerBackend(config, queue_dir=queue_dir,
                             lease_ttl=lease_ttl)
    raise ValueError(f"unknown execution backend {name!r}; "
                     f"known: {', '.join(BACKEND_NAMES)}")


__all__ = [
    "BACKEND_NAMES",
    "BackendConfig",
    "ExecutionBackend",
    "RunState",
    "make_backend",
    "make_pending",
    "retry_backoff_delay",
]
