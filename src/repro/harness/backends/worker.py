"""The worker backend: queue-drain execution over the shared store.

``execute`` serializes every pending job into a persistent
:class:`~repro.harness.queue.JobQueue` (default ``<store>/queue``),
spawns ``workers`` local worker-loop processes, and waits for the queue
to drain.  Because the queue and store are plain directories, *external*
workers — ``python -m repro.harness worker`` on this host or any other
host sharing the filesystem — can join the drain at any point; with
``workers=0`` the backend spawns nothing and relies on them entirely.

Results are collected back through the store (the same content-addressed
objects any backend writes), so the recomposed report is byte-identical
to inline and fork execution of the same grid.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional

from repro.harness.backends.base import ExecutionBackend, RunState
from repro.harness.jobs import JobSpec
from repro.harness.manifest import STATUS_COMPUTED, STATUS_FAILED
from repro.harness.queue import DEFAULT_LEASE_TTL, JobQueue

#: seconds between drain-progress polls in the orchestrating process
_DRAIN_POLL = 0.05


def _spawn_worker_main(queue_root, store_root, lease_ttl, retries,
                       retry_backoff) -> None:
    """Entry point of one spawned worker process (fork start method)."""
    from repro.harness.store import ResultStore
    from repro.harness.worker import worker_loop

    worker_loop(JobQueue(queue_root, lease_ttl=lease_ttl),
                ResultStore(store_root), retries=retries,
                retry_backoff=retry_backoff, keep_alive=False)


class WorkerBackend(ExecutionBackend):
    """Drain jobs through a leased work queue shared with N workers."""

    name = "worker"

    def __init__(self, config, queue_dir=None,
                 lease_ttl: Optional[float] = None) -> None:
        super().__init__(config)
        self.queue_dir = queue_dir
        self.lease_ttl = lease_ttl if lease_ttl is not None else (
            DEFAULT_LEASE_TTL)

    def execute(self, state: RunState) -> None:
        if state.store is None:
            raise ValueError(
                "the worker backend requires a result store: completed "
                "jobs hand their rows over through it")
        queue_root = (self.queue_dir if self.queue_dir is not None
                      else state.store.root / "queue")
        queue = JobQueue(queue_root, lease_ttl=self.lease_ttl)

        ordered: List[JobSpec] = []
        while state.pending:
            spec, _attempts, _not_before = state.pending.popleft()
            queue.enqueue(spec, state.keys[spec])
            ordered.append(spec)
        if not ordered:
            return

        procs = self._spawn_workers(state.store.root, queue_root)
        try:
            self._await_drain(queue, [state.keys[spec] for spec in ordered],
                              procs)
        finally:
            self._stop_workers(procs)
        self._collect(state, queue, ordered)

    # -- worker fleet ----------------------------------------------------

    def _spawn_workers(self, store_root, queue_root) -> list:
        ctx = multiprocessing.get_context("fork")
        procs = []
        for _ in range(self.config.workers):
            proc = ctx.Process(
                target=_spawn_worker_main,
                args=(queue_root, store_root, self.lease_ttl,
                      self.config.retries, self.config.retry_backoff))
            proc.start()
            procs.append(proc)
        return procs

    def _await_drain(self, queue: JobQueue, keys: List[str],
                     procs: list) -> None:
        """Poll until every job has an outcome (or no worker remains).

        With zero spawned workers the drain is expected to come from
        external ``python -m repro.harness worker`` processes, so the
        wait has no liveness cut-off — interrupt it if they never come.
        """
        while queue.remaining(keys):
            if procs and not any(proc.is_alive() for proc in procs):
                return  # every local worker died; collect what exists
            time.sleep(_DRAIN_POLL)

    def _stop_workers(self, procs: list) -> None:
        """Join drained workers, escalating exactly like the fork pool."""
        for proc in procs:
            proc.join(self.config.term_grace)
            if proc.is_alive():
                proc.terminate()
                proc.join(self.config.term_grace)
            if proc.is_alive():
                proc.kill()
                proc.join()

    # -- result collection ----------------------------------------------

    def _collect(self, state: RunState, queue: JobQueue,
                 ordered: List[JobSpec]) -> None:
        for spec in ordered:
            key = state.keys[spec]
            outcome = queue.outcome(key)
            if outcome is None:
                state.records[spec] = state.record(
                    spec, key, STATUS_FAILED,
                    attempts=0,
                    error="queue drain incomplete: no worker produced a "
                          "terminal outcome (all local workers exited)")
                continue
            attempts = int(outcome.get("attempts", 1))
            worker = outcome.get("worker")
            if outcome.get("status") != "ok":
                state.records[spec] = state.record(
                    spec, key, STATUS_FAILED,
                    wall_time=float(outcome.get("elapsed", 0.0)),
                    worker=worker, attempts=attempts,
                    error=outcome.get("error") or "failed on a worker")
                continue
            rows = state.store.get(key)
            if rows is None:
                state.records[spec] = state.record(
                    spec, key, STATUS_FAILED, worker=worker,
                    attempts=attempts,
                    error="queue marked the job done but its object is "
                          "missing from the store (quarantined or "
                          "deleted)")
                continue
            state.results[spec] = rows
            state.records[spec] = state.record(
                spec, key, STATUS_COMPUTED,
                wall_time=float(outcome.get("elapsed", 0.0)),
                worker=worker, attempts=attempts)
