"""The fork backend: one crash-isolated child process per job.

Each cache-miss job runs in its own worker process (``fork`` start
method), so a worker that dies — segfault, OOM kill, unhandled exception
— fails exactly one cell and never takes the sweep down.  Jobs get a
per-job wall-clock timeout; a worker that outlives it is first sent
SIGTERM, and if it ignores that (blocked in C code, masked signals, a
deliberate chaos hang) it is SIGKILLed after ``term_grace`` seconds — the
sweep never blocks on an unkillable child.  Failed attempts requeue
through the shared key-derived backoff (see ``backends.base``).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from typing import List

from repro.harness.backends.base import ExecutionBackend, RunState
from repro.harness.jobs import JobSpec, execute_job
from repro.harness.manifest import STATUS_COMPUTED
from repro.harness.store import ResultStore


def _worker_main(spec: JobSpec, key: str, store_root, conn) -> None:
    """Child-process entry: run one job, persist it, report back."""
    start = time.time()
    try:
        rows = execute_job(spec)
        elapsed = time.time() - start
        if store_root is not None:
            ResultStore(store_root).put(key, spec, rows, elapsed)
        conn.send(("ok", rows, elapsed))
    except BaseException:
        conn.send(("err", traceback.format_exc(), time.time() - start))
    finally:
        conn.close()


class _Attempt:
    """Book-keeping for one in-flight worker process."""

    def __init__(self, spec: JobSpec, key: str, attempts: int, proc, conn):
        self.spec = spec
        self.key = key
        self.attempts = attempts
        self.proc = proc
        self.conn = conn
        self.started = time.time()


class ForkBackend(ExecutionBackend):
    """Fan jobs out over forked child processes, at most ``workers``."""

    name = "fork"

    def execute(self, state: RunState) -> None:
        ctx = multiprocessing.get_context("fork")
        store_root = state.store.root if state.store is not None else None
        pending = state.pending
        active: List[_Attempt] = []
        try:
            while pending or active:
                # Scan the queue once per round; entries still backing off
                # rotate to the back without consuming a worker slot.
                for _ in range(len(pending)):
                    if len(active) >= self.config.workers:
                        break
                    spec, attempts, not_before = pending.popleft()
                    if not_before > time.time():
                        pending.append((spec, attempts, not_before))
                        continue
                    recv, send = ctx.Pipe(duplex=False)
                    try:
                        proc = ctx.Process(
                            target=_worker_main,
                            args=(spec, state.keys[spec], store_root, send))
                        proc.start()
                        send.close()
                        active.append(_Attempt(spec, state.keys[spec],
                                               attempts, proc, recv))
                    except BaseException:
                        # start() can fail (fork EAGAIN, fd exhaustion);
                        # without this both pipe ends leak an fd per
                        # failed launch.  close() is idempotent, so the
                        # already-closed send end is fine here.
                        recv.close()
                        send.close()
                        raise
                if active:
                    multiprocessing.connection.wait(
                        [attempt.conn for attempt in active], timeout=0.05)
                else:
                    time.sleep(0.01)  # everything is backing off
                still_active: List[_Attempt] = []
                for attempt in active:
                    if not self._reap(state, attempt):
                        still_active.append(attempt)
                active = still_active
        finally:
            for attempt in active:
                self._stop_worker(attempt.proc)

    def _stop_worker(self, proc) -> None:
        """Terminate a worker, escalating to SIGKILL if it will not die.

        ``join`` after a plain ``terminate`` hangs forever on a worker
        that ignores SIGTERM; SIGKILL cannot be ignored.
        """
        proc.terminate()
        proc.join(self.config.term_grace)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def _reap(self, state: RunState, attempt: _Attempt) -> bool:
        """Check one in-flight attempt; True when it has been resolved."""
        spec, key = attempt.spec, attempt.key
        if attempt.conn.poll():
            try:
                message = attempt.conn.recv()
            except EOFError:
                message = None
            attempt.proc.join()
            attempt.conn.close()
            if message is not None and message[0] == "ok":
                _, rows, elapsed = message
                state.results[spec] = rows
                state.records[spec] = state.record(
                    spec, key, STATUS_COMPUTED, wall_time=elapsed,
                    worker=attempt.proc.pid, attempts=attempt.attempts)
            else:
                error = (message[1] if message else
                         f"worker died without reporting a result "
                         f"(exit code {attempt.proc.exitcode})")
                self.fail(state, spec, key, attempt.attempts, error,
                          time.time() - attempt.started,
                          worker=attempt.proc.pid)
            return True
        if not attempt.proc.is_alive():
            attempt.conn.close()
            self.fail(state, spec, key, attempt.attempts,
                      f"worker died without reporting a result "
                      f"(exit code {attempt.proc.exitcode})",
                      time.time() - attempt.started, worker=attempt.proc.pid)
            return True
        if (self.config.timeout is not None
                and time.time() - attempt.started > self.config.timeout):
            self._stop_worker(attempt.proc)
            attempt.conn.close()
            self.fail(state, spec, key, attempt.attempts,
                      f"timed out after {self.config.timeout:g}s",
                      time.time() - attempt.started,
                      worker=attempt.proc.pid)
            return True
        return False
