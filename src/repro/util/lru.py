"""Finite associative tables with LRU replacement.

Hardware prediction structures are caches: a fixed number of entries, an
index/tag lookup, and a replacement policy.  The paper specifies LRU for the
Dependence Detection Table (Section 5.2) and set-associative organizations
for the DPNT and the Synonym File (Section 5.6.1).  Both organizations are
provided here so every predictor in the repository shares one well-tested
storage model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, Optional, Tuple


class LRUTable:
    """A fully-associative table with LRU replacement.

    ``capacity=None`` models an infinite table (used for limit studies such
    as the infinite address window of Figure 2(a) or the infinite DPNT of
    Section 5.3).

    Lookups by default update recency, matching a hardware CAM whose
    replacement state is touched on every probe.  Pass ``touch=False`` to
    :meth:`get` for a recency-neutral probe.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def get(self, key: Any, default: Any = None, touch: bool = True) -> Any:
        """Return the value stored under ``key`` or ``default`` if absent."""
        if key not in self._entries:
            return default
        if touch:
            self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: Any, value: Any) -> Optional[Tuple[Any, Any]]:
        """Insert or update ``key``; return the evicted ``(key, value)`` if any."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return None
        evicted = None
        if self.capacity is not None and len(self._entries) >= self.capacity:
            evicted = self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value
        return evicted

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove ``key`` and return its value (``default`` if absent)."""
        return self._entries.pop(key, default)

    def clear(self) -> None:
        self._entries.clear()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._entries.items())


class SetAssociativeTable:
    """A set-associative table with per-set LRU replacement.

    ``num_sets`` must be a power of two; keys are mapped to sets by masking
    their low-order bits, which mirrors how the DPNT indexes with load/store
    PCs and the Synonym File indexes with synonym numbers.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self._mask = num_sets - 1
        self._sets: Tuple["OrderedDict[Any, Any]", ...] = tuple(
            OrderedDict() for _ in range(num_sets)
        )
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self.num_sets * self.ways

    def _set_for(self, key: Any) -> "OrderedDict[Any, Any]":
        return self._sets[hash(key) & self._mask]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, key: Any) -> bool:
        return key in self._set_for(key)

    def get(self, key: Any, default: Any = None, touch: bool = True) -> Any:
        """Return the value stored under ``key`` or ``default`` if absent."""
        entries = self._set_for(key)
        if key not in entries:
            return default
        if touch:
            entries.move_to_end(key)
        return entries[key]

    def put(self, key: Any, value: Any) -> Optional[Tuple[Any, Any]]:
        """Insert or update ``key``; return the evicted ``(key, value)`` if any."""
        entries = self._set_for(key)
        if key in entries:
            entries.move_to_end(key)
            entries[key] = value
            return None
        evicted = None
        if len(entries) >= self.ways:
            evicted = entries.popitem(last=False)
            self.evictions += 1
        entries[key] = value
        return evicted

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove ``key`` and return its value (``default`` if absent)."""
        return self._set_for(key).pop(key, default)

    def clear(self) -> None:
        for entries in self._sets:
            entries.clear()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for entries in self._sets:
            yield from entries.items()

    def as_dict(self) -> Dict[Any, Any]:
        """A snapshot of the whole table (testing/debug helper)."""
        return dict(self.items())
