"""Saturating counters, the basic state element of history-based predictors."""

from __future__ import annotations


class SaturatingCounter:
    """An n-state up/down saturating counter.

    The counter holds a value in ``[0, maximum]``.  ``increment`` and
    ``decrement`` saturate at the bounds.  Predictors derive a taken /
    not-taken (or confident / not-confident) decision by comparing against a
    threshold, conventionally the midpoint.
    """

    __slots__ = ("value", "maximum", "threshold")

    def __init__(self, maximum: int, initial: int = 0, threshold: int | None = None) -> None:
        if maximum < 1:
            raise ValueError(f"maximum must be >= 1, got {maximum}")
        if not 0 <= initial <= maximum:
            raise ValueError(f"initial {initial} out of range [0, {maximum}]")
        self.maximum = maximum
        self.value = initial
        self.threshold = (maximum + 1) // 2 if threshold is None else threshold

    @classmethod
    def two_bit(cls, initial: int = 0) -> "SaturatingCounter":
        """The classic 2-bit automaton (states 0..3, predict when >= 2)."""
        return cls(maximum=3, initial=initial, threshold=2)

    @classmethod
    def one_bit(cls, initial: int = 0) -> "SaturatingCounter":
        """A 1-bit predictor: predicts whatever happened last."""
        return cls(maximum=1, initial=initial, threshold=1)

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def update(self, outcome: bool) -> None:
        """Strengthen on a positive outcome, weaken on a negative one."""
        if outcome:
            self.increment()
        else:
            self.decrement()

    @property
    def predict(self) -> bool:
        return self.value >= self.threshold

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter(value={self.value}, max={self.maximum})"
