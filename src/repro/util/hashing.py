"""Stable hashing helpers shared by the experiment harness.

``stable_hash`` canonicalizes an arbitrary JSON-able object (sorted keys,
tuples as lists) before hashing, so two structurally equal keys always
produce the same digest regardless of construction order.
``tree_fingerprint`` digests a source tree — the harness uses it to tie
cached results to the exact code that produced them.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional


def canonical_json(obj: object) -> str:
    """A deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=_coerce)


def _coerce(obj: object) -> object:
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    return repr(obj)


def stable_hash(obj: object, length: int = 40) -> str:
    """SHA-256 (hex, truncated) of the canonical JSON form of ``obj``."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:length]


def tree_fingerprint(root: Path, suffix: str = ".py",
                     exclude: Optional[Iterable[str]] = None,
                     length: int = 16) -> str:
    """Digest every ``suffix`` file under ``root`` (path + contents).

    ``exclude`` names top-level subdirectories to skip (the harness
    excludes itself so harness-only changes do not invalidate results).
    """
    excluded = set(exclude or ())
    digest = hashlib.sha256()
    for path in sorted(root.rglob(f"*{suffix}")):
        relative = path.relative_to(root)
        if relative.parts and relative.parts[0] in excluded:
            continue
        digest.update(str(relative).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:length]
