"""Generic building blocks shared by every substrate in the reproduction.

The tables in this package (:class:`~repro.util.lru.LRUTable`,
:class:`~repro.util.lru.SetAssociativeTable`) model the finite hardware
structures the paper relies on: the Dependence Detection Table, the DPNT,
the Synonym File and the value predictor are all either fully-associative
LRU tables or set-associative tables with LRU replacement within a set.
"""

from repro.util.counters import SaturatingCounter
from repro.util.lru import LRUTable, SetAssociativeTable
from repro.util.stats import RunningMean, Ratio, geometric_mean, harmonic_mean_speedup

__all__ = [
    "LRUTable",
    "SetAssociativeTable",
    "SaturatingCounter",
    "Ratio",
    "RunningMean",
    "geometric_mean",
    "harmonic_mean_speedup",
]
