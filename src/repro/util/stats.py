"""Small statistics helpers used throughout the evaluation harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class Ratio:
    """A hit/total counter that renders as a fraction.

    Used for every "fraction of all loads" metric in the paper (coverage,
    misspeculation rate, locality, ...).
    """

    __slots__ = ("hits", "total")

    def __init__(self, hits: int = 0, total: int = 0) -> None:
        self.hits = hits
        self.total = total

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def value(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Ratio({self.hits}/{self.total}={self.value:.4f})"


class RunningMean:
    """Incremental arithmetic mean."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample

    @property
    def value(self) -> float:
        return self.total / self.count if self.count else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be positive."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean_speedup(speedups: Sequence[float]) -> float:
    """Harmonic mean of per-program speedups (the paper's "HM" summary).

    Speedups are expressed as ratios (1.05 = 5% faster).  The harmonic mean
    weights each program by its base execution time, the convention the
    paper's Figure 9 summary uses.
    """
    if not speedups:
        raise ValueError("harmonic_mean_speedup of empty sequence")
    if any(s <= 0 for s in speedups):
        raise ValueError("speedups must be positive ratios")
    return len(speedups) / sum(1.0 / s for s in speedups)


def percent(fraction: float) -> str:
    """Format a fraction the way the paper's tables do (two decimals)."""
    return f"{fraction * 100.0:.2f}%"
