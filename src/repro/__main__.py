"""Command-line entry point: ``python -m repro <artefact> [options]``.

``python -m repro list`` shows the available artefacts;
``python -m repro fig6 --scale 0.5`` runs one;
``python -m repro all --scale 0.2`` runs the full evaluation.
"""

from __future__ import annotations

import sys

_ARTEFACTS = {
    "table51": "Table 5.1  - benchmark execution characteristics",
    "fig2": "Figure 2   - RAR memory dependence locality",
    "fig5": "Figure 5   - dependence visibility vs DDT size",
    "fig6": "Figure 6   - cloaking coverage and misspeculation",
    "fig7": "Figure 7   - address/value locality breakdowns",
    "table52": "Table 5.2  - cloaking vs load value prediction",
    "fig9": "Figure 9   - speedups (naive memory dep. speculation)",
    "fig10": "Figure 10  - speedups (no memory dep. speculation)",
    "ext_hybrid": "Extension  - hybrid cloaking + value prediction",
    "ext_distance": "Extension  - dependence distance distributions",
    "ext_predictors": "Extension  - last-value vs stride vs cloaking",
    "ext_static_ddt": "Extension  - static pair sets vs the dynamic DDT",
    "ext_static_distance": "Extension  - static distance bounds vs dynamic",
    "report_card": "grades the DESIGN.md shape criteria (PASS/FAIL)",
    "summary": "everything - the full evaluation in one report",
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "list"):
        print("usage: python -m repro <artefact> [--scale S] "
              "[--workloads AB ...]")
        print("\nartefacts:")
        for name, blurb in _ARTEFACTS.items():
            print(f"  {name:<11} {blurb}")
        print("\n'all' is an alias for 'summary'.")
        print("'python -m repro <artefact> --help' shows that artefact's "
              "own options.")
        print("parallel sweeps + result cache: "
              "python -m repro.harness run <artefact> --workers N")
        print("static kernel verification: "
              "python -m repro analysis suite --strict "
              "(alias of python -m repro.analysis)")
        print("fault injection + invariant oracle: "
              "python -m repro chaos --campaign smoke "
              "(alias of python -m repro.chaos)")
        print("whole-repo invariant lint: "
              "python -m repro staticcheck --strict "
              "(alias of python -m repro.staticcheck)")
        return 0
    name = argv.pop(0)
    if name == "all":
        name = "summary"
    if name in ("analysis", "chaos", "staticcheck"):
        if name == "analysis":
            from repro.analysis.__main__ import main as sub_main
        elif name == "staticcheck":
            from repro.staticcheck.__main__ import main as sub_main
        else:
            from repro.chaos.__main__ import main as sub_main

        try:
            return sub_main(argv)
        except SystemExit as exc:
            code = exc.code
            if code is None:
                return 0
            return code if isinstance(code, int) else 2
    if name not in _ARTEFACTS:
        print(f"unknown artefact {name!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    from repro.harness.jobs import load_experiment_module

    module = load_experiment_module(f"repro.experiments.{name}")
    try:
        status = module.main(argv)
    except SystemExit as exc:
        # argparse exits for ``--help`` (code 0) and bad options (code 2);
        # surface its status instead of letting the exception escape.
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    except ValueError as exc:
        # e.g. an unknown/duplicate --workloads abbreviation
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return int(status) if status is not None else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        sys.stderr.close()
        sys.exit(0)
