"""Last-value load value prediction (paper Section 5.5).

The comparison baseline of Table 5.2: a fully-associative, 16K-entry
last-value predictor indexed by load PC.  It predicts that a load returns
the value its previous execution returned.
"""

from __future__ import annotations

from typing import Optional

from repro.util.lru import LRUTable


class LastValuePredictor:
    """PC-indexed last-value predictor with LRU replacement."""

    def __init__(self, capacity: Optional[int] = 16 * 1024) -> None:
        self._table = LRUTable(capacity)
        self.predictions = 0
        self.correct = 0

    def predict(self, pc: int) -> Optional[object]:
        """The predicted value for this load, or ``None`` on a table miss."""
        return self._table.get(pc)

    def observe(self, pc: int, value: object) -> bool:
        """Predict, verify against ``value``, train; return correctness.

        A table miss counts as an incorrect (absent) prediction, matching
        how the paper computes value locality fractions over all loads.
        """
        predicted = self._table.get(pc)
        hit = predicted is not None and predicted == value
        self.predictions += 1
        if hit:
            self.correct += 1
        self._table.put(pc, value)
        return hit

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0
