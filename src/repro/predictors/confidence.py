"""Cloaking confidence mechanisms (paper Section 5.3).

Two mechanisms are evaluated in Figure 6:

* **non-adaptive 1-bit**: speculate whenever a dependence has ever been
  recorded for the instruction.  It never backs off, so it bounds coverage
  from above and misspeculates freely.
* **adaptive 2-bit automaton**: "enables cloaking as soon as a dependence
  is detected.  However, once a misprediction is encountered it requires
  two correct predictions before allowing a predicted value to be used
  again."  Modelled as a 0..3 counter starting at the threshold (2):
  detection or a correct use increments, a misprediction resets to 0.
"""

from __future__ import annotations

import enum


class ConfidenceKind(enum.Enum):
    ONE_BIT = "1-bit non-adaptive"
    TWO_BIT = "2-bit adaptive"


class ConfidenceState:
    """Per-DPNT-entry confidence; one instance per (entry, role)."""

    __slots__ = ("kind", "value")

    _MAX = 3
    _THRESHOLD = 2

    def __init__(self, kind: ConfidenceKind) -> None:
        self.kind = kind
        # Both mechanisms allow speculation immediately after the first
        # detection, which is when the entry (and this state) is created.
        self.value = self._THRESHOLD

    @property
    def predict(self) -> bool:
        if self.kind == ConfidenceKind.ONE_BIT:
            return True
        return self.value >= self._THRESHOLD

    def on_detect(self) -> None:
        """A dependence was detected (but no speculative value was used)."""
        if self.value < self._MAX:
            self.value += 1

    def on_correct(self) -> None:
        """A speculative value was used and verified correct."""
        if self.value < self._MAX:
            self.value += 1

    def on_wrong(self) -> None:
        """A speculative value was used and was wrong."""
        if self.kind == ConfidenceKind.TWO_BIT:
            self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConfidenceState({self.kind.name}, value={self.value})"


def make_confidence(kind: ConfidenceKind) -> ConfidenceState:
    """Factory used by the DPNT when creating entries."""
    return ConfidenceState(kind)
