"""Stride value prediction.

The paper compares cloaking against *last-value* prediction and remarks
that "context-based value predictors could be used to increase load value
prediction coverage" (Section 5.5).  A stride predictor is the simplest
such upgrade: it predicts ``last + stride`` where the stride is the delta
between the last two values, confirmed by a 2-bit confidence counter
before being applied.  Loads returning arithmetic sequences (induction
variables spilled to memory, sequence numbers) become predictable.
"""

from __future__ import annotations

from typing import Optional

from repro.util.lru import LRUTable


class _StrideEntry:
    __slots__ = ("last", "stride", "confidence")

    def __init__(self, value: int) -> None:
        self.last = value
        self.stride = 0
        self.confidence = 0  # 0..3; predict with stride when >= 2


class StrideValuePredictor:
    """PC-indexed stride predictor over integer load values.

    Non-integer values (floats) fall back to last-value behaviour: a
    stride between arbitrary floats almost never repeats exactly, so the
    stride logic only engages for ints.
    """

    def __init__(self, capacity: Optional[int] = 16 * 1024) -> None:
        self._table = LRUTable(capacity)
        self.predictions = 0
        self.correct = 0

    def predict(self, pc: int) -> Optional[object]:
        """The predicted next value for this load (``None`` on a miss)."""
        entry = self._table.get(pc)
        if entry is None:
            return None
        if entry.confidence >= 2 and isinstance(entry.last, int):
            return entry.last + entry.stride
        return entry.last

    def observe(self, pc: int, value: object) -> bool:
        """Predict, verify against ``value``, train; returns correctness."""
        predicted = self.predict(pc)
        hit = predicted is not None and predicted == value
        self.predictions += 1
        if hit:
            self.correct += 1
        entry = self._table.get(pc)
        if entry is None:
            self._table.put(pc, _StrideEntry(value))
        else:
            if isinstance(value, int) and isinstance(entry.last, int):
                new_stride = value - entry.last
                if new_stride == entry.stride:
                    if entry.confidence < 3:
                        entry.confidence += 1
                else:
                    entry.stride = new_stride
                    entry.confidence = 0
            else:
                entry.stride = 0
                entry.confidence = 0
            entry.last = value
        return hit

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0
