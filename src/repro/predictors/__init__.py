"""Prediction building blocks: confidence automata, value and branch predictors."""

from repro.predictors.confidence import (
    ConfidenceKind,
    ConfidenceState,
    make_confidence,
)
from repro.predictors.stride import StrideValuePredictor
from repro.predictors.value_prediction import LastValuePredictor
from repro.predictors.branch import (
    BimodalPredictor,
    CombinedPredictor,
    GSharePredictor,
    ReturnAddressStack,
)

__all__ = [
    "ConfidenceKind",
    "ConfidenceState",
    "make_confidence",
    "LastValuePredictor",
    "StrideValuePredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "CombinedPredictor",
    "ReturnAddressStack",
]
