"""Branch prediction for the timing model (paper Section 5.1).

The base processor uses "a 64-entry call stack and a 64k-entry combined
predictor that uses a 2-bit counter selector to choose among a 2-bit
counter-based and a GSHARE predictors".
"""

from __future__ import annotations

from typing import List

class BimodalPredictor:
    """A PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 64 * 1024) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self._mask = entries - 1
        self._counters = [2] * entries  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        value = self._counters[index]
        if taken:
            if value < 3:
                self._counters[index] = value + 1
        elif value > 0:
            self._counters[index] = value - 1


class GSharePredictor:
    """Global-history XOR PC indexed 2-bit counters."""

    def __init__(self, entries: int = 64 * 1024, history_bits: int = 12) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self._mask = entries - 1
        self._counters = [2] * entries
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        value = self._counters[index]
        if taken:
            if value < 3:
                self._counters[index] = value + 1
        elif value > 0:
            self._counters[index] = value - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class CombinedPredictor:
    """McFarling-style chooser between bimodal and gshare components."""

    def __init__(self, entries: int = 64 * 1024, history_bits: int = 12) -> None:
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(entries, history_bits)
        self._selector = [2] * entries  # >=2 means "use gshare"
        self._mask = entries - 1
        self.lookups = 0
        self.correct = 0

    def predict(self, pc: int) -> bool:
        if self._selector[(pc >> 2) & self._mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict, train all components, return prediction correctness."""
        bim = self.bimodal.predict(pc)
        gsh = self.gshare.predict(pc)
        index = (pc >> 2) & self._mask
        use_gshare = self._selector[index] >= 2
        prediction = gsh if use_gshare else bim
        # Selector trains toward whichever component was right (when they
        # disagree in correctness).
        if gsh == taken and bim != taken:
            if self._selector[index] < 3:
                self._selector[index] += 1
        elif bim == taken and gsh != taken:
            if self._selector[index] > 0:
                self._selector[index] -= 1
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)
        self.lookups += 1
        if prediction == taken:
            self.correct += 1
        return prediction == taken

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0


class ReturnAddressStack:
    """A 64-entry circular return-address stack."""

    def __init__(self, depth: int = 64) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self._stack: List[int] = []
        self.depth = depth
        self.pushes = 0
        self.correct_pops = 0
        self.pops = 0

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            del self._stack[0]
        self.pushes += 1

    def predict_and_pop(self, actual_target: int) -> bool:
        """Pop a predicted return target; return whether it matched."""
        self.pops += 1
        predicted = self._stack.pop() if self._stack else None
        hit = predicted == actual_target
        if hit:
            self.correct_pops += 1
        return hit
