"""Hybrid cloaking + value prediction (the paper's suggested synergy).

Section 5.5 and the conclusion observe that cloaking/bypassing and load
value prediction cover largely *disjoint* load populations and "suggest a
potential synergy of the two techniques" (Tyson & Austin's memory renaming
already combined the RAW side with value prediction).  This module
implements that combination as an extension experiment:

* the cloaking engine is consulted first — if it *uses* a speculative value
  (consumer predicted, SF full, confidence above threshold) the hybrid's
  prediction is the cloaked value;
* otherwise a last-value predictor supplies the prediction, gated by its
  own 2-bit confidence so unpredictable loads stay silent.

The hybrid's coverage approaches the union of the two mechanisms measured
separately (Table 5.2's ``cloak-only + vp-only + both``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.cloaking import CloakingEngine
from repro.core.config import CloakingConfig
from repro.predictors.confidence import ConfidenceKind, ConfidenceState
from repro.predictors.value_prediction import LastValuePredictor
from repro.trace.records import DynInst


class HybridSource(enum.Enum):
    """Which component produced (or withheld) the hybrid's prediction."""

    NONE = "none"
    CLOAKING = "cloaking"
    VALUE_PREDICTOR = "value-predictor"


@dataclass
class HybridStats:
    """Coverage accounting, split by contributing component."""

    loads: int = 0
    correct_cloaking: int = 0
    correct_vp: int = 0
    wrong_cloaking: int = 0
    wrong_vp: int = 0

    def _frac(self, count: int) -> float:
        return count / self.loads if self.loads else 0.0

    @property
    def coverage(self) -> float:
        return self._frac(self.correct_cloaking + self.correct_vp)

    @property
    def coverage_cloaking(self) -> float:
        return self._frac(self.correct_cloaking)

    @property
    def coverage_vp(self) -> float:
        return self._frac(self.correct_vp)

    @property
    def misspeculation_rate(self) -> float:
        return self._frac(self.wrong_cloaking + self.wrong_vp)


class HybridLoadPredictor:
    """Cloaking first, confidence-gated last-value prediction second."""

    def __init__(
        self,
        cloaking: Optional[CloakingConfig] = None,
        vp_capacity: Optional[int] = 16 * 1024,
        vp_confidence: int = 2,
    ) -> None:
        """``vp_confidence`` is the counter value (0..3) the fallback value
        predictor must reach before its prediction is used.  The default
        (2) mirrors the cloaking side; 3 demands a saturated counter —
        stricter gating for value-noisy codes (see ext_hybrid's discussion
        of go)."""
        if not 0 <= vp_confidence <= 3:
            raise ValueError("vp_confidence must be in [0, 3]")
        self.engine = CloakingEngine(cloaking or CloakingConfig.paper_overlap())
        self.value_predictor = LastValuePredictor(capacity=vp_capacity)
        self.vp_confidence = vp_confidence
        self._vp_confidence: Dict[int, ConfidenceState] = {}
        self.stats = HybridStats()

    def observe(self, inst: DynInst) -> HybridSource:
        """Account one committed instruction; returns the prediction source."""
        outcome = self.engine.observe(inst)
        if not inst.is_load:
            return HybridSource.NONE
        self.stats.loads += 1

        if outcome is not None and outcome.speculated:
            # Cloaking made the call; the VP still trains in the background.
            self._train_vp(inst, use=False)
            if outcome.correct:
                self.stats.correct_cloaking += 1
            else:
                self.stats.wrong_cloaking += 1
            return HybridSource.CLOAKING

        used, correct = self._train_vp(inst, use=True)
        if used:
            if correct:
                self.stats.correct_vp += 1
            else:
                self.stats.wrong_vp += 1
            return HybridSource.VALUE_PREDICTOR
        return HybridSource.NONE

    def _train_vp(self, inst: DynInst, use: bool):
        """Verify + train the value predictor; returns (used, correct).

        The last-value table always trains; the confidence automaton gates
        whether a prediction would actually be *used*, mirroring how the
        cloaking side separates silent verification from value use.
        """
        predicted = self.value_predictor.predict(inst.pc)
        correct = self.value_predictor.observe(inst.pc, inst.value)
        confidence = self._vp_confidence.get(inst.pc)
        if confidence is None:
            confidence = self._vp_confidence[inst.pc] = ConfidenceState(
                ConfidenceKind.TWO_BIT)
            confidence.on_wrong()  # start cold: require evidence first
        would_use = (use and predicted is not None
                     and confidence.value >= self.vp_confidence)
        if correct:
            confidence.on_correct()
        else:
            confidence.on_wrong()
        return would_use, correct

    def run(self, trace: Iterable[DynInst]) -> HybridStats:
        for inst in trace:
            self.observe(inst)
        return self.stats
