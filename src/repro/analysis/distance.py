"""Static RAR/RAW dependence-distance bounds, coverage limits and the
predictor-sizing lint.

The dynamic measurements this pass bounds are the paper's Fig. 2 / Fig. 7
axes: the *distance* of a dependence is the number of unique intervening
word addresses between source and sink (the address-window metric that
also drives the Fig. 5 DDT-size sweep).

**Soundness argument.**  Every instruction that executes dynamically
between a source instance and a sink instance lies, in the CFG, on a path
``source block →* sink block`` — its block is forward-reachable from the
source's block and backward-reaches the sink's block.  The unique
intervening addresses are therefore a subset of the union word footprint
of the memory instructions in that *between region*, so that footprint is
a sound per-pair distance bound.  (For a self-pair in an inner loop the
between region collapses to the enclosing strongly connected component —
the loop nest.)  A region containing an ``unknown`` descriptor yields an
unbounded (``None``) bound — trivially sound, and recorded as such so the
tightness report stays honest.  The per-PC bound published in the report
is the maximum over the sink's may-sources, hence an upper bound for any
individual observed pair; ``repro.experiments.ext_static_distance``
replays the dynamic measurements and checks exactly this containment.

**Coverage.**  A load can be cloaked only if some may-source (an aliasing
store for RAW, an aliasing earlier load — or itself, when its block can
re-execute — for RAR) can reach it in the CFG.  The fraction of static
load PCs with such a source is a static upper bound on the fraction of
load *PCs* cloaking/bypassing can ever cover; weighting by dynamic
execution counts (done in the experiment) turns it into an upper bound on
the paper's coverage metric itself.

**Config lint.**  The synonym sets of :mod:`repro.analysis.depgraph`
carry ``generations`` — the words (communication groups) each set can
keep live.  A finite Synonym File smaller than the kernel's total
predicted generations must thrash (``W_SF_UNDERSIZED``); a set-associative
DPNT whose indexing maps more static memory PCs to one set than it has
ways cannot hold the kernel's working set at all (``W_DPNT_CONFLICT``).
Both use the index semantics exposed by
:class:`~repro.core.config.CloakingConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.depgraph import DepGraph, word_footprint
from repro.analysis.memdep import MemoryAnalysis
from repro.analysis.report import (
    Diagnostic,
    W_DPNT_CONFLICT,
    W_SF_UNDERSIZED,
)


@dataclass(frozen=True)
class PCDistance:
    """Per-sink-PC source counts and distance bounds.

    ``*_bound`` is the max between-region footprint over the PC's
    reachable may-sources: ``None`` means unbounded (some source's
    between region contains an ``unknown`` descriptor); ``0`` with zero
    sources means no dependence of that kind can materialize at all.
    """

    rar_sources: int = 0
    raw_sources: int = 0
    rar_bound: Optional[int] = 0
    raw_bound: Optional[int] = 0

    def to_json_dict(self) -> dict:
        return {
            "rar_sources": self.rar_sources,
            "raw_sources": self.raw_sources,
            "rar_bound": self.rar_bound,
            "raw_bound": self.raw_bound,
        }


@dataclass
class DistanceReport:
    """Everything the distance pass proved about one program."""

    graph: DepGraph
    per_pc: Dict[int, PCDistance] = field(default_factory=dict)  # load pcs
    coverable: Set[int] = field(default_factory=set)
    coverage_bound: float = 0.0        # fraction of static load PCs
    footprint_words: Optional[int] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "footprint_words": self.footprint_words,
            "coverage_bound": round(self.coverage_bound, 6),
            "coverable": [f"{pc:#x}" for pc in sorted(self.coverable)],
            "synonym_sets": [s.to_json_dict()
                             for s in self.graph.synonym_sets],
            "pcs": {
                f"{pc:#x}": {
                    **self.graph.accesses[pc].to_json_dict(),
                    **(self.per_pc[pc].to_json_dict()
                       if pc in self.per_pc else {}),
                }
                for pc in sorted(self.graph.accesses)
            },
        }

    def render_summary(self) -> str:
        footprint = ("unbounded" if self.footprint_words is None
                     else f"≤{self.footprint_words} words")
        return (f"distances: footprint {footprint}, "
                f"{len(self.graph.synonym_sets)} synonym set(s), "
                f"static coverage ≤ {self.coverage_bound:.0%} of load PCs")


class _BetweenFootprints:
    """Memoized footprints of CFG between regions.

    ``bound(bs, bt)`` is the word footprint of every memory instruction in
    a block forward-reachable from ``bs`` that backward-reaches ``bt``
    (both inclusive) — the sound per-pair distance bound.
    """

    def __init__(self, cfg: CFG, memory: MemoryAnalysis) -> None:
        n = len(cfg.blocks)
        successors = [set(b.successors) for b in cfg.blocks]
        predecessors: List[Set[int]] = [set() for _ in range(n)]
        for block in cfg.blocks:
            for succ in block.successors:
                predecessors[succ].add(block.bid)
        self._forward = [self._closure(bid, successors) for bid in range(n)]
        self._backward = [self._closure(bid, predecessors) for bid in range(n)]
        program = cfg.program
        self._by_block: Dict[int, list] = {}
        reachable = cfg.reachable_indices()
        for pc, desc in memory.descriptors.items():
            index = program.index_of(pc)
            if index in reachable:
                self._by_block.setdefault(cfg.block_of[index], []).append(desc)
        self._cache: Dict[Tuple[int, int], Optional[int]] = {}

    @staticmethod
    def _closure(root: int, edges: List[Set[int]]) -> Set[int]:
        seen = {root}
        work = [root]
        while work:
            bid = work.pop()
            for nxt in edges[bid]:
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return seen

    def reaches(self, bs: int, bt: int) -> bool:
        return bt in self._forward[bs]

    def bound(self, bs: int, bt: int) -> Optional[int]:
        key = (bs, bt)
        if key not in self._cache:
            between = self._forward[bs] & self._backward[bt]
            descriptors = [desc for bid in between
                           for desc in self._by_block.get(bid, ())]
            self._cache[key] = word_footprint(descriptors)
        return self._cache[key]


def _max_bound(bounds: List[Optional[int]]) -> Optional[int]:
    """Max over bounds where None (unbounded) absorbs everything."""
    if any(b is None for b in bounds):
        return None
    return max(bounds) if bounds else 0


def lint_config(graph: DepGraph, config) -> List[Diagnostic]:
    """Flag predictor sizings statically infeasible for this kernel."""
    diagnostics: List[Diagnostic] = []
    generations = [s.generations for s in graph.synonym_sets]
    if config.sf_entries is not None and all(
            g is not None for g in generations):
        total = sum(generations)
        if total > config.sf_entries:
            diagnostics.append(Diagnostic(
                W_SF_UNDERSIZED,
                f"predicted live synonym generations ({total} words across "
                f"{len(generations)} synonym set(s)) exceed the "
                f"{config.sf_entries}-entry synonym file — RAR/RAW "
                f"communication groups must thrash"))
    pcs_per_set: Dict[int, int] = {}
    for pc in graph.accesses:
        index = config.dpnt_index(pc)
        if index is not None:
            pcs_per_set[index] = pcs_per_set.get(index, 0) + 1
    for index, count in sorted(pcs_per_set.items()):
        if count > config.dpnt_ways:
            diagnostics.append(Diagnostic(
                W_DPNT_CONFLICT,
                f"{count} static memory PCs map to DPNT set {index} but "
                f"associativity is {config.dpnt_ways} — the kernel's "
                f"working set cannot reside simultaneously"))
    return diagnostics


def analyze_distances(cfg: CFG, memory: MemoryAnalysis, graph: DepGraph,
                      config=None) -> DistanceReport:
    """Bound RAR/RAW distances per sink PC and the achievable coverage."""
    report = DistanceReport(graph=graph,
                            footprint_words=graph.footprint_words)
    between = _BetweenFootprints(cfg, memory)

    rar_sources: Dict[int, List[int]] = {}
    raw_sources: Dict[int, List[int]] = {}
    for src, sink in memory.rar_pairs:
        rar_sources.setdefault(sink, []).append(src)
    for src, sink in memory.raw_pairs:
        raw_sources.setdefault(sink, []).append(src)

    for sink in memory.load_pcs:
        sink_block = graph.accesses[sink].block
        reachable_rar: List[int] = []
        reachable_raw: List[int] = []
        for src in rar_sources.get(sink, ()):
            src_block = graph.accesses[src].block
            if src == sink:
                # A load is its own RAR source only if it can re-execute.
                if sink_block in graph.cyclic:
                    reachable_rar.append(src)
            elif between.reaches(src_block, sink_block):
                reachable_rar.append(src)
        for src in raw_sources.get(sink, ()):
            if between.reaches(graph.accesses[src].block, sink_block):
                reachable_raw.append(src)
        report.per_pc[sink] = PCDistance(
            rar_sources=len(reachable_rar),
            raw_sources=len(reachable_raw),
            rar_bound=_max_bound([
                between.bound(graph.accesses[src].block, sink_block)
                for src in reachable_rar]),
            raw_bound=_max_bound([
                between.bound(graph.accesses[src].block, sink_block)
                for src in reachable_raw]),
        )
        if reachable_rar or reachable_raw:
            report.coverable.add(sink)

    report.coverage_bound = (
        len(report.coverable) / len(memory.load_pcs)
        if memory.load_pcs else 0.0)
    if config is not None:
        report.diagnostics.extend(lint_config(graph, config))
    return report
