"""Pass orchestration: one call from a program to its analysis report.

``analyze_program`` runs CFG construction, the dataflow fixpoints and the
static memory pass, and folds every diagnostic into one
:class:`~repro.analysis.report.AnalysisReport`.  ``verify_program`` is
the raising wrapper used by ``Workload.program(verify=True)`` and the
``--strict`` CLI: it turns a dirty report into :class:`AnalysisError`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.memdep import analyze_memory
from repro.analysis.report import AnalysisReport, Severity

_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


class AnalysisError(ValueError):
    """A program failed static verification; carries the full report."""

    def __init__(self, report: AnalysisReport, strict: bool = False) -> None:
        blocking = report.errors + (report.warnings if strict else [])
        summary = "; ".join(d.message for d in blocking[:3])
        if len(blocking) > 3:
            summary += f"; … {len(blocking) - 3} more"
        super().__init__(
            f"program {report.name!r} failed static analysis "
            f"({len(report.errors)} error(s), {len(report.warnings)} "
            f"warning(s)): {summary}")
        self.report = report


def analyze_program(program, distances: bool = False,
                    lint_config=None) -> AnalysisReport:
    """Run every static pass over an assembled program.

    ``distances=True`` additionally runs the dependence-structure passes
    (:mod:`repro.analysis.depgraph` / :mod:`repro.analysis.distance`) and
    attaches their :class:`~repro.analysis.distance.DistanceReport` to
    ``report.distances``; a ``lint_config``
    (:class:`~repro.core.config.CloakingConfig`) also runs the
    predictor-sizing lint, whose findings join the diagnostics.
    """
    cfg = build_cfg(program)
    report = AnalysisReport(
        name=program.name,
        instructions=len(program.instructions),
        blocks=len(cfg.blocks),
    )
    report.diagnostics.extend(cfg.diagnostics)
    dataflow = analyze_dataflow(cfg)
    report.diagnostics.extend(dataflow.diagnostics)
    memory = analyze_memory(cfg, dataflow)
    report.diagnostics.extend(memory.diagnostics)
    report.loads = len(memory.load_pcs)
    report.stores = len(memory.store_pcs)
    report.rar_pairs = sorted(memory.rar_pairs)
    report.raw_pairs = sorted(memory.raw_pairs)
    report.addresses = {
        pc: desc.to_json_dict() for pc, desc in memory.descriptors.items()
    }
    if distances:
        from repro.analysis.depgraph import build_depgraph
        from repro.analysis.distance import analyze_distances

        graph = build_depgraph(cfg, dataflow, memory)
        report.distances = analyze_distances(cfg, memory, graph,
                                             config=lint_config)
        report.diagnostics.extend(report.distances.diagnostics)
    report.diagnostics.sort(
        key=lambda d: (_SEVERITY_ORDER[d.severity],
                       d.index if d.index is not None else -1, d.code))
    return report


def verify_program(program, strict: bool = False,
                   report: Optional[AnalysisReport] = None) -> AnalysisReport:
    """Analyze and raise :class:`AnalysisError` unless the program is clean.

    ``strict`` also rejects warnings; a pre-computed ``report`` skips
    re-analysis (the ``Workload`` cache hands one in).
    """
    if report is None:
        report = analyze_program(program)
    if not report.ok(strict=strict):
        raise AnalysisError(report, strict=strict)
    return report
