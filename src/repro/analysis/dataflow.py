"""Dataflow passes over the CFG: register values and definite assignment.

Two forward fixpoint analyses share the worklist here:

* **Abstract register values** (may-analysis).  Each register holds one
  of ``Const(k)`` (exact integer), ``Ptr(label, offset)`` (points
  ``offset`` bytes into the data region of ``label``; ``offset=None``
  when loop-variant) or ``TOP`` (unknown).  Constant arithmetic mirrors
  the interpreter's semantics exactly (wrapping shifts/multiplies,
  truncating division), so a derivable effective address is the address
  the interpreter will compute.  Loaded values are ``TOP`` — memory
  contents are out of scope for the static pass.

* **Definite assignment** (must-analysis).  A register read on a path
  where no write dominates it is flagged: as an error when the register
  is written *nowhere* in the program (the read can only ever observe the
  interpreter's implicit zero — almost certainly a mis-encoded kernel),
  or as an informational note when only *some* path misses the write
  (loop-carried first-iteration reads are routinely fine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.report import (
    Diagnostic,
    E_NEVER_WRITTEN,
    I_MAYBE_UNINIT,
)
from repro.isa.instructions import Instruction, OpClass
from repro.isa.registers import NUM_REGS, ZERO_REG, register_name

# -- the abstract value domain ------------------------------------------

TOP = ("top",)


def const(value: int) -> tuple:
    return ("const", value)


def ptr(label: str, offset: Optional[int]) -> tuple:
    return ("ptr", label, offset)


def is_const(v: tuple) -> bool:
    return v[0] == "const"


def is_ptr(v: tuple) -> bool:
    return v[0] == "ptr"


def join(a: tuple, b: tuple) -> tuple:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    if is_ptr(a) and is_ptr(b) and a[1] == b[1]:
        return ptr(a[1], None)
    return TOP


_INT32_MASK = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= _INT32_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def _fold(opcode: str, a: int, b: int) -> int:
    """Constant-fold one binary integer op with interpreter semantics."""
    if opcode == "add" or opcode == "addi":
        return a + b
    if opcode == "sub":
        return a - b
    if opcode == "and" or opcode == "andi":
        return a & b
    if opcode == "or" or opcode == "ori":
        return a | b
    if opcode == "xor" or opcode == "xori":
        return a ^ b
    if opcode == "slt" or opcode == "slti":
        return 1 if a < b else 0
    if opcode == "seq":
        return 1 if a == b else 0
    if opcode == "sne":
        return 1 if a != b else 0
    if opcode == "sll":
        return _wrap32(a << b)
    if opcode == "srl":
        return (a & _INT32_MASK) >> b
    if opcode == "sra":
        return a >> b
    if opcode == "mul":
        return _wrap32(a * b)
    if opcode == "div":
        return int(a / b) if b else 0
    if opcode == "rem":
        return a - int(a / b) * b if b else 0
    raise KeyError(opcode)


_IMM_OPS = frozenset(("addi", "andi", "ori", "xori", "slti", "sll", "srl",
                      "sra"))
_REG_OPS = frozenset(("add", "sub", "and", "or", "xor", "slt", "seq", "sne",
                      "mul", "div", "rem"))


def transfer(inst: Instruction, state: List[tuple]) -> None:
    """Apply one instruction to the abstract register state, in place."""
    rd = inst.rd
    if rd is None or rd == ZERO_REG:
        return
    opcode = inst.opcode
    result = TOP
    if opcode == "li":
        result = const(inst.imm)
    elif opcode == "la":
        result = ptr(inst.data_label, 0)
    elif opcode == "mov":
        result = state[inst.srcs[0]]
    elif opcode in _IMM_OPS:
        src = state[inst.srcs[0]]
        if is_const(src):
            result = const(_fold(opcode, src[1], inst.imm))
        elif is_ptr(src) and opcode == "addi":
            off = src[2]
            result = ptr(src[1], off + inst.imm if off is not None else None)
    elif opcode in _REG_OPS:
        a, b = state[inst.srcs[0]], state[inst.srcs[1]]
        if is_const(a) and is_const(b):
            result = const(_fold(opcode, a[1], b[1]))
        elif opcode == "add" and is_ptr(a) and is_const(b):
            off = a[2]
            result = ptr(a[1], off + b[1] if off is not None else None)
        elif opcode == "add" and is_const(a) and is_ptr(b):
            off = b[2]
            result = ptr(b[1], off + a[1] if off is not None else None)
        elif opcode == "sub" and is_ptr(a) and is_const(b):
            off = a[2]
            result = ptr(a[1], off - b[1] if off is not None else None)
        elif (opcode == "sub" and is_ptr(a) and is_ptr(b) and a[1] == b[1]
              and a[2] is not None and b[2] is not None):
            result = const(a[2] - b[2])
        elif opcode == "add" and is_ptr(a) != is_ptr(b):
            # Pointer plus a computed (loop-variant) index: still a pointer
            # into the same region, at an unknown offset.  This assumes the
            # index keeps the access in bounds — the assumption the
            # ext_static_ddt cross-validation measures empirically.
            result = ptr(a[1] if is_ptr(a) else b[1], None)
        elif opcode == "sub" and is_ptr(a):
            result = ptr(a[1], None)
    # Everything else (loads, fp ops, jal's return address) is TOP.
    state[rd] = result


@dataclass
class DataflowResult:
    """Outcome of the combined fixpoint over one CFG."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: memory-op instruction index -> abstract value of its base register
    base_values: Dict[int, tuple] = field(default_factory=dict)
    #: instruction index -> registers read there without a dominating write
    maybe_uninit: Dict[int, Tuple[int, ...]] = field(default_factory=dict)


def _entry_state() -> List[tuple]:
    state: List[tuple] = [TOP] * NUM_REGS
    state[ZERO_REG] = const(0)
    return state


def analyze_dataflow(cfg: CFG) -> DataflowResult:
    """Run both fixpoints and collect per-memory-op base values."""
    result = DataflowResult()
    program = cfg.program
    instructions = program.instructions
    if not instructions or not cfg.blocks:
        return result

    written_somewhere: Set[int] = {ZERO_REG}
    for inst in instructions:
        if inst.rd is not None:
            written_somewhere.add(inst.rd)

    # Forward fixpoint; both analyses iterate to convergence together.
    values_in: Dict[int, List[tuple]] = {0: _entry_state()}
    defined_in: Dict[int, Set[int]] = {0: {ZERO_REG}}
    work = [0]
    in_work = {0}
    while work:
        bid = work.pop(0)
        in_work.discard(bid)
        block = cfg.blocks[bid]
        state = list(values_in[bid])
        defined = set(defined_in[bid])
        for i in block.indices():
            inst = instructions[i]
            transfer(inst, state)
            if inst.rd is not None:
                defined.add(inst.rd)
        for succ in block.successors:
            changed = False
            if succ not in values_in:
                values_in[succ] = list(state)
                defined_in[succ] = set(defined)
                changed = True
            else:
                succ_values = values_in[succ]
                for r in range(NUM_REGS):
                    merged = join(succ_values[r], state[r])
                    if merged != succ_values[r]:
                        succ_values[r] = merged
                        changed = True
                succ_defined = defined_in[succ]
                narrowed = succ_defined & defined
                if narrowed != succ_defined:
                    defined_in[succ] = narrowed
                    changed = True
            if changed and succ not in in_work:
                work.append(succ)
                in_work.add(succ)

    # Final walk: per-instruction queries against the converged states.
    never_written_reported: Set[int] = set()
    for bid in sorted(cfg.reachable):
        if bid not in values_in:      # reachable only through dead edges
            continue
        block = cfg.blocks[bid]
        state = list(values_in[bid])
        defined = set(defined_in[bid])
        for i in block.indices():
            inst = instructions[i]
            unset = tuple(r for r in inst.srcs if r not in defined)
            if unset:
                result.maybe_uninit[i] = unset
                for r in unset:
                    if r in written_somewhere:
                        result.diagnostics.append(Diagnostic(
                            I_MAYBE_UNINIT,
                            f"{register_name(r)} may be read before its "
                            f"first write (loop-carried or branch-dependent "
                            f"initialization)",
                            index=i, pc=program.pc_of(i)))
                    elif r not in never_written_reported:
                        never_written_reported.add(r)
                        result.diagnostics.append(Diagnostic(
                            E_NEVER_WRITTEN,
                            f"{register_name(r)} is read but never written "
                            f"anywhere in the program",
                            index=i, pc=program.pc_of(i)))
            if inst.opclass in (OpClass.LOAD, OpClass.STORE):
                result.base_values[i] = state[inst.srcs[0]]
            transfer(inst, state)
            if inst.rd is not None:
                defined.add(inst.rd)
    return result
