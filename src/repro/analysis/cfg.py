"""Control-flow graph construction for assembled programs.

Basic blocks are maximal straight-line index ranges of a
:class:`~repro.isa.program.Program`.  Edges follow the interpreter's
semantics exactly (branch taken/fall-through, unconditional jumps,
``halt`` terminating execution).  Calls and returns are modelled without
a call graph: a ``jal`` has its target as the only successor, and every
``jr`` is given an edge to *every* call-site return point — the classic
context-insensitive over-approximation, sound for the may/must dataflow
passes built on top.

Structural validation happens here too: resolved branch targets must be
inside the program, and a reachable ``halt`` must exist (kernels that
fall off the end terminate in the interpreter, but only by accident —
the analyzer flags it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.report import (
    Diagnostic,
    E_BAD_TARGET,
    E_EMPTY_PROGRAM,
    E_NO_HALT,
    W_DEAD_CODE,
    W_FALL_OFF_END,
    W_RETURN_WITHOUT_CALL,
)
from repro.isa.instructions import OpClass
from repro.isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions ``[start, end)``."""

    bid: int
    start: int
    end: int
    successors: Tuple[int, ...] = ()

    def indices(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class CFG:
    """Basic blocks, edges and reachability of one program."""

    program: Program
    blocks: List[BasicBlock] = field(default_factory=list)
    block_of: Dict[int, int] = field(default_factory=dict)  # index -> bid
    diagnostics: List[Diagnostic] = field(default_factory=list)
    reachable: Set[int] = field(default_factory=set)        # bids

    def predecessors(self, bid: int) -> List[int]:
        return [b.bid for b in self.blocks if bid in b.successors]

    def reachable_indices(self) -> Set[int]:
        """Instruction indices inside reachable blocks."""
        out: Set[int] = set()
        for bid in self.reachable:
            out.update(self.blocks[bid].indices())
        return out


def _validated_target(program: Program, index: int,
                      diagnostics: List[Diagnostic]) -> int:
    inst = program.instructions[index]
    target = inst.target
    if target is None or not 0 <= target < len(program.instructions):
        diagnostics.append(Diagnostic(
            E_BAD_TARGET,
            f"{inst.opcode} target {target!r} outside program "
            f"[0, {len(program.instructions)})",
            index=index, pc=program.pc_of(index)))
        return -1
    return target


def build_cfg(program: Program) -> CFG:
    """Construct the CFG, validating targets and halt reachability."""
    cfg = CFG(program=program)
    instructions = program.instructions
    n = len(instructions)
    if n == 0:
        cfg.diagnostics.append(Diagnostic(
            E_EMPTY_PROGRAM, "program has no instructions"))
        return cfg

    call_returns = [i + 1 for i, inst in enumerate(instructions)
                    if inst.opclass == OpClass.CALL and i + 1 < n]

    # Leaders: entry, every control target, every post-control index.
    leaders = {0}
    targets: Dict[int, int] = {}
    for i, inst in enumerate(instructions):
        cls = inst.opclass
        if cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL):
            t = _validated_target(program, i, cfg.diagnostics)
            targets[i] = t
            if t >= 0:
                leaders.add(t)
            if i + 1 < n:
                leaders.add(i + 1)
        elif cls in (OpClass.RETURN, OpClass.HALT):
            if i + 1 < n:
                leaders.add(i + 1)
    ordered = sorted(leaders)

    # Blocks and the index -> block map.
    for bid, start in enumerate(ordered):
        end = ordered[bid + 1] if bid + 1 < len(ordered) else n
        block = BasicBlock(bid=bid, start=start, end=end)
        cfg.blocks.append(block)
        for i in range(start, end):
            cfg.block_of[i] = bid

    # Successor edges from each block's terminator.
    for block in cfg.blocks:
        last = block.end - 1
        inst = instructions[last]
        cls = inst.opclass
        succs: List[int] = []
        if cls == OpClass.BRANCH:
            t = targets[last]
            if t >= 0:
                succs.append(cfg.block_of[t])
            if block.end < n:
                succs.append(cfg.block_of[block.end])
        elif cls in (OpClass.JUMP, OpClass.CALL):
            t = targets[last]
            if t >= 0:
                succs.append(cfg.block_of[t])
        elif cls == OpClass.RETURN:
            if call_returns:
                succs.extend(cfg.block_of[i] for i in call_returns)
            else:
                cfg.diagnostics.append(Diagnostic(
                    W_RETURN_WITHOUT_CALL,
                    f"{inst.opcode} with no call site in the program",
                    index=last, pc=program.pc_of(last)))
        elif cls == OpClass.HALT:
            pass
        else:
            if block.end < n:
                succs.append(cfg.block_of[block.end])
            else:
                cfg.diagnostics.append(Diagnostic(
                    W_FALL_OFF_END,
                    "execution can fall off the end of the program "
                    "(no halt on this path)",
                    index=last, pc=program.pc_of(last)))
        # Dedupe while preserving order.
        block.successors = tuple(dict.fromkeys(succs))

    # Reachability from the entry block.
    work = [0]
    while work:
        bid = work.pop()
        if bid in cfg.reachable:
            continue
        cfg.reachable.add(bid)
        work.extend(cfg.blocks[bid].successors)

    for block in cfg.blocks:
        if block.bid not in cfg.reachable:
            cfg.diagnostics.append(Diagnostic(
                W_DEAD_CODE,
                f"unreachable block of {len(block)} instruction(s) "
                f"at indices [{block.start}, {block.end})",
                index=block.start, pc=program.pc_of(block.start)))

    halt_reachable = any(
        instructions[i].opclass == OpClass.HALT
        for bid in cfg.reachable
        for i in cfg.blocks[bid].indices())
    if not halt_reachable:
        cfg.diagnostics.append(Diagnostic(
            E_NO_HALT, "no halt instruction is reachable from the entry"))
    return cfg
