"""The static memory pass: address derivation, checks, and pair sets.

Every reachable load/store is assigned an *address descriptor* from the
abstract value of its base register:

* ``exact``  — the effective byte address is statically known (base
  traced to a ``la``/``li`` constant with a known offset);
* ``region`` — the access lands somewhere inside one data label's region
  (base traced to a label, offset loop-variant);
* ``unknown`` — the base is not derivable (e.g. a pointer loaded from
  memory); the access may touch anything.

Exact accesses are checked against the assembled data image (bounds and
alignment — the two faults the interpreter would raise at runtime) and
against their own label's region (crossing into a neighbouring label is
legal but almost always a mis-encoded kernel, so it warns).

The pair sets are the DDT's dependences, approximated statically at the
DDT's word granularity: two accesses *may alias* when their descriptors
can touch a common word.  Static RAR pairs are all ordered load pairs
(including self-pairs — a loop-resident load is its own RAR source) and
static RAW pairs all store→load pairs that may alias.  The approximation
is one-sided by construction: it over-counts (no path or intervening
-store reasoning) but should never miss a dynamically observable pair —
``repro.experiments.ext_static_ddt`` measures exactly that.

:func:`may_alias` itself supports two granularities.  The default is the
*byte* intervals the descriptors carry — precise for subword accesses,
where adjacent ``lb``/``sb`` within one word do **not** overlap.  The DDT
however detects dependences at *word* granularity (Section 5.6.1), so
every DDT-mirroring consumer (the pair sets here, the synonym sets of
:mod:`repro.analysis.depgraph`) passes ``word_granular=True``; dropping
to byte granularity there would un-soundly miss dynamically observed
same-word pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import DataflowResult, is_const, is_ptr
from repro.analysis.report import (
    Diagnostic,
    E_MISALIGNED,
    E_OUT_OF_BOUNDS,
    W_REGION_CROSS,
)
from repro.isa.instructions import OpClass
from repro.isa.program import DATA_BASE, Program

#: Access width in bytes by mnemonic.
_SIZES = {"lw": 4, "lf": 4, "sw": 4, "sf": 4,
          "lh": 2, "lhu": 2, "sh": 2,
          "lb": 1, "lbu": 1, "sb": 1}


@dataclass(frozen=True)
class Region:
    """One labelled slice of the data image: ``[lo, hi)`` bytes."""

    label: str
    lo: int
    hi: int


@dataclass(frozen=True)
class AddrDescriptor:
    """Where one static memory instruction can reach.

    ``kind`` is ``exact`` / ``region`` / ``unknown``; ``lo``/``hi`` bound
    the touched *byte* interval (inclusive lo, exclusive hi) when known.
    """

    kind: str
    size: int
    lo: Optional[int] = None
    hi: Optional[int] = None
    label: Optional[str] = None

    def word_interval(self) -> Optional[Tuple[int, int]]:
        """Inclusive word-address interval, or None for ``unknown``."""
        if self.kind == "unknown":
            return None
        return (self.lo >> 2, (self.hi - 1) >> 2)

    def byte_interval(self) -> Optional[Tuple[int, int]]:
        """Inclusive byte-address interval, or None for ``unknown``."""
        if self.kind == "unknown":
            return None
        return (self.lo, self.hi - 1)

    def to_json_dict(self) -> dict:
        out: Dict[str, object] = {"kind": self.kind, "size": self.size}
        if self.kind != "unknown":
            out["lo"] = self.lo
            out["hi"] = self.hi
        if self.label is not None:
            out["label"] = self.label
        return out


def data_regions(program: Program) -> List[Region]:
    """The labelled regions of the data image, in address order."""
    if not program.data_labels:
        return []
    items = sorted(program.data_labels.items(), key=lambda kv: (kv[1], kv[0]))
    regions = []
    for i, (label, lo) in enumerate(items):
        hi = program.data_end
        for _, later in items[i + 1:]:
            if later > lo:
                hi = later
                break
        regions.append(Region(label, lo, max(hi, lo)))
    return regions


def may_alias(a: AddrDescriptor, b: AddrDescriptor, *,
              word_granular: bool = False) -> bool:
    """Can the two accesses overlap?

    By default the *byte* intervals are compared, so two subword accesses
    packed into one word (``sb 0(r1)`` vs ``lb 1(r1)``) do not alias.
    ``word_granular=True`` compares inclusive word intervals instead —
    the DDT's detection granularity, under which those accesses *do*
    share a dependence; anything modelling the DDT must use it.
    """
    if word_granular:
        ia, ib = a.word_interval(), b.word_interval()
    else:
        ia, ib = a.byte_interval(), b.byte_interval()
    if ia is None or ib is None:
        return True
    return ia[0] <= ib[1] and ib[0] <= ia[1]


@dataclass
class MemoryAnalysis:
    """Descriptors, diagnostics and the static pair sets of one program."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    descriptors: Dict[int, AddrDescriptor] = field(default_factory=dict)
    load_pcs: List[int] = field(default_factory=list)
    store_pcs: List[int] = field(default_factory=list)
    rar_pairs: List[Tuple[int, int]] = field(default_factory=list)
    raw_pairs: List[Tuple[int, int]] = field(default_factory=list)


def _describe(base: tuple, disp: int, size: int,
              regions_by_label: Dict[str, Region]) -> AddrDescriptor:
    if is_const(base):
        addr = base[1] + disp
        return AddrDescriptor("exact", size, addr, addr + size)
    if is_ptr(base):
        region = regions_by_label.get(base[1])
        if region is None:
            return AddrDescriptor("unknown", size)
        offset = base[2]
        if offset is not None:
            addr = region.lo + offset + disp
            return AddrDescriptor("exact", size, addr, addr + size,
                                  label=base[1])
        # An in-bounds pointer touches at most [lo+disp, hi+disp): the
        # last valid access starts ``size`` bytes before the region end.
        return AddrDescriptor("region", size, region.lo + disp,
                              region.hi + disp, label=base[1])
    return AddrDescriptor("unknown", size)


def analyze_memory(cfg: CFG, dataflow: DataflowResult) -> MemoryAnalysis:
    """Derive addresses, run the checks and build the pair sets."""
    result = MemoryAnalysis()
    program = cfg.program
    regions = data_regions(program)
    regions_by_label = {r.label: r for r in regions}
    data_lo, data_hi = DATA_BASE, max(program.data_end, DATA_BASE)

    reachable = cfg.reachable_indices()
    for i in sorted(dataflow.base_values):
        if i not in reachable:
            continue
        inst = program.instructions[i]
        pc = program.pc_of(i)
        size = _SIZES[inst.opcode]
        desc = _describe(dataflow.base_values[i], inst.imm or 0, size,
                         regions_by_label)
        result.descriptors[pc] = desc
        if inst.opclass == OpClass.LOAD:
            result.load_pcs.append(pc)
        else:
            result.store_pcs.append(pc)

        if desc.kind == "exact":
            if size > 1 and desc.lo % size:
                result.diagnostics.append(Diagnostic(
                    E_MISALIGNED,
                    f"{inst.opcode} effective address {desc.lo:#x} is not "
                    f"{size}-byte aligned (the interpreter would fault)",
                    index=i, pc=pc))
            if desc.label is not None:
                # Base traced to a data label: the address must stay in the
                # data image, and normally within its own label's region.
                if desc.lo < data_lo or desc.hi > data_hi:
                    result.diagnostics.append(Diagnostic(
                        E_OUT_OF_BOUNDS,
                        f"{inst.opcode} at {desc.lo:#x} is outside the data "
                        f"image [{data_lo:#x}, {data_hi:#x})",
                        index=i, pc=pc))
                else:
                    region = regions_by_label[desc.label]
                    if desc.lo < region.lo or desc.hi > region.hi:
                        result.diagnostics.append(Diagnostic(
                            W_REGION_CROSS,
                            f"{inst.opcode} at {desc.lo:#x} reaches outside "
                            f"its label {desc.label!r} region "
                            f"[{region.lo:#x}, {region.hi:#x})",
                            index=i, pc=pc))
            elif desc.lo < 0:
                result.diagnostics.append(Diagnostic(
                    E_OUT_OF_BOUNDS,
                    f"{inst.opcode} effective address {desc.lo:#x} is "
                    f"negative (the interpreter would fault)",
                    index=i, pc=pc))

    # Static pair sets at the DDT's word granularity (byte granularity
    # would miss dynamically observed same-word subword pairs).
    loads = [(pc, result.descriptors[pc]) for pc in result.load_pcs]
    stores = [(pc, result.descriptors[pc]) for pc in result.store_pcs]
    for src_pc, src_desc in loads:
        for sink_pc, sink_desc in loads:
            if may_alias(src_desc, sink_desc, word_granular=True):
                result.rar_pairs.append((src_pc, sink_pc))
    for src_pc, src_desc in stores:
        for sink_pc, sink_desc in loads:
            if may_alias(src_desc, sink_desc, word_granular=True):
                result.raw_pairs.append((src_pc, sink_pc))
    return result
