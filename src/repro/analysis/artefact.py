"""Harness integration: static analysis reports as a store artefact.

Exposes the uniform experiment interface (``run`` / ``run_one`` /
``render``) so ``python -m repro.harness run analysis`` lints kernels in
parallel and lands the per-workload summaries in the content-addressed
result store — the suite's structural health, cached and invalidated by
the same code-fingerprint discipline as every paper artefact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.verifier import analyze_program
from repro.experiments.report import format_table
from repro.experiments.runner import experiment_parser, maybe_write_json, select_workloads


@dataclass
class AnalysisRow:
    """One kernel's static-analysis summary (store/JSON serializable)."""

    abbrev: str
    category: str
    instructions: int
    blocks: int
    loads: int
    stores: int
    errors: int
    warnings: int
    rar_pairs: int
    raw_pairs: int
    diagnostics: List[str]   # rendered, errors and warnings only


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[AnalysisRow]:
    rows = []
    for workload in select_workloads(workloads):
        report = analyze_program(workload.program(scale))
        rows.append(AnalysisRow(
            abbrev=workload.abbrev,
            category=workload.category,
            instructions=report.instructions,
            blocks=report.blocks,
            loads=report.loads,
            stores=report.stores,
            errors=len(report.errors),
            warnings=len(report.warnings),
            rar_pairs=len(report.rar_pairs),
            raw_pairs=len(report.raw_pairs),
            diagnostics=[d.render() for d in report.errors + report.warnings],
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[AnalysisRow]) -> str:
    table_rows = [
        [row.abbrev, str(row.instructions), str(row.blocks),
         str(row.loads), str(row.stores), str(row.rar_pairs),
         str(row.raw_pairs), str(row.errors), str(row.warnings)]
        for row in rows
    ]
    headers = ["Ab.", "insts", "blocks", "loads", "stores",
               "RAR pairs", "RAW pairs", "errors", "warnings"]
    lines = [format_table(
        headers, table_rows,
        title="Static analysis: per-kernel structure and pair sets")]
    for row in rows:
        lines.extend(f"  {row.abbrev}: {text}" for text in row.diagnostics)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = experiment_parser(__doc__).parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads)
    maybe_write_json(args, rows)
    print(render(rows))
    return 1 if any(row.errors for row in rows) else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
