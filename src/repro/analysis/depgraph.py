"""The static dependence-structure graph: loops, strides, synonym sets.

The paper's argument rests on dependence structure being a *static*
program property: stable (PC, PC) pairs (Section 2), address streams that
revisit small working sets (Fig. 2/7), and address sets that collapse
into synonym groups (Section 4).  This pass recovers that structure from
the assembled kernel without running it:

* **Loops** — the non-trivial strongly connected components of the CFG
  (over the context-insensitive interprocedural edges of
  :mod:`repro.analysis.cfg`).  Any block that can re-execute lies in one.
* **Affine summaries** — a memory access whose base register is advanced
  by exactly one ``addi r, r, c`` inside its loop is *affine* with byte
  stride ``c``; combined with its region descriptor this yields an upper
  bound on the in-bounds trip count (region span / |stride|).
* **Synonym sets** — connected components of the word-granular may-alias
  relation over all static memory PCs.  Dynamically, every detected
  dependence merges the synonyms of its endpoints
  (:class:`~repro.core.synonyms.SynonymAllocator`), so two PCs can only
  ever share a synonym if they are in the same component; the component
  is the static upper bound of the merge closure.  Each set's
  ``generations`` bounds how many distinct communication groups (one per
  word, the DDT granularity) the set can sustain — the quantity the
  Synonym File must hold live.

:mod:`repro.analysis.distance` builds the dependence-distance bounds and
the configuration lint on top of this graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import DataflowResult
from repro.analysis.memdep import AddrDescriptor, MemoryAnalysis, may_alias
from repro.isa.instructions import OpClass


def strongly_connected_components(cfg: CFG) -> List[Set[int]]:
    """Tarjan's SCCs over the block graph (iterative), in discovery order."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[Set[int]] = []
    counter = [0]

    for root in range(len(cfg.blocks)):
        if root in index_of:
            continue
        # Each frame is (block, iterator over successors).
        work = [(root, iter(cfg.blocks[root].successors))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            bid, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(cfg.blocks[succ].successors)))
                    advanced = True
                    break
                if succ in on_stack:
                    low[bid] = min(low[bid], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[bid])
            if low[bid] == index_of[bid]:
                component: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == bid:
                        break
                sccs.append(component)
    return sccs


def cyclic_blocks(cfg: CFG, sccs: Optional[List[Set[int]]] = None) -> Set[int]:
    """Blocks that can execute more than once: in a non-trivial SCC or
    carrying a self-edge."""
    if sccs is None:
        sccs = strongly_connected_components(cfg)
    cyclic: Set[int] = set()
    for component in sccs:
        if len(component) > 1:
            cyclic |= component
    for block in cfg.blocks:
        if block.bid in block.successors:
            cyclic.add(block.bid)
    return cyclic


def word_footprint(descriptors: Iterable[AddrDescriptor]) -> Optional[int]:
    """Distinct words the descriptors can touch, or None if unbounded."""
    intervals: List[Tuple[int, int]] = []
    for desc in descriptors:
        interval = desc.word_interval()
        if interval is None:
            return None
        intervals.append(interval)
    intervals.sort()
    total = 0
    current: Optional[Tuple[int, int]] = None
    for lo, hi in intervals:
        if current is None:
            current = (lo, hi)
        elif lo <= current[1] + 1:
            current = (current[0], max(current[1], hi))
        else:
            total += current[1] - current[0] + 1
            current = (lo, hi)
    if current is not None:
        total += current[1] - current[0] + 1
    return total


@dataclass(frozen=True)
class AccessSummary:
    """The symbolic shape of one static memory instruction."""

    pc: int
    index: int
    is_load: bool
    block: int
    descriptor: AddrDescriptor
    loop: Optional[int] = None     # id of the enclosing loop SCC, if any
    stride: Optional[int] = None   # provable bytes/iteration of the base
    trips: Optional[int] = None    # bound on in-bounds loop iterations
    synonym_set: int = 0

    def to_json_dict(self) -> dict:
        return {
            "kind": "load" if self.is_load else "store",
            "descriptor": self.descriptor.kind,
            "loop": self.loop,
            "stride": self.stride,
            "trips": self.trips,
            "synonym_set": self.synonym_set,
        }


@dataclass(frozen=True)
class SynonymSet:
    """One connected component of the may-alias relation."""

    sid: int
    members: Tuple[int, ...]           # PCs, sorted
    generations: Optional[int]         # word-footprint bound; None unbounded

    def to_json_dict(self) -> dict:
        return {
            "id": self.sid,
            "members": [f"{pc:#x}" for pc in self.members],
            "generations": self.generations,
        }


@dataclass
class DepGraph:
    """Loops, affine summaries and synonym structure of one program."""

    accesses: Dict[int, AccessSummary] = field(default_factory=dict)  # pc ->
    synonym_sets: List[SynonymSet] = field(default_factory=list)
    sccs: List[Set[int]] = field(default_factory=list)
    loops: List[Set[int]] = field(default_factory=list)    # non-trivial SCCs
    cyclic: Set[int] = field(default_factory=set)          # cyclic block ids
    footprint_words: Optional[int] = None                  # whole program

    def set_of(self, pc: int) -> Optional[int]:
        """The synonym-set id of a memory PC (None if not a memory PC)."""
        summary = self.accesses.get(pc)
        return None if summary is None else summary.synonym_set


def _affine_summary(cfg: CFG, index: int, loop: Set[int]
                    ) -> Tuple[Optional[int], Optional[int]]:
    """(stride, writer_index) when the base register is an induction
    pointer of ``loop``: written there by exactly one ``addi r, r, c``."""
    instructions = cfg.program.instructions
    base = instructions[index].srcs[0]
    writers = [
        j
        for bid in loop
        for j in cfg.blocks[bid].indices()
        if instructions[j].rd == base
    ]
    if len(writers) != 1:
        return None, None
    writer = instructions[writers[0]]
    if (writer.opcode == "addi" and writer.srcs and writer.srcs[0] == base
            and writer.imm):
        return writer.imm, writers[0]
    return None, None


def _trip_bound(descriptor: AddrDescriptor, stride: Optional[int]
                ) -> Optional[int]:
    """In-bounds iterations of an affine access sweeping its region."""
    if stride is None or descriptor.kind != "region":
        return None
    span = descriptor.hi - descriptor.lo
    if span <= 0:
        return 1
    return max(1, span // abs(stride))


class _UnionFind:
    def __init__(self, items: Iterable[int]) -> None:
        self._parent = {item: item for item in items}

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def build_depgraph(cfg: CFG, dataflow: DataflowResult,
                   memory: MemoryAnalysis) -> DepGraph:
    """Recover loops, affine summaries and synonym sets from the passes."""
    graph = DepGraph()
    program = cfg.program
    graph.sccs = strongly_connected_components(cfg)
    graph.cyclic = cyclic_blocks(cfg, graph.sccs)
    loop_of_block: Dict[int, int] = {}
    for component in graph.sccs:
        if len(component) > 1 or any(
                cfg.blocks[bid].bid in cfg.blocks[bid].successors
                for bid in component):
            loop_id = len(graph.loops)
            graph.loops.append(component)
            for bid in component:
                loop_of_block[bid] = loop_id

    # Synonym sets: union-find over the word-granular may-alias relation
    # (the DDT's detection granularity — the merges cloaking can perform).
    pcs = sorted(memory.descriptors)
    uf = _UnionFind(pcs)
    for i, pc_a in enumerate(pcs):
        desc_a = memory.descriptors[pc_a]
        for pc_b in pcs[i + 1:]:
            if may_alias(desc_a, memory.descriptors[pc_b],
                         word_granular=True):
                uf.union(pc_a, pc_b)
    members_by_root: Dict[int, List[int]] = {}
    for pc in pcs:
        members_by_root.setdefault(uf.find(pc), []).append(pc)
    set_of_pc: Dict[int, int] = {}
    for sid, root in enumerate(sorted(members_by_root)):
        members = tuple(sorted(members_by_root[root]))
        for pc in members:
            set_of_pc[pc] = sid
        graph.synonym_sets.append(SynonymSet(
            sid=sid,
            members=members,
            generations=word_footprint(
                memory.descriptors[pc] for pc in members),
        ))

    reachable = cfg.reachable_indices()
    for index in sorted(dataflow.base_values):
        if index not in reachable:
            continue
        inst = program.instructions[index]
        pc = program.pc_of(index)
        bid = cfg.block_of[index]
        loop_id = loop_of_block.get(bid)
        stride = trips = None
        if loop_id is not None:
            stride, _ = _affine_summary(cfg, index, graph.loops[loop_id])
            trips = _trip_bound(memory.descriptors[pc], stride)
        graph.accesses[pc] = AccessSummary(
            pc=pc,
            index=index,
            is_load=inst.opclass == OpClass.LOAD,
            block=bid,
            descriptor=memory.descriptors[pc],
            loop=loop_id,
            stride=stride,
            trips=trips,
            synonym_set=set_of_pc.get(pc, 0),
        )

    graph.footprint_words = word_footprint(memory.descriptors.values())
    return graph
