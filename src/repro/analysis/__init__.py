"""Static dependence analysis and kernel verification for the mini ISA.

The dynamic side of this repository (DDT, cloaking, pipeline) trusts the
eighteen hand-written workload kernels to encode the memory-dependence
idioms the paper attributes to each SPEC'95 program.  This package is the
independent, trace-free check of that claim:

* :mod:`repro.analysis.cfg` — basic blocks and control-flow edges, with
  branch-target and halt-reachability validation;
* :mod:`repro.analysis.dataflow` — abstract register values (constants
  and data-label pointers) and definite-assignment checking;
* :mod:`repro.analysis.memdep` — static effective addresses, data-image
  bounds/alignment checks, and the may-alias RAR/RAW pair sets that
  over-approximate the paper's Section 3 dependence sets;
* :mod:`repro.analysis.depgraph` — loops (CFG SCCs), affine
  base+stride summaries with trip bounds, and the synonym sets /
  generation counts of the paper's Section 4;
* :mod:`repro.analysis.distance` — static RAR/RAW dependence-distance
  bounds (the Fig. 2 / Fig. 7 axes), the static coverage upper bound,
  and the predictor-sizing lint (``W_SF_UNDERSIZED``,
  ``W_DPNT_CONFLICT``);
* :mod:`repro.analysis.verifier` — one-call orchestration and the
  raising ``verify_program`` hook used by ``Workload.program(verify=True)``;
* ``python -m repro.analysis`` — the lint CLI (see docs/analysis.md).

``repro.experiments.ext_static_ddt`` closes the loop by measuring how
much of the *dynamic* DDT pair stream the static sets cover, and
``repro.experiments.ext_static_distance`` replays the dynamic distance
measurements against the static bounds (soundness + tightness).
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.depgraph import (
    AccessSummary,
    DepGraph,
    SynonymSet,
    build_depgraph,
    cyclic_blocks,
    strongly_connected_components,
    word_footprint,
)
from repro.analysis.distance import (
    DistanceReport,
    PCDistance,
    analyze_distances,
    lint_config,
)
from repro.analysis.memdep import analyze_memory, data_regions, may_alias
from repro.analysis.report import (
    AnalysisReport,
    Diagnostic,
    REPORT_SCHEMA_VERSION,
    Severity,
)
from repro.analysis.verifier import AnalysisError, analyze_program, verify_program

__all__ = [
    "AccessSummary",
    "AnalysisError",
    "AnalysisReport",
    "BasicBlock",
    "CFG",
    "DepGraph",
    "Diagnostic",
    "DistanceReport",
    "PCDistance",
    "REPORT_SCHEMA_VERSION",
    "Severity",
    "SynonymSet",
    "analyze_dataflow",
    "analyze_distances",
    "analyze_memory",
    "analyze_program",
    "build_cfg",
    "build_depgraph",
    "cyclic_blocks",
    "data_regions",
    "lint_config",
    "may_alias",
    "strongly_connected_components",
    "verify_program",
    "word_footprint",
]
