"""Static dependence analysis and kernel verification for the mini ISA.

The dynamic side of this repository (DDT, cloaking, pipeline) trusts the
eighteen hand-written workload kernels to encode the memory-dependence
idioms the paper attributes to each SPEC'95 program.  This package is the
independent, trace-free check of that claim:

* :mod:`repro.analysis.cfg` — basic blocks and control-flow edges, with
  branch-target and halt-reachability validation;
* :mod:`repro.analysis.dataflow` — abstract register values (constants
  and data-label pointers) and definite-assignment checking;
* :mod:`repro.analysis.memdep` — static effective addresses, data-image
  bounds/alignment checks, and the may-alias RAR/RAW pair sets that
  over-approximate the paper's Section 3 dependence sets;
* :mod:`repro.analysis.verifier` — one-call orchestration and the
  raising ``verify_program`` hook used by ``Workload.program(verify=True)``;
* ``python -m repro.analysis`` — the lint CLI (see docs/analysis.md).

``repro.experiments.ext_static_ddt`` closes the loop by measuring how
much of the *dynamic* DDT pair stream the static sets cover.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.memdep import analyze_memory, data_regions, may_alias
from repro.analysis.report import AnalysisReport, Diagnostic, Severity
from repro.analysis.verifier import AnalysisError, analyze_program, verify_program

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BasicBlock",
    "CFG",
    "Diagnostic",
    "Severity",
    "analyze_dataflow",
    "analyze_memory",
    "analyze_program",
    "build_cfg",
    "data_regions",
    "may_alias",
    "verify_program",
]
