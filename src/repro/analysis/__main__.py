"""``python -m repro.analysis`` — lint kernels with the static analyzer.

    python -m repro.analysis suite --strict          # the structural gate
    python -m repro.analysis li gcc --scale 0.25
    python -m repro.analysis path/to/kernel.s        # an assembly file
    python -m repro.analysis suite --json report.json
    python -m repro.analysis li --distances --json -  # machine-readable

``--distances`` runs the dependence-structure passes too: per-PC symbolic
address summaries (loop, stride, trip bound), RAR/RAW distance bounds,
synonym sets, the static coverage upper bound, and the predictor-sizing
lint against the paper's timing configuration.

``--json -`` writes the JSON report to stdout and keeps every
human-readable line (summaries, diagnostics) strictly on stderr, so
pipeline consumers can parse stdout directly.

Exit status: 0 when every target is clean, 1 when any target has errors
(with ``--strict``: errors or warnings) or fails to assemble, 2 on bad
usage (unknown kernel, bad flags).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import REPORT_SCHEMA_VERSION

#: Version of the ``--json`` payload layout (bump on breaking changes).
#: Kept in lockstep with the per-program report schema.
JSON_SCHEMA_VERSION = REPORT_SCHEMA_VERSION


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "targets", nargs="+", metavar="TARGET",
        help="workload abbreviations (e.g. li gcc), 'suite' for all 18 "
             "kernels, or paths to assembly source files")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor for kernel targets "
             "(default %(default)s)")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (the CI gate)")
    parser.add_argument(
        "--distances", action="store_true",
        help="also run the dependence-structure passes: distance bounds, "
             "synonym sets, coverage bound and the predictor-sizing lint")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full JSON report ('-' writes the JSON to "
             "stdout and moves all human-readable output to stderr)")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="show informational diagnostics too")
    return parser


def _resolve_programs(targets: Sequence[str], scale: float) -> List[Tuple[str, object]]:
    """Each target becomes ``(display_name, Program | AssemblyError)``."""
    from repro.experiments.runner import select_workloads
    from repro.isa.assembler import AssemblyError, assemble

    names: List[str] = []
    files: List[str] = []
    want_suite = False
    for target in targets:
        if target in ("suite", "all"):
            want_suite = True
        elif os.sep in target or target.endswith(".s") or os.path.exists(target):
            files.append(target)
        else:
            names.append(target)

    resolved: List[Tuple[str, object]] = []
    for workload in select_workloads(names if not want_suite else None):
        if want_suite or workload.abbrev in names:
            resolved.append((workload.abbrev, workload.program(scale)))
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise ValueError(f"cannot read {path!r}: {exc}") from None
        try:
            resolved.append((path, assemble(source, name=path)))
        except AssemblyError as exc:
            resolved.append((path, exc))
    return resolved


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.verifier import analyze_program

    args = _parser().parse_args(argv)
    try:
        programs = _resolve_programs(args.targets, args.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # With ``--json -`` stdout belongs to the JSON document alone; every
    # human-readable line goes to stderr so consumers can parse stdout.
    human = sys.stderr if args.json == "-" else sys.stdout

    lint_config = None
    if args.distances:
        from repro.core import CloakingConfig

        lint_config = CloakingConfig.paper_timing()

    failed = 0
    payload_programs = []
    for name, program in programs:
        if isinstance(program, Exception):
            print(f"{name}: FAILED TO ASSEMBLE — {program}", file=human)
            payload_programs.append({
                "name": name, "assembly_error": str(program)})
            failed += 1
            continue
        report = analyze_program(program, distances=args.distances,
                                 lint_config=lint_config)
        print(report.render(verbose=args.verbose), file=human)
        payload_programs.append(report.to_json_dict())
        if not report.ok(strict=args.strict):
            failed += 1

    print(f"\n{len(programs) - failed}/{len(programs)} target(s) clean"
          + (" (strict)" if args.strict else ""), file=human)

    if args.json:
        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "scale": args.scale,
            "strict": args.strict,
            "distances": args.distances,
            "clean": failed == 0,
            "programs": payload_programs,
        }
        text = json.dumps(payload, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
