"""Diagnostics and the per-program analysis report.

Every pass emits :class:`Diagnostic` records with a stable machine code
(``E_*`` errors, ``W_*`` warnings, ``I_*`` informational notes) so the
suite lint gate and the CLI can filter by severity without string
matching.  :class:`AnalysisReport` aggregates one program's diagnostics
together with the static memory-dependence approximation and serializes
to the JSON schema documented in docs/analysis.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


#: Version of the per-program report JSON layout (and of the ``--json``
#: payload wrapping it) — bump on breaking changes.  v2 added the
#: per-program ``schema_version`` echo and the opt-in ``distances``
#: section (depgraph/distance passes).
REPORT_SCHEMA_VERSION = 2


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Stable diagnostic codes (documented in docs/analysis.md).
E_EMPTY_PROGRAM = "E_EMPTY_PROGRAM"
E_BAD_TARGET = "E_BAD_TARGET"
E_NO_HALT = "E_NO_HALT"
E_OUT_OF_BOUNDS = "E_OUT_OF_BOUNDS"
E_MISALIGNED = "E_MISALIGNED"
E_NEVER_WRITTEN = "E_NEVER_WRITTEN"
W_DEAD_CODE = "W_DEAD_CODE"
W_FALL_OFF_END = "W_FALL_OFF_END"
W_REGION_CROSS = "W_REGION_CROSS"
W_RETURN_WITHOUT_CALL = "W_RETURN_WITHOUT_CALL"
W_SF_UNDERSIZED = "W_SF_UNDERSIZED"
W_DPNT_CONFLICT = "W_DPNT_CONFLICT"
I_MAYBE_UNINIT = "I_MAYBE_UNINIT"

_SEVERITY_OF_PREFIX = {
    "E": Severity.ERROR,
    "W": Severity.WARNING,
    "I": Severity.INFO,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static pass, anchored to an instruction."""

    code: str
    message: str
    index: Optional[int] = None   # instruction index, None = whole program
    pc: Optional[int] = None

    @property
    def severity(self) -> Severity:
        return _SEVERITY_OF_PREFIX[self.code[0]]

    def render(self) -> str:
        where = f"@{self.pc:#x}" if self.pc is not None else "<program>"
        return f"{self.severity.value:<7} {self.code:<22} {where:>10}  {self.message}"


@dataclass
class AnalysisReport:
    """Everything the analyzer learned about one program.

    ``rar_pairs`` / ``raw_pairs`` are the static may-alias dependence pair
    sets over instruction addresses: ``(source_pc, sink_pc)`` with the
    source a load (RAR) or store (RAW) and the sink a load.  They
    over-approximate the paper's Section 3 dynamic dependence sets — every
    observable dynamic (source, sink) pair is intended to be present,
    while pairs that never materialize at runtime may also appear.
    """

    name: str
    instructions: int = 0
    blocks: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)
    loads: int = 0
    stores: int = 0
    rar_pairs: List[Tuple[int, int]] = field(default_factory=list)
    raw_pairs: List[Tuple[int, int]] = field(default_factory=list)
    addresses: Dict[int, dict] = field(default_factory=dict)  # pc -> descriptor
    #: Opt-in distance/synonym section — a
    #: :class:`repro.analysis.distance.DistanceReport` when
    #: ``analyze_program(..., distances=True)`` ran, else ``None``.
    distances: Optional[object] = None

    # -- severity views ---------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    def ok(self, strict: bool = False) -> bool:
        """True when the program is clean (under ``strict``: no warnings)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    # -- serialization ----------------------------------------------------

    def to_json_dict(self) -> dict:
        """The stable JSON schema (see docs/analysis.md)."""
        out = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "name": self.name,
            "instructions": self.instructions,
            "blocks": self.blocks,
            "loads": self.loads,
            "stores": self.stores,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity.value,
                    "index": d.index,
                    "pc": d.pc,
                    "message": d.message,
                }
                for d in self.diagnostics
            ],
            "rar_pairs": [list(p) for p in self.rar_pairs],
            "raw_pairs": [list(p) for p in self.raw_pairs],
            "addresses": {
                f"{pc:#x}": desc for pc, desc in sorted(self.addresses.items())
            },
        }
        if self.distances is not None:
            out["distances"] = self.distances.to_json_dict()
        return out

    def render(self, verbose: bool = False) -> str:
        """A human-readable summary (the CLI's default output)."""
        status = "clean" if self.ok(strict=True) else (
            "ERRORS" if self.errors else "warnings")
        lines = [
            f"{self.name}: {status} — {self.instructions} instructions, "
            f"{self.blocks} blocks, {self.loads} loads / {self.stores} stores, "
            f"{len(self.rar_pairs)} static RAR / {len(self.raw_pairs)} static "
            f"RAW pairs"
        ]
        if self.distances is not None:
            lines.append("  " + self.distances.render_summary())
        shown = self.diagnostics if verbose else [
            d for d in self.diagnostics if d.severity is not Severity.INFO]
        lines.extend("  " + d.render() for d in shown)
        return "\n".join(lines)
