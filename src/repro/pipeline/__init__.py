"""The cycle-level out-of-order processor timing model (paper Section 5.1).

An 8-wide machine with a 128-entry instruction window, a 5-cycle front
end, 1-cycle operand read, the paper's functional-unit latencies, a
128-entry load/store scheduler issuing up to 4 memory operations per cycle
with *naive memory dependence speculation*, the two-level memory hierarchy
of :mod:`repro.memsys`, and the combined branch predictor of
:mod:`repro.predictors.branch`.

The model is trace-driven and dataflow-timed: each committed instruction
is assigned fetch/dispatch/issue/complete/commit times subject to width,
window-occupancy, dependence and latency constraints.  Wrong-path fetch is
modelled as redirect bubbles (the paper's simulator executes wrong paths;
the bubble cost — the dominant effect — is preserved).

:class:`~repro.pipeline.cloaked_processor.CloakedProcessor` adds the
cloaking/bypassing mechanism with the Figure 8 pipeline integration and
the two misspeculation recovery schemes of Section 5.6.1.
"""

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor, SimResult
from repro.pipeline.cloaked_processor import CloakedProcessor
from repro.pipeline.recovery import RecoveryPolicy
from repro.pipeline.store_sets import StoreSetPredictor

__all__ = [
    "ProcessorConfig",
    "Processor",
    "SimResult",
    "CloakedProcessor",
    "RecoveryPolicy",
    "StoreSetPredictor",
]
