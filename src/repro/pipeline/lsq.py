"""The 128-entry load/store scheduler (paper Section 5.1).

Implements the paper's *naive memory dependence speculation* policy:

1. a load may access memory even when preceding store addresses are
   unknown;
2. a load waits for preceding stores *known* to write to the same address
   (their data is forwarded);
3. stores post their address even when their data is not yet available;
4. stores may post data or address out of order.

A load that accesses memory before an older same-address store has posted
its address causes a memory-order violation: its value only becomes
correct once the store's data is forwarded, plus a re-execution penalty
(``violation_penalty``).

Two alternative policies are provided:

* ``no_speculation`` (Figure 10's base) — every load waits until the
  addresses of *all* preceding stores are known;
* ``store_sets`` (Chrysos & Emer) — loads that have violated against a
  store wait for that store set's last store before accessing memory,
  trading rare violations for occasional over-serialization.

The model is trace-driven in program order, so "preceding" is exact: the
scheduler tracks, per word address, the address-post and forward-readiness
times of the most recent earlier store, and the running maximum of store
address-post times for the no-speculation mode.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.memsys.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.functional_units import BandwidthLimiter
from repro.pipeline.store_sets import StoreSetPredictor


class LoadStoreScheduler:
    """Schedules memory operations and times their data availability."""

    def __init__(self, config: ProcessorConfig, hierarchy: MemoryHierarchy) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.policy = config.effective_lsq_policy
        self._ports = BandwidthLimiter(config.lsq_width)
        # word address -> (addr post time, forward-ready time, store pc)
        self._store_info: Dict[int, Tuple[int, int, int]] = {}
        self._store_addr_frontier = 0
        self.store_sets = (StoreSetPredictor()
                           if self.policy == "store_sets" else None)
        self.loads_forwarded = 0
        self.loads_from_memory = 0
        self.violations = 0

    def schedule_store(self, pc: int, word_addr: int, addr_time: int,
                       data_time: int) -> int:
        """Post a store; returns its completion time (address+data posted).

        The store claims an LSQ port when its address is computed; its data
        may arrive later (out-of-order posting, rules 3/4).
        """
        slot = self._ports.allocate(addr_time + self.config.lsq_min_delay)
        self._store_addr_frontier = max(self._store_addr_frontier, slot)
        forward_ready = max(slot, data_time) + self.config.store_forward_latency
        self._store_info[word_addr] = (slot, forward_ready, pc)
        if self.store_sets is not None:
            self.store_sets.store_dispatched(pc, slot, forward_ready)
        return max(slot, data_time)

    def schedule_load(self, pc: int, word_addr: int, byte_addr: int,
                      addr_time: int) -> int:
        """Schedule a load; returns the cycle its value is available."""
        earliest = addr_time + self.config.lsq_min_delay
        if self.policy == "no_speculation":
            # Loads wait for every preceding store address to be known.
            earliest = max(earliest, self._store_addr_frontier)
        elif self.store_sets is not None:
            earliest = max(earliest, self.store_sets.load_wait_time(pc))
        slot = self._ports.allocate(earliest)

        info = self._store_info.get(word_addr)
        if info is not None:
            store_addr_time, forward_ready, store_pc = info
            if forward_ready > slot:
                self.loads_forwarded += 1
                if store_addr_time > slot:
                    # The load accessed memory before the older store's
                    # address was known: a memory-order violation.  The
                    # load (and its dependents) re-execute once the store
                    # forwards.
                    self.violations += 1
                    if self.store_sets is not None:
                        self.store_sets.train_violation(pc, store_pc)
                    return forward_ready + self.config.violation_penalty
                # Rule 2: wait for (and forward from) the matching store.
                return forward_ready
        self.loads_from_memory += 1
        return slot + self.hierarchy.load(byte_addr, slot)

    def commit_store(self, byte_addr: int, commit_time: int) -> None:
        """Update cache state when a store leaves the window."""
        self.hierarchy.store(byte_addr, commit_time)

    def reset(self) -> None:
        self._ports.reset()
        self._store_info.clear()
        self._store_addr_frontier = 0
        if self.store_sets is not None:
            self.store_sets.clear()
