"""Value-misspeculation recovery policies (paper Section 5.6.1).

* **selective** invalidation re-executes only the instructions that used
  incorrect data; its cost is the rescheduling delay of the dependent
  chain.  The paper finds it performs close to an oracle.
* **squash** invalidation flushes everything from the misspeculated
  instruction on and refetches, like a branch mispredict.  The paper finds
  it rarely yields speedups.
* **oracle** never speculates when doing so would misspeculate.
"""

from __future__ import annotations

import enum


class RecoveryPolicy(enum.Enum):
    SELECTIVE = "selective"
    SQUASH = "squash"
    ORACLE = "oracle"
