"""Processor configuration (paper Section 5.1 base machine)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import OpClass
from repro.memsys.hierarchy import MemoryHierarchyConfig


@dataclass(frozen=True)
class ProcessorConfig:
    """All timing parameters of the base out-of-order core.

    Defaults reproduce the paper's machine: 8-wide fetch/issue/commit,
    128-entry window, 5 cycles to fetch/decode/enter the reorder buffer,
    1 cycle operand read after issue, a 128-entry load/store scheduler
    moving up to 4 memory operations per cycle with at least one cycle
    between address calculation and scheduling, and naive memory dependence
    speculation (set ``memory_speculation=False`` for the Figure 10 base
    that makes loads wait for all preceding store addresses).
    """

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    window_size: int = 128
    frontend_depth: int = 5
    operand_read_cycles: int = 1
    lsq_size: int = 128
    lsq_width: int = 4
    lsq_min_delay: int = 1          # cycles between address calc and scheduling
    memory_speculation: bool = True
    # "naive" (the paper's policy), "store_sets" (Chrysos-Emer) or
    # "no_speculation" (Figure 10's base).  ``memory_speculation=False`` is
    # shorthand for "no_speculation".
    lsq_policy: str = "naive"
    violation_penalty: int = 7      # re-execution cost of an order violation
    store_forward_latency: int = 1  # store-to-load forwarding
    branch_predictor_entries: int = 64 * 1024
    ras_depth: int = 64
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    # Functional-unit issue bandwidth per class and cycle.  The paper's
    # 8-wide machine does not enumerate FU counts; defaults leave only the
    # global issue width and LSQ bandwidth binding.
    fu_limits: Dict[OpClass, int] = field(default_factory=dict)

    def fu_limit(self, opclass: OpClass) -> int:
        return self.fu_limits.get(opclass, self.issue_width)

    def __post_init__(self) -> None:
        for name in ("fetch_width", "issue_width", "commit_width",
                     "window_size", "frontend_depth", "lsq_size", "lsq_width"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.lsq_policy not in ("naive", "store_sets", "no_speculation"):
            raise ValueError(f"unknown lsq_policy {self.lsq_policy!r}")
        if self.violation_penalty < 0:
            raise ValueError("violation_penalty must be >= 0")

    @property
    def effective_lsq_policy(self) -> str:
        """The scheduling policy after applying ``memory_speculation``."""
        if not self.memory_speculation:
            return "no_speculation"
        return self.lsq_policy
