"""Issue-bandwidth accounting for the dataflow timing model."""

from __future__ import annotations

from typing import Dict

from repro.isa.instructions import OpClass, latency_of
from repro.pipeline.config import ProcessorConfig


class IssueBandwidth:
    """Allocates issue slots subject to global width and per-class FU limits.

    ``allocate(earliest, opclass)`` returns the first cycle at or after
    ``earliest`` with both a free global issue slot and a free slot of the
    instruction's functional-unit class.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self._config = config
        self._global: Dict[int, int] = {}
        self._per_class: Dict[OpClass, Dict[int, int]] = {}

    def allocate(self, earliest: int, opclass: OpClass) -> int:
        width = self._config.issue_width
        class_limit = self._config.fu_limit(opclass)
        class_counts = self._per_class.get(opclass)
        if class_counts is None:
            class_counts = self._per_class[opclass] = {}
        cycle = earliest
        while True:
            if self._global.get(cycle, 0) < width \
                    and class_counts.get(cycle, 0) < class_limit:
                self._global[cycle] = self._global.get(cycle, 0) + 1
                class_counts[cycle] = class_counts.get(cycle, 0) + 1
                return cycle
            cycle += 1

    def reset(self) -> None:
        self._global.clear()
        self._per_class.clear()


class BandwidthLimiter:
    """A single-resource per-cycle bandwidth allocator (LSQ ports, commit)."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self._counts: Dict[int, int] = {}

    def allocate(self, earliest: int) -> int:
        cycle = earliest
        counts = self._counts
        while counts.get(cycle, 0) >= self.width:
            cycle += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        return cycle

    def reset(self) -> None:
        self._counts.clear()


def execution_latency(opclass: OpClass) -> int:
    """Execution latency of a non-memory operation class."""
    return latency_of(opclass)
