"""The processor with an integrated cloaking/bypassing mechanism (Figure 8).

Dependence predictions are initiated at decode; the Synonym Rename Table
(in-flight producers) and Synonym File are inspected to locate the
synonym's value; detection, SF and DPNT updates happen at commit.  In this
trace-driven model decode/commit order coincide, so the
:class:`~repro.core.cloaking.CloakingEngine` is driven inline and a
synonym → value-availability-time map plays the role of the SRT/SF pair:

* a predicted **producer store** publishes its value when its data is
  ready (the store need not have executed — that is the point of RAW
  cloaking);
* a predicted **producer load** publishes when its memory access completes
  ("in RAR-based cloaking the value has to be fetched from memory by the
  first load", Section 3.1);
* a predicted **consumer load** with a correct value gives its consumers
  the value at ``max(dispatch + 1, producer publish time)`` — combined
  cloaking + bypassing links consumers directly to the producer;
* a **wrong** value costs according to the recovery policy of Section
  5.6.1: *selective* re-executes the dependent chain once the load's real
  value arrives (a small rescheduling penalty); *squash* flushes and
  refetches from the misspeculated consumer; *oracle* never uses wrong
  values.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cloaking import CloakingEngine
from repro.core.config import CloakingConfig
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor
from repro.pipeline.recovery import RecoveryPolicy
from repro.trace.records import DynInst


class CloakedProcessor(Processor):
    """The base machine plus cloaking/bypassing."""

    #: rescheduling penalty (cycles) for selectively re-executed consumers
    SELECTIVE_PENALTY = 1

    def __init__(
        self,
        config: ProcessorConfig = ProcessorConfig(),
        cloaking: CloakingConfig = CloakingConfig(),
        recovery: RecoveryPolicy = RecoveryPolicy.SELECTIVE,
    ) -> None:
        super().__init__(config)
        self.engine = CloakingEngine(cloaking)
        self.recovery = recovery
        self._synonym_value_time: Dict[int, int] = {}
        self.speculations_used = 0
        self.misspeculations = 0

    # -- hooks ----------------------------------------------------------------

    def _store_hook(self, inst: DynInst, data_time: int) -> None:
        observed = self.engine.observe_timing(inst)
        if observed is not None and observed.producer_synonym is not None:
            self._synonym_value_time[observed.producer_synonym] = data_time

    def _load_value_time(self, inst: DynInst, dispatch: int,
                         value_time: int) -> int:
        observed = self.engine.observe_timing(inst)
        outcome = observed.outcome
        effective = value_time

        if outcome.speculated:
            use = True
            if self.recovery == RecoveryPolicy.ORACLE and not outcome.correct:
                use = False
            if use:
                self.speculations_used += 1
                if outcome.correct:
                    publish = self._synonym_value_time.get(
                        observed.consumer_synonym, dispatch)
                    speculative = max(dispatch + 1, publish)
                    if speculative < effective:
                        effective = speculative
                else:
                    self.misspeculations += 1
                    # Misspeculation is signalled when a dependent reads the
                    # wrong value; verification completes with the load.
                    verify = value_time
                    if self.recovery == RecoveryPolicy.SELECTIVE:
                        effective = verify + self.SELECTIVE_PENALTY
                    else:  # SQUASH: flush and refetch from here on
                        effective = verify + self.SELECTIVE_PENALTY
                        self._redirect = max(self._redirect, verify + 1)

        if observed.producer_synonym is not None:
            # A producing load publishes the value it fetched from memory.
            self._synonym_value_time[observed.producer_synonym] = value_time
        return effective

    def _warm_instruction(self, inst: DynInst) -> None:
        super()._warm_instruction(inst)
        if inst.is_load or inst.is_store:
            observed = self.engine.observe_timing(inst)
            if observed is not None and observed.producer_synonym is not None:
                # Values deposited during functional simulation are simply
                # "available" when timing resumes.
                self._synonym_value_time[observed.producer_synonym] = \
                    self._final_cycle

    # -- reporting -------------------------------------------------------------

    def finalize(self, name: str = ""):
        """Close out the run; attaches cloaking accuracy to ``result.extra``."""
        result = super().finalize(name)
        stats = self.engine.stats
        result.extra.update({
            "cloaking_mode": self.engine.config.mode.value,
            "recovery": self.recovery.value,
            "coverage": stats.coverage,
            "coverage_raw": stats.coverage_raw,
            "coverage_rar": stats.coverage_rar,
            "misspeculation_rate": stats.misspeculation_rate,
            "speculations_used": self.speculations_used,
            "misspeculations": self.misspeculations,
        })
        return result

    @property
    def misspeculation_rate(self) -> float:
        stats = self.engine.stats
        return stats.misspeculation_rate

    def describe(self) -> str:
        return (f"CloakedProcessor(mode={self.engine.config.mode.value}, "
                f"recovery={self.recovery.value})")
