"""The base out-of-order processor timing model."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Optional

from repro.isa.instructions import OpClass, latency_of
from repro.isa.registers import NUM_REGS
from repro.memsys.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.functional_units import BandwidthLimiter, IssueBandwidth
from repro.pipeline.lsq import LoadStoreScheduler
from repro.predictors.branch import CombinedPredictor, ReturnAddressStack
from repro.trace.records import DynInst
from repro.trace.sampling import TIMING, SamplingPlan


@dataclass
class SimResult:
    """Outcome of one timing simulation."""

    name: str = ""
    instructions: int = 0
    timing_instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branch_mispredicts: int = 0
    branches: int = 0
    l1d_misses: int = 0
    l1d_accesses: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.timing_instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    def speedup_over(self, base: "SimResult") -> float:
        """Speedup of this run relative to ``base`` (same instruction stream)."""
        if self.timing_instructions != base.timing_instructions:
            raise ValueError(
                "speedup comparison requires identical instruction streams "
                f"({self.timing_instructions} vs {base.timing_instructions})"
            )
        if not self.cycles:
            raise ValueError("this run has no timing cycles")
        return base.cycles / self.cycles


class Processor:
    """Trace-driven, dataflow-timed model of the Section 5.1 base machine.

    Feed the committed instruction stream to :meth:`run`.  Subclasses hook
    :meth:`_load_value_time` to integrate value-speculative mechanisms.
    """

    def __init__(self, config: ProcessorConfig = ProcessorConfig()) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config.memory)
        self.branch_predictor = CombinedPredictor(config.branch_predictor_entries)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.lsq = LoadStoreScheduler(config, self.hierarchy)
        self._issue = IssueBandwidth(config)
        self._commit_bw = BandwidthLimiter(config.commit_width)
        self._reg_avail = [0] * NUM_REGS
        self._commit_ring: Deque[int] = deque()
        self._last_commit = 0
        self._fetch_cycle = 0
        self._fetch_count = 0
        self._redirect = 0
        self._last_fetch_block = -1
        self._final_cycle = 0
        self._icache_block_bytes = config.memory.l1i.block_bytes
        self.result = SimResult()

    # -- public driver -------------------------------------------------------

    def run(self, trace: Iterable[DynInst],
            sampling: Optional[SamplingPlan] = None,
            name: str = "") -> SimResult:
        """Simulate a committed instruction stream; returns the result.

        With a :class:`SamplingPlan`, functional segments update caches and
        branch predictors only (the paper's sampling scheme); timing
        segments are fully simulated.
        """
        if sampling is not None and sampling.enabled:
            for segment in sampling.segments(trace):
                timing = segment.mode == TIMING
                for inst in segment.instructions:
                    self.feed(inst, timing=timing)
        else:
            for inst in trace:
                self._time_instruction(inst)
        return self.finalize(name)

    def feed(self, inst: DynInst, timing: bool = True) -> None:
        """Incremental driving interface (lets harnesses share a trace pass)."""
        if timing:
            self._time_instruction(inst)
        else:
            self._warm_instruction(inst)

    def finalize(self, name: str = "") -> SimResult:
        """Close out the simulation and return the result."""
        self.result.name = name
        self.result.cycles = self._final_cycle
        self.result.l1d_misses = self.hierarchy.l1d.misses
        self.result.l1d_accesses = self.hierarchy.l1d.accesses
        return self.result

    # -- per-instruction timing ----------------------------------------------

    def _time_instruction(self, inst: DynInst) -> None:
        config = self.config
        result = self.result
        result.instructions += 1
        result.timing_instructions += 1

        # ---- fetch ----
        fetch = max(self._fetch_cycle, self._redirect)
        if fetch > self._fetch_cycle:
            self._fetch_cycle = fetch
            self._fetch_count = 0
        block = inst.pc >> (self._icache_block_bytes.bit_length() - 1)
        if block != self._last_fetch_block:
            self._last_fetch_block = block
            latency = self.hierarchy.fetch(inst.pc, fetch)
            miss_penalty = latency - config.memory.l1i.hit_latency
            if miss_penalty > 0:
                self._fetch_cycle += miss_penalty
                self._fetch_count = 0
                fetch = self._fetch_cycle
        self._fetch_count += 1
        if self._fetch_count >= config.fetch_width:
            self._fetch_cycle += 1
            self._fetch_count = 0

        # ---- dispatch (enter the window) ----
        dispatch = fetch + config.frontend_depth
        if len(self._commit_ring) >= config.window_size:
            oldest = self._commit_ring.popleft()
            if oldest + 1 > dispatch:
                dispatch = oldest + 1

        # ---- issue ----
        ready = dispatch + 1
        cls = inst.opclass
        if cls == OpClass.STORE and len(inst.srcs) > 1:
            # A store issues (and posts its address) as soon as its BASE
            # register is ready; the data register may arrive later and is
            # posted out of order (Section 5.1, rules 3/4).
            issue_srcs = inst.srcs[:1]
        else:
            issue_srcs = inst.srcs
        for src in issue_srcs:
            avail = self._reg_avail[src]
            if avail > ready:
                ready = avail
        issue = self._issue.allocate(ready, inst.opclass)

        # ---- execute / memory ----
        if cls == OpClass.LOAD:
            addr_time = issue + config.operand_read_cycles
            value_time = self.lsq.schedule_load(
                inst.pc, inst.word_addr, inst.addr, addr_time)
            # Consumers may see the value earlier (cloaking/bypassing), but
            # the load itself completes — and can commit — only when its own
            # memory access (which also verifies speculation) is done.
            consumer_time = self._load_value_time(inst, dispatch, value_time)
            if inst.rd is not None:
                self._reg_avail[inst.rd] = consumer_time
            complete = value_time
            result.loads += 1
        elif cls == OpClass.STORE:
            addr_time = issue + config.operand_read_cycles
            # Stores normally carry (base, data) sources; tolerate synthetic
            # records without a data register (value ready at issue).
            data_time = (self._reg_avail[inst.srcs[1]]
                         if len(inst.srcs) > 1 else issue)
            complete = self.lsq.schedule_store(
                inst.pc, inst.word_addr, addr_time, data_time)
            self._store_hook(inst, data_time)
            result.stores += 1
        else:
            complete = issue + latency_of(cls)
            if inst.rd is not None:
                self._reg_avail[inst.rd] = complete
            if inst.is_control:
                complete = self._resolve_control(inst, complete)
                result.branches += 1

        # ---- commit (in order, bounded width) ----
        commit_ready = max(complete + 1, self._last_commit)
        commit = self._commit_bw.allocate(commit_ready)
        self._last_commit = commit
        self._commit_ring.append(commit)
        if commit > self._final_cycle:
            self._final_cycle = commit
        if cls == OpClass.STORE:
            self.lsq.commit_store(inst.addr, commit)

    def _resolve_control(self, inst: DynInst, resolve: int) -> int:
        """Apply branch prediction; returns the (possibly later) resolve time."""
        cls = inst.opclass
        if cls == OpClass.BRANCH:
            correct = self.branch_predictor.observe(inst.pc, inst.taken)
            if not correct:
                self.result.branch_mispredicts += 1
                self._redirect = max(self._redirect, resolve + 1)
        elif cls == OpClass.CALL:
            self.ras.push(inst.pc + 4)
        elif cls == OpClass.RETURN:
            if not self.ras.predict_and_pop(inst.target_pc):
                self.result.branch_mispredicts += 1
                self._redirect = max(self._redirect, resolve + 1)
        # Direct jumps and calls have decode-time targets: no penalty.
        return resolve

    # -- hooks for the cloaked subclass ---------------------------------------

    def _load_value_time(self, inst: DynInst, dispatch: int,
                         value_time: int) -> int:
        """When a load's value reaches its consumers (hook for cloaking)."""
        return value_time

    def _store_hook(self, inst: DynInst, data_time: int) -> None:
        """Called for every timed store (hook for cloaking producers)."""

    # -- functional warm-up (sampling) ----------------------------------------

    def _warm_instruction(self, inst: DynInst) -> None:
        """Update caches and predictors without advancing timing state."""
        self.result.instructions += 1
        now = self._final_cycle
        block = inst.pc >> (self._icache_block_bytes.bit_length() - 1)
        if block != self._last_fetch_block:
            self._last_fetch_block = block
            self.hierarchy.fetch(inst.pc, now)
        if inst.is_load:
            self.hierarchy.load(inst.addr, now)
        elif inst.is_store:
            self.hierarchy.store(inst.addr, now)
        elif inst.opclass == OpClass.BRANCH:
            self.branch_predictor.observe(inst.pc, inst.taken)
        elif inst.opclass == OpClass.CALL:
            self.ras.push(inst.pc + 4)
        elif inst.opclass == OpClass.RETURN:
            self.ras.predict_and_pop(inst.target_pc)
