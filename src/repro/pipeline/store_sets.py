"""Store-set memory dependence prediction (Chrysos & Emer, ISCA 1998).

The paper's base machine uses *naive* memory dependence speculation and
cites Chrysos & Emer both for the synonym merge rule and as the
state-of-the-art scheduling alternative.  This module implements the
store-set predictor as a third LSQ policy so the "naive speculation is
close to ideal for this window" claim (Section 5.1) can be checked:

* the **SSIT** (store-set id table) maps load and store PCs to store-set
  ids;
* the **LFST** (last fetched store table) tracks, per set, the most recent
  in-flight store;
* a load whose PC belongs to a set waits for that set's last store before
  accessing memory;
* on a memory-order violation (a load executed before an older,
  same-address store posted its address) the offending load and store are
  assigned to a common set, using the Chrysos–Emer minimum-id merge rule.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class StoreSetPredictor:
    """SSIT + LFST, adapted to the trace-driven timing model."""

    def __init__(self, ssit_entries: int = 4096) -> None:
        if ssit_entries <= 0 or ssit_entries & (ssit_entries - 1):
            raise ValueError("ssit_entries must be a power of two")
        self._mask = ssit_entries - 1
        self._ssit: Dict[int, int] = {}
        # set id -> (addr_time, forward_ready) of the most recent store
        self._lfst: Dict[int, Tuple[int, int]] = {}
        self._next_id = 1
        self.violations_trained = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def set_of(self, pc: int) -> Optional[int]:
        return self._ssit.get(self._index(pc))

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """A load/store pair violated memory order: unify their sets."""
        self.violations_trained += 1
        load_index = self._index(load_pc)
        store_index = self._index(store_pc)
        load_set = self._ssit.get(load_index)
        store_set = self._ssit.get(store_index)
        if load_set is None and store_set is None:
            set_id = self._next_id
            self._next_id += 1
            self._ssit[load_index] = set_id
            self._ssit[store_index] = set_id
        elif load_set is None:
            self._ssit[load_index] = store_set
        elif store_set is None:
            self._ssit[store_index] = load_set
        elif load_set != store_set:
            # Chrysos-Emer: converge on the smaller id.
            winner = min(load_set, store_set)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner

    def store_dispatched(self, pc: int, addr_time: int,
                         forward_ready: int) -> None:
        """Record a store's timing in its set's LFST slot (if any)."""
        set_id = self.set_of(pc)
        if set_id is not None:
            self._lfst[set_id] = (addr_time, forward_ready)

    def load_wait_time(self, pc: int) -> int:
        """The earliest cycle a set-member load may access memory."""
        set_id = self.set_of(pc)
        if set_id is None:
            return 0
        timing = self._lfst.get(set_id)
        if timing is None:
            return 0
        addr_time, _ = timing
        return addr_time

    def clear(self) -> None:
        self._ssit.clear()
        self._lfst.clear()
