"""Vectorized NumPy kernels behind the columnar ``numpy`` backend.

The per-instruction DDT (:class:`repro.dependence.ddt.DDT`) is a
fully-associative LRU table; under the paper's default configuration
(common load/store table, record-loads-on-miss, touch-on-hit) its whole
behaviour over a trace is a function of the memory-access *word
sequence* alone, which makes it computable offline with array passes:

* **recency** — every access (store ``put``, load hit ``touch``, load
  miss ``put``) promotes its word to most-recent, so table occupancy is
  the classic LRU stack: an access *hits* a table of capacity ``C`` iff
  the number of distinct words accessed since the previous access to the
  same word (the *stack distance*) is ``< C``.  Stack distances are
  computed once per trace — :func:`stack_distances`, a fully vectorized
  divide-and-conquer over sorted per-block index arrays — and shared by
  every table size in a sweep.
* **content** — the entry a hitting load observes is the most recent
  *recording* access to its word: any store, or any missing load (which
  records itself).  With accesses grouped per word (sorted index
  arrays), that is a segment-wise forward-fill.

The same stack-distance kernel doubles as the Figure 2 per-sink-load MRU
recency position (an ``_MRUList`` of capacity *n* is an LRU stack of
source PCs), and locality histograms reduce to ``bincount`` + ``cumsum``.

Everything here is validated against the per-instruction reference
implementations by ``tests/test_columnar.py`` (randomized differential
tests) and the suite-wide parity test.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: dependence kind codes in the kernel output arrays
KIND_NONE = 0
KIND_RAW = 1
KIND_RAR = 2

#: stack-distance sentinel for first occurrences (larger than any table)
NO_PREV = np.int64(2 ** 62)


def group_links(keys: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Previous/next occurrence links for each position of a key sequence.

    Returns ``(prev, nxt, order, same)`` where ``prev[i]`` is the index
    of the previous occurrence of ``keys[i]`` (``-1`` if none),
    ``nxt[i]`` the next occurrence (``len(keys)`` if none), ``order`` a
    stable sort of positions by key (occurrences of one key are
    contiguous and in trace order — the "sorted per-word index arrays"),
    and ``same[t]`` marks sorted positions that continue the previous
    position's key group.
    """
    m = int(keys.size)
    prev = np.full(m, -1, np.int64)
    nxt = np.full(m, m, np.int64)
    order = np.argsort(keys, kind="stable")
    same = np.zeros(m, dtype=bool)
    if m > 1:
        ordered = keys[order]
        same[1:] = ordered[1:] == ordered[:-1]
        older = order[:-1][same[1:]]
        newer = order[1:][same[1:]]
        prev[newer] = older
        nxt[older] = newer
    return prev, nxt, order, same


def stack_distances(prev: np.ndarray, nxt: np.ndarray) -> np.ndarray:
    """LRU stack distance of every access: distinct keys strictly between
    ``prev[i]`` and ``i`` (first occurrences get the :data:`NO_PREV`
    sentinel, which compares ``>=`` any finite table size).

    The distinct count decomposes as ``(i - prev[i] - 1) - C[i]`` where
    ``C[i]`` counts repeat occurrences inside the window — pairs
    ``k → nxt[k]`` nested strictly inside ``(prev[i], i)``.  Because
    ``nxt[k] > k`` always, the nesting condition is just ``k > prev[i]``
    and ``nxt[k] < i``: a 2-D dominance count, solved here by a
    vectorized divide-and-conquer on the position axis.  At block size
    ``h``, every query attached (at ``prev[i]``) to a *left* half-block
    gains the count of positions in its right sibling whose ``nxt``
    falls below ``i`` — one ``np.sort`` + one ``np.searchsorted`` over
    all blocks at once per level, O(m log² m) total with no Python-level
    per-access loop.
    """
    m = int(prev.size)
    out = np.full(m, NO_PREV, np.int64)
    queries = np.nonzero(prev >= 0)[0]
    if queries.size == 0:
        return out
    qi = queries.astype(np.int64)       # query position i
    qp = prev[queries]                  # attach position prev[i]

    size = 1
    while size < m:
        size <<= 1
    padded = np.full(size, m, np.int64)
    padded[:m] = nxt

    nested = np.zeros(qi.size, np.int64)
    offset = np.int64(size + 2)         # > any nxt value and any query i
    h = 1
    while h < size:
        block = qp // h
        left = (block % 2) == 0
        if left.any():
            sibling = block[left] + 1
            blocks = np.sort(padded.reshape(-1, h), axis=1)
            base = (np.arange(size // h, dtype=np.int64) * offset)[:, None]
            flat = (blocks + base).ravel()
            pos = np.searchsorted(flat, sibling * offset + qi[left],
                                  side="left")
            nested[left] += pos - sibling * h
        h <<= 1

    out[queries] = (qi - qp - 1) - nested
    return out


def _is_default_config(config) -> bool:
    """Whether a DDTConfig is coverable by the vectorized kernels."""
    return (not config.split and config.record_loads
            and not config.record_all_loads and config.touch_on_hit
            and not config.ways)


def ddt_dependences(word: np.ndarray, is_store: np.ndarray,
                    sizes: Sequence[Optional[int]]
                    ) -> Dict[Optional[int], Tuple[np.ndarray, np.ndarray]]:
    """Dependences every access detects, for each DDT size, in one pass.

    ``word``/``is_store`` describe the memory-access subsequence of a
    trace in program order.  Returns, per size (``None`` = infinite), a
    ``(kind, source)`` pair of arrays over accesses: ``kind`` is
    :data:`KIND_RAW`/:data:`KIND_RAR` for loads that detect a
    dependence (else :data:`KIND_NONE`), ``source`` the access index of
    the detected entry (``-1`` when none).  Stack distances are computed
    once and shared across all sizes — the Figure 5 sweep costs one
    distance pass plus a vectorized classification per size.
    """
    m = int(word.size)
    prev, nxt, order, same = group_links(word)
    finite = [s for s in sizes if s is not None]
    distance = stack_distances(prev, nxt) if finite else None

    positions = np.arange(m, dtype=np.int64)
    is_load = ~is_store
    results: Dict[Optional[int], Tuple[np.ndarray, np.ndarray]] = {}
    for table_size in sizes:
        if table_size is None:
            hit = prev >= 0
        else:
            hit = distance < table_size      # NO_PREV sentinel never hits
        # recording accesses: stores, and loads that miss
        recorder = is_store | ~hit
        recorder_sorted = recorder[order]
        slot = np.where(recorder_sorted, positions, -1)
        last_recorder = np.maximum.accumulate(slot)
        # entry observed by an access = last recorder strictly before it
        # in its word group; group starts always miss, hence record, so
        # the fill never leaks across group boundaries.
        entry_sorted = np.full(m, -1, np.int64)
        entry_sorted[1:] = last_recorder[:-1]
        entry_sorted[~same] = -1
        entry = np.empty(m, np.int64)
        entry[order] = np.where(entry_sorted >= 0,
                                order[np.clip(entry_sorted, 0, None)], -1)

        source = np.where(hit & is_load, entry, -1)
        kind = np.zeros(m, np.int8)
        detected = source >= 0
        kind[detected] = np.where(is_store[source[detected]],
                                  KIND_RAW, KIND_RAR)
        results[table_size] = (kind, source)
    return results


def mru_hits_within(sink: np.ndarray, source: np.ndarray,
                    max_n: int) -> np.ndarray:
    """Figure 2 recency histogram over a RAR dependence stream.

    For each dependence (in trace order), the recency position of its
    source PC in the sink load's bounded MRU list of unique sources — an
    LRU stack per sink, so: compact per-sink subsequences into
    contiguous segments (stable sort by sink), link occurrences of each
    (sink, source) pair, and reuse :func:`stack_distances`; positions
    ``< max_n`` are hits.  Returns ``hits_within`` where
    ``hits_within[k]`` counts dependences found at position ``<= k``.
    """
    if sink.size == 0:
        return np.zeros(max_n, np.int64)
    grouped = np.argsort(sink, kind="stable")
    gsink = sink[grouped].astype(np.int64)
    gsource = source[grouped].astype(np.int64)
    if (gsink >= 1 << 31).any() or (gsource >= 1 << 31).any():
        raise ValueError("PC beyond 31 bits; cannot pack (sink, source)")
    pair = (gsink << np.int64(32)) | gsource
    prev, nxt, _, _ = group_links(pair)
    distance = stack_distances(prev, nxt)
    found = distance[distance < max_n]
    histogram = np.bincount(found.astype(np.int64), minlength=max_n)
    return np.cumsum(histogram[:max_n])
