"""Lockstep differential checking between simulation backends.

The Ramulator 2.0 re-evaluation (PAPERS.md) is the cautionary tale this
module answers: a fast model is *validated against* the reference, never
asserted equivalent.  The checker reuses the ``repro.chaos`` golden-diff
machinery — :func:`repro.chaos.oracle._compare` field-level record
diffing and its :class:`~repro.chaos.oracle.Divergence` report type — and
extends it stage by stage:

* **trace** — the fast backend's record stream is zipped against the
  reference interpreter's, record by record (the chaos comparator, plus
  the fields it deliberately ignores for commit-stream purposes:
  ``index``, ``rd``, ``srcs``).
* **dependence** — DDT visibility profiles (Figure 5 sizes) and the full
  detected-dependence pair sets (infinite and 128-entry tables) must
  match exactly.
* **locality** — Figure 2 recency histograms and Figure 7
  address/value breakdowns must match count for count.

:func:`verify_parity` runs every stage over a workload suite and returns
one :class:`ParityReport` per workload; the suite-wide parity test
asserts all reports are clean on all 18 kernels.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.oracle import Divergence, _compare
from repro.columnar.backend import (
    DEFAULT_BACKEND,
    ReferenceBackend,
    SimBackend,
    get_backend,
)
from repro.dependence.ddt import DDTConfig
from repro.workloads.base import Workload

#: the address windows and DDT sizes the parity suite exercises (the
#: Figure 2 / Figure 5 settings)
PARITY_WINDOWS: Dict[str, Optional[int]] = {"infinite": None, "4K": 4096}
PARITY_DDT_SIZES: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048)
PARITY_MAX_N = 4


@dataclass
class StageDivergence:
    """One backend disagreement, attributed to a pipeline stage."""

    stage: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.stage}] {self.detail}"


@dataclass
class ParityReport:
    """All divergences between two backends on one workload."""

    workload: str
    scale: float
    golden: str
    fast: str
    divergences: List[StageDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def __str__(self) -> str:
        head = (f"{self.workload} @ scale {self.scale}: "
                f"{self.fast} vs {self.golden}: ")
        if self.ok:
            return head + "parity"
        return head + "; ".join(str(d) for d in self.divergences)


def diff_trace(workload: Workload, scale: float, fast: SimBackend,
               golden: Optional[SimBackend] = None,
               max_instructions: Optional[int] = None
               ) -> Optional[Divergence]:
    """First record-level divergence between the two backends' streams.

    Uses the chaos oracle's field comparator, then checks the fields it
    skips (it diffs committed *behaviour*; the columnar round-trip must
    also preserve record identity bit for bit).
    """
    golden = golden if golden is not None else ReferenceBackend()
    for expected, actual in itertools.zip_longest(
            golden.stream(workload, scale, max_instructions),
            fast.stream(workload, scale, max_instructions)):
        divergence = _compare(expected, actual)
        if divergence is not None:
            return divergence
        for name in ("index", "rd", "srcs", "value", "taken", "target_pc",
                     "size"):
            want, got = getattr(expected, name), getattr(actual, name)
            if got != want or type(got) is not type(want):
                return Divergence(expected.index, name, want, got,
                                  expected.pc)
    return None


def diff_workload(workload: Workload, scale: float, fast: SimBackend,
                  golden: Optional[SimBackend] = None,
                  max_instructions: Optional[int] = None,
                  check_trace: bool = True) -> ParityReport:
    """Run every pipeline stage on both backends and diff the results."""
    golden = golden if golden is not None else ReferenceBackend()
    report = ParityReport(workload.abbrev, scale, golden.name, fast.name)

    def note(stage: str, detail: str) -> None:
        report.divergences.append(StageDivergence(stage, detail))

    # decode → execute
    if check_trace:
        divergence = diff_trace(workload, scale, fast, golden,
                                max_instructions)
        if divergence is not None:
            note("trace", str(divergence))
    want = golden.trace_summary(workload, scale, max_instructions)
    got = fast.trace_summary(workload, scale, max_instructions)
    if want != got:
        note("trace", f"summary: expected {want}, got {got}")

    # dependence: Figure 5 profiles ...
    want_profiles = golden.ddt_profiles(workload, scale, PARITY_DDT_SIZES,
                                        max_instructions)
    got_profiles = fast.ddt_profiles(workload, scale, PARITY_DDT_SIZES,
                                     max_instructions)
    for wp, gp in zip(want_profiles, got_profiles):
        if (wp.config, wp.loads, wp.raw_loads, wp.rar_loads) != \
                (gp.config, gp.loads, gp.raw_loads, gp.rar_loads):
            note("dependence", f"{wp.config.describe()}: expected "
                 f"{(wp.loads, wp.raw_loads, wp.rar_loads)}, got "
                 f"{(gp.loads, gp.raw_loads, gp.rar_loads)}")

    # ... and exact pair sets, infinite plus the paper's 128-entry table
    for config in (DDTConfig(size=None), DDTConfig(size=128)):
        want_pairs = golden.dependence_pairs(workload, scale, config,
                                             max_instructions)
        got_pairs = fast.dependence_pairs(workload, scale, config,
                                          max_instructions)
        if want_pairs != got_pairs:
            missing = want_pairs - got_pairs
            extra = got_pairs - want_pairs
            note("dependence",
                 f"{config.describe()} pairs: {len(missing)} missing, "
                 f"{len(extra)} extra (e.g. "
                 f"{next(iter(missing or extra))})")

    # locality: Figure 2 ...
    want_loc = golden.rar_locality(workload, scale, PARITY_MAX_N,
                                   PARITY_WINDOWS, max_instructions)
    got_loc = fast.rar_locality(workload, scale, PARITY_MAX_N,
                                PARITY_WINDOWS, max_instructions)
    for label in PARITY_WINDOWS:
        if want_loc[label] != got_loc[label]:
            note("locality", f"window {label}: expected "
                 f"{want_loc[label]}, got {got_loc[label]}")

    # ... and Figure 7
    want_av = golden.address_value_locality(
        workload, scale, max_instructions=max_instructions)
    got_av = fast.address_value_locality(
        workload, scale, max_instructions=max_instructions)
    for part in ("address", "value"):
        if getattr(want_av, part) != getattr(got_av, part):
            note("locality", f"{part}: expected {getattr(want_av, part)}, "
                 f"got {getattr(got_av, part)}")

    return report


def verify_parity(workloads: Optional[Sequence[str]] = None,
                  scale: float = 0.25,
                  fast: str = "numpy",
                  golden: str = DEFAULT_BACKEND,
                  max_instructions: Optional[int] = None,
                  check_trace: bool = True) -> List[ParityReport]:
    """Differentially validate a backend over a workload suite.

    Returns one report per workload; raises nothing — callers decide
    whether a dirty report is fatal (the parity test asserts all clean).
    """
    from repro.experiments.runner import select_workloads

    fast_backend = get_backend(fast)
    golden_backend = get_backend(golden)
    return [
        diff_workload(workload, scale, fast_backend, golden_backend,
                      max_instructions, check_trace=check_trace)
        for workload in select_workloads(workloads)
    ]
