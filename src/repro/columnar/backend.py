"""The ``SimBackend`` interface and the ``reference`` implementation.

A backend answers the questions the paper's measurement experiments ask
of a workload trace — summary counts, DDT dependence profiles, locality
histograms — behind one interface, so Figure 2/5/7 code is written once
and the execution strategy (per-instruction reference semantics vs the
vectorized columnar pipeline) is a config choice:

* :class:`ReferenceBackend` drives the existing streaming classes
  (:class:`~repro.dependence.detector.DependenceProfiler`,
  :class:`~repro.dependence.locality.RARLocalityAnalysis`, …) one
  :class:`~repro.trace.records.DynInst` at a time — unchanged semantics,
  and the golden side of every differential check.
* ``NumPyBackend`` (:mod:`repro.columnar.numpy_backend`, loaded lazily
  so the package imports without NumPy) materializes the trace into
  columnar record batches and answers from vectorized kernels.

Backends are looked up by name through :func:`get_backend`; the names
are what :class:`repro.core.CloakingConfig` and harness JobSpec params
carry, so result-store fingerprints distinguish backends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple,
)

from repro.dependence.ddt import DDT, DDTConfig
from repro.dependence.detector import DependenceProfile, DependenceProfiler
from repro.dependence.locality import (
    AddressValueLocalityAnalysis,
    RARLocalityAnalysis,
)
from repro.trace.records import DynInst
from repro.workloads.base import Workload

#: the backend experiments use when none is requested
DEFAULT_BACKEND = "reference"

#: every backend name, available or not (validation + CLI choices)
BACKEND_NAMES = ("reference", "numpy")

#: a detected dependence as a comparable tuple: (kind, source, sink, word)
DependencePair = Tuple[str, int, int, int]


class BackendUnavailableError(RuntimeError):
    """A requested backend cannot run in this environment."""


@dataclass(frozen=True)
class TraceSummary:
    """The execute-stage output: committed instruction counts."""

    instructions: int
    loads: int
    stores: int


@dataclass
class RARLocalityResult:
    """One Figure 2 measurement (one workload, one address window)."""

    window: str
    sink_loads: int
    hits_within: List[int]  # hits_within[k] = hits at recency position <= k

    def locality(self, n: int) -> float:
        """memory-dependence-locality(n) over all executed sink loads."""
        if not 1 <= n <= len(self.hits_within):
            raise ValueError(f"n must be in [1, {len(self.hits_within)}]")
        if not self.sink_loads:
            return 0.0
        return self.hits_within[n - 1] / self.sink_loads


class SimBackend(abc.ABC):
    """Answers the measurement experiments ask of a workload trace.

    Every query takes ``(workload, scale)`` rather than a trace iterator:
    backends own trace acquisition, which is what lets the columnar
    implementation materialize once and amortize across queries while the
    reference implementation streams.  All results are plain Python
    numbers/objects so renders are byte-identical across backends.
    """

    name: str = "abstract"

    # -- decode → execute ------------------------------------------------

    @abc.abstractmethod
    def stream(self, workload: Workload, scale: float = 1.0,
               max_instructions: Optional[int] = None) -> Iterator[DynInst]:
        """The committed record stream (per-instruction view)."""

    @abc.abstractmethod
    def trace_summary(self, workload: Workload, scale: float = 1.0,
                      max_instructions: Optional[int] = None) -> TraceSummary:
        """Commit counts for the trace (the trace-stage benchmark query)."""

    # -- dependence ------------------------------------------------------

    @abc.abstractmethod
    def ddt_profiles(self, workload: Workload, scale: float,
                     sizes: Sequence[Optional[int]],
                     max_instructions: Optional[int] = None
                     ) -> List[DependenceProfile]:
        """Figure 5: RAW/RAR visibility fractions, one profile per size."""

    @abc.abstractmethod
    def dependence_pairs(self, workload: Workload, scale: float,
                         config: Optional[DDTConfig] = None,
                         max_instructions: Optional[int] = None
                         ) -> Set[DependencePair]:
        """Every dependence a DDT detects over the trace, as a set of
        ``(kind, source_pc, sink_pc, word_addr)`` tuples — the
        differential checker's dependence-stage fingerprint."""

    # -- locality --------------------------------------------------------

    @abc.abstractmethod
    def rar_locality(self, workload: Workload, scale: float, max_n: int,
                     windows: Dict[str, Optional[int]],
                     max_instructions: Optional[int] = None
                     ) -> Dict[str, RARLocalityResult]:
        """Figure 2: RAR dependence locality per address window."""

    # -- locality + predict ----------------------------------------------

    @abc.abstractmethod
    def address_value_locality(self, workload: Workload, scale: float,
                               ddt_config: Optional[DDTConfig] = None,
                               tee: Optional[Callable[[DynInst], None]] = None,
                               max_instructions: Optional[int] = None
                               ) -> AddressValueLocalityAnalysis:
        """Figure 7: address/value locality breakdown.

        ``tee``, when given, additionally receives every committed record
        in program order — how Figure 7 feeds its cloaking engine (the
        predict stage) from the same trace pass without a second
        interpretation.
        """


class ReferenceBackend(SimBackend):
    """The existing per-instruction code, unchanged semantics."""

    name = "reference"

    def stream(self, workload: Workload, scale: float = 1.0,
               max_instructions: Optional[int] = None) -> Iterator[DynInst]:
        return workload.trace(scale=scale, max_instructions=max_instructions)

    def trace_summary(self, workload: Workload, scale: float = 1.0,
                      max_instructions: Optional[int] = None) -> TraceSummary:
        instructions = loads = stores = 0
        for inst in self.stream(workload, scale, max_instructions):
            instructions += 1
            if inst.is_load:
                loads += 1
            elif inst.is_store:
                stores += 1
        return TraceSummary(instructions, loads, stores)

    def ddt_profiles(self, workload: Workload, scale: float,
                     sizes: Sequence[Optional[int]],
                     max_instructions: Optional[int] = None
                     ) -> List[DependenceProfile]:
        profiler = DependenceProfiler([DDTConfig(size=s) for s in sizes])
        return profiler.run(self.stream(workload, scale, max_instructions))

    def dependence_pairs(self, workload: Workload, scale: float,
                         config: Optional[DDTConfig] = None,
                         max_instructions: Optional[int] = None
                         ) -> Set[DependencePair]:
        ddt = DDT(config if config is not None else DDTConfig())
        pairs: Set[DependencePair] = set()
        for inst in self.stream(workload, scale, max_instructions):
            if inst.is_load:
                dep = ddt.observe_load(inst.pc, inst.word_addr)
                if dep is not None:
                    pairs.add((dep.kind.value, dep.source_pc, dep.sink_pc,
                               dep.word_addr))
            elif inst.is_store:
                ddt.observe_store(inst.pc, inst.word_addr)
        return pairs

    def rar_locality(self, workload: Workload, scale: float, max_n: int,
                     windows: Dict[str, Optional[int]],
                     max_instructions: Optional[int] = None
                     ) -> Dict[str, RARLocalityResult]:
        analyses = {
            label: RARLocalityAnalysis(max_n=max_n, window=window)
            for label, window in windows.items()
        }
        for inst in self.stream(workload, scale, max_instructions):
            for analysis in analyses.values():
                analysis.observe(inst)
        return {
            label: RARLocalityResult(
                window=label,
                sink_loads=analysis.sink_loads,
                hits_within=list(analysis.hits_within),
            )
            for label, analysis in analyses.items()
        }

    def address_value_locality(self, workload: Workload, scale: float,
                               ddt_config: Optional[DDTConfig] = None,
                               tee: Optional[Callable[[DynInst], None]] = None,
                               max_instructions: Optional[int] = None
                               ) -> AddressValueLocalityAnalysis:
        analysis = AddressValueLocalityAnalysis(
            ddt_config if ddt_config is not None else DDTConfig(size=128))
        for inst in self.stream(workload, scale, max_instructions):
            analysis.observe(inst)
            if tee is not None:
                tee(inst)
        return analysis


def backend_names() -> Tuple[str, ...]:
    """Every recognized backend name (some may be unavailable)."""
    return BACKEND_NAMES


def backend_available(name: str) -> bool:
    """Whether :func:`get_backend` would succeed for ``name``."""
    try:
        get_backend(name)
    except (BackendUnavailableError, ValueError):
        return False
    return True


def get_backend(name: str = DEFAULT_BACKEND) -> SimBackend:
    """Look up a backend by name.

    Raises :class:`ValueError` for an unknown name and
    :class:`BackendUnavailableError` when the ``numpy`` backend is
    requested but NumPy is not importable — the message directs users to
    the always-available ``reference`` backend.
    """
    if name == "reference":
        return ReferenceBackend()
    if name == "numpy":
        try:
            from repro.columnar.numpy_backend import NumPyBackend
        except ImportError as exc:
            raise BackendUnavailableError(
                "the 'numpy' columnar backend requires the numpy package "
                f"(import failed: {exc}); install numpy>=1.22 or select "
                "the 'reference' backend, which has identical semantics"
            ) from exc
        return NumPyBackend()
    raise ValueError(
        f"unknown backend {name!r}; valid backends: "
        + ", ".join(BACKEND_NAMES))
