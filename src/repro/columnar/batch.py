"""Columnar record batches of the committed dynamic instruction stream.

A :class:`TraceTable` stores one batch (or a whole trace) of
:class:`~repro.trace.records.DynInst` records column-wise: one NumPy
array per field, with ``-1`` sentinels for the fields that are ``None``
on a given record (``rd``, ``addr``, ``taken``, ``target_pc``).  Values
and source-register tuples keep exact Python semantics in ``object``
columns — value locality must compare ``2 == 2.0`` and arbitrary-width
integers exactly as the reference per-instruction code does.

The decode→execute stage of the columnar pipeline *materializes* a trace
into a table once (:func:`materialized_trace`, behind a small cache);
every downstream stage then consumes array views instead of re-running
the interpreter.  ``TraceTable.to_dyninsts`` reconstructs the exact
record stream, which is what the lockstep differential checker
(:mod:`repro.columnar.diff`) verifies and what the non-vectorized
predict stage replays.

This module requires NumPy; import it through
:func:`repro.columnar.backend.get_backend`, which reports a clear error
when NumPy is unavailable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instructions import OpClass
from repro.trace.records import DynInst

#: dense opclass codes (``OpClass`` is an IntEnum, so values are stable)
_LOAD_CODE = int(OpClass.LOAD)
_STORE_CODE = int(OpClass.STORE)
_OPCLASS_BY_CODE: Dict[int, OpClass] = {int(op): op for op in OpClass}

#: default number of records per batch when materializing
DEFAULT_BATCH_SIZE = 65536


class TraceTable:
    """One record batch (or a concatenation of batches) in columnar form.

    Columns (all length ``n``):

    ========== ========== ===============================================
    column     dtype      meaning (sentinel for ``None``)
    ========== ========== ===============================================
    ``index``  int64      dynamic sequence number (commit order)
    ``pc``     int64      instruction address
    ``op``     uint8      :class:`OpClass` value
    ``rd``     int16      destination register (``-1``)
    ``addr``   int64      effective byte address (``-1``)
    ``size``   uint8      access size in bytes
    ``taken``  int8       branch outcome: 1/0 (``-1``)
    ``target`` int64      branch/jump target pc (``-1``)
    ``value``  object     loaded/stored value, exact Python object
    ``srcs``   object     source-register tuple
    ========== ========== ===============================================
    """

    __slots__ = ("index", "pc", "op", "rd", "addr", "size", "taken",
                 "target", "value", "srcs")

    def __init__(self, index, pc, op, rd, addr, size, taken, target,
                 value, srcs) -> None:
        self.index = index
        self.pc = pc
        self.op = op
        self.rd = rd
        self.addr = addr
        self.size = size
        self.taken = taken
        self.target = target
        self.value = value
        self.srcs = srcs

    # -- construction ----------------------------------------------------

    @classmethod
    def empty(cls) -> "TraceTable":
        return cls.from_dyninsts(())

    @classmethod
    def from_dyninsts(cls, records: Iterable[DynInst]) -> "TraceTable":
        """Materialize an iterable of records into one batch."""
        index: List[int] = []
        pc: List[int] = []
        op: List[int] = []
        rd: List[int] = []
        addr: List[int] = []
        size: List[int] = []
        taken: List[int] = []
        target: List[int] = []
        value: List[object] = []
        srcs: List[object] = []
        for inst in records:
            index.append(inst.index)
            pc.append(inst.pc)
            op.append(int(inst.opclass))
            rd.append(-1 if inst.rd is None else inst.rd)
            addr.append(-1 if inst.addr is None else inst.addr)
            size.append(inst.size)
            taken.append(-1 if inst.taken is None else int(inst.taken))
            target.append(-1 if inst.target_pc is None else inst.target_pc)
            value.append(inst.value)
            srcs.append(inst.srcs)
        n = len(index)
        return cls(
            index=np.array(index, dtype=np.int64),
            pc=np.array(pc, dtype=np.int64),
            op=np.array(op, dtype=np.uint8),
            rd=np.array(rd, dtype=np.int16),
            addr=np.array(addr, dtype=np.int64),
            size=np.array(size, dtype=np.uint8),
            taken=np.array(taken, dtype=np.int8),
            target=np.array(target, dtype=np.int64),
            value=np.array(value + [None], dtype=object)[:n],
            srcs=np.array(srcs + [None], dtype=object)[:n],
        )

    @classmethod
    def concat(cls, batches: Sequence["TraceTable"]) -> "TraceTable":
        """Concatenate record batches (empty batches are no-ops)."""
        batches = list(batches)
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(*(np.concatenate([getattr(b, col) for b in batches])
                     for col in cls.__slots__))

    # -- shape -----------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.pc.size)

    def __len__(self) -> int:
        return self.n

    def slice(self, start: int, stop: int) -> "TraceTable":
        return TraceTable(*(getattr(self, col)[start:stop]
                            for col in self.__slots__))

    def batches(self, batch_size: int) -> Iterator["TraceTable"]:
        """Re-chunk this table into batches of at most ``batch_size``."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, self.n, batch_size):
            yield self.slice(start, start + batch_size)

    # -- derived columns -------------------------------------------------

    @property
    def is_load(self) -> np.ndarray:
        return self.op == _LOAD_CODE

    @property
    def is_store(self) -> np.ndarray:
        return self.op == _STORE_CODE

    @property
    def is_mem(self) -> np.ndarray:
        return self.is_load | self.is_store

    def word_addr(self) -> np.ndarray:
        """Word-granularity addresses (meaningful at memory positions only)."""
        return self.addr >> 2

    # -- counts (the trace-stage summary) --------------------------------

    def counts(self) -> Tuple[int, int, int]:
        """``(instructions, loads, stores)``."""
        return (self.n, int(np.count_nonzero(self.is_load)),
                int(np.count_nonzero(self.is_store)))

    # -- interop ---------------------------------------------------------

    def to_dyninsts(self) -> Iterator[DynInst]:
        """Reconstruct the exact per-instruction record stream.

        ``tolist()`` converts every numeric column to plain Python ints up
        front, so reconstructed records compare (and hash, and format)
        identically to interpreter-produced ones.
        """
        rows = zip(self.index.tolist(), self.pc.tolist(), self.op.tolist(),
                   self.rd.tolist(), self.addr.tolist(), self.size.tolist(),
                   self.taken.tolist(), self.target.tolist(),
                   self.value, self.srcs)
        for index, pc, op, rd, addr, size, taken, target, value, srcs in rows:
            yield DynInst(
                index, pc, _OPCLASS_BY_CODE[op],
                rd=None if rd < 0 else rd,
                srcs=srcs,
                addr=None if addr < 0 else addr,
                value=value,
                taken=None if taken < 0 else bool(taken),
                target_pc=None if target < 0 else target,
                size=size,
            )


def iter_record_batches(records: Iterable[DynInst],
                        batch_size: int = DEFAULT_BATCH_SIZE
                        ) -> Iterator[TraceTable]:
    """Chunk a record stream into :class:`TraceTable` batches."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    chunk: List[DynInst] = []
    for inst in records:
        chunk.append(inst)
        if len(chunk) >= batch_size:
            yield TraceTable.from_dyninsts(chunk)
            chunk = []
    if chunk:
        yield TraceTable.from_dyninsts(chunk)


# -- the materialization cache (decode → execute stage) ------------------

#: (workload abbrev, rounded scale, cap) -> TraceTable, insertion-ordered
# staticcheck: ignore[FS101] memo of deterministic data — a fork child
# inheriting (or diverging from) this cache recomputes identical tables
_TRACE_CACHE: "Dict[Tuple[str, float, Optional[int]], TraceTable]" = {}
_TRACE_CACHE_CAPACITY = 4


def materialized_trace(workload, scale: float = 1.0,
                       max_instructions: Optional[int] = None,
                       batch_size: int = DEFAULT_BATCH_SIZE) -> TraceTable:
    """The whole committed trace of a workload as one columnar table.

    Materialization runs the reference interpreter once and batches its
    record stream; repeat requests for the same ``(workload, scale,
    cap)`` are served from a small in-process cache — this is how the
    columnar pipeline amortizes interpretation across the many stages
    (and figures) that consume the same trace.  The cache key rounds the
    scale exactly like :meth:`repro.workloads.base.Workload.program`.
    """
    key = (workload.abbrev, round(float(scale), 9), max_instructions)
    table = _TRACE_CACHE.get(key)
    if table is None:
        stream = workload.trace(scale=scale, max_instructions=max_instructions)
        table = TraceTable.concat(list(iter_record_batches(stream, batch_size)))
        while len(_TRACE_CACHE) >= _TRACE_CACHE_CAPACITY:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = table
    return table


def clear_trace_cache() -> None:
    """Drop every cached materialized trace (tests and memory pressure)."""
    _TRACE_CACHE.clear()
