"""The ``numpy`` columnar backend: vectorized stages over record batches.

Stage mapping (see ``docs/columnar.md``):

* **decode → execute** — :func:`repro.columnar.batch.materialized_trace`
  runs the reference interpreter once per ``(workload, scale, cap)`` and
  caches the columnar :class:`~repro.columnar.batch.TraceTable`; every
  query below is an array pass over that table.
* **dependence** — :func:`repro.columnar.kernels.ddt_dependences` over
  the memory-access subsequence (sorted per-word index arrays + the
  shared LRU stack-distance kernel).
* **locality** — :func:`repro.columnar.kernels.mru_hits_within` for the
  Figure 2 recency histogram; per-PC previous-occurrence links for the
  Figure 7 address/value comparisons (values compared in ``object``
  columns for exact Python ``==`` semantics — interpreter adds do not
  wrap, so values can exceed float64's exact-integer range).
* **predict** — not vectorized: the cloaking engine is replayed
  per-instruction from the materialized table (``tee``), so predictor
  semantics stay the reference's by construction.

DDT configurations outside the vectorizable shape (split tables,
``record_loads=False``, ``record_all_loads=True``, ``touch_on_hit=False``,
set-associative ways) fall back to the per-instruction DDT replayed from
the materialized table — correct for every configuration, amortized
interpretation, no silent divergence.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

import numpy as np

from repro.columnar.backend import (
    DependencePair,
    RARLocalityResult,
    ReferenceBackend,
    SimBackend,
    TraceSummary,
)
from repro.columnar.batch import TraceTable, materialized_trace
from repro.columnar.kernels import (
    KIND_RAR,
    KIND_RAW,
    _is_default_config,
    ddt_dependences,
    group_links,
    mru_hits_within,
)
from repro.dependence.ddt import DDT, DDTConfig
from repro.dependence.detector import DependenceProfile
from repro.dependence.locality import (
    AddressValueLocalityAnalysis,
    LocalityBreakdown,
)
from repro.trace.records import DynInst
from repro.workloads.base import Workload

_KIND_NAME = {KIND_RAW: "RAW", KIND_RAR: "RAR"}

#: vectorized predicate for the reference's ``prev_value is not None`` guard
_IS_NOT_NONE = np.frompyfunc(lambda v: v is not None, 1, 1)


class NumPyBackend(SimBackend):
    """Vectorized implementation of the backend interface."""

    name = "numpy"

    # -- decode → execute ------------------------------------------------

    def table(self, workload: Workload, scale: float = 1.0,
              max_instructions: Optional[int] = None) -> TraceTable:
        """The materialized (cached) columnar trace."""
        return materialized_trace(workload, scale, max_instructions)

    def stream(self, workload: Workload, scale: float = 1.0,
               max_instructions: Optional[int] = None) -> Iterator[DynInst]:
        return self.table(workload, scale, max_instructions).to_dyninsts()

    def trace_summary(self, workload: Workload, scale: float = 1.0,
                      max_instructions: Optional[int] = None) -> TraceSummary:
        return TraceSummary(
            *self.table(workload, scale, max_instructions).counts())

    # -- dependence ------------------------------------------------------

    def ddt_profiles(self, workload: Workload, scale: float,
                     sizes: Sequence[Optional[int]],
                     max_instructions: Optional[int] = None
                     ) -> List[DependenceProfile]:
        table = self.table(workload, scale, max_instructions)
        mem = np.nonzero(table.is_mem)[0]
        word = table.word_addr()[mem]
        is_store = table.is_store[mem]
        loads = int(np.count_nonzero(~is_store))
        by_size = ddt_dependences(word, is_store, list(sizes))
        profiles = []
        for size in sizes:
            kind, _ = by_size[size]
            profiles.append(DependenceProfile(
                config=DDTConfig(size=size),
                loads=loads,
                raw_loads=int(np.count_nonzero(kind == KIND_RAW)),
                rar_loads=int(np.count_nonzero(kind == KIND_RAR)),
            ))
        return profiles

    def dependence_pairs(self, workload: Workload, scale: float,
                         config: Optional[DDTConfig] = None,
                         max_instructions: Optional[int] = None
                         ) -> Set[DependencePair]:
        config = config if config is not None else DDTConfig()
        table = self.table(workload, scale, max_instructions)
        if not _is_default_config(config):
            return self._pairs_fallback(table, config)
        mem = np.nonzero(table.is_mem)[0]
        word = table.word_addr()[mem]
        is_store = table.is_store[mem]
        kind, source = ddt_dependences(word, is_store, [config.size])[config.size]
        detected = np.nonzero(source >= 0)[0]
        sink_pc = table.pc[mem[detected]]
        source_pc = table.pc[mem[source[detected]]]
        kinds = kind[detected]
        words = word[detected]
        return {
            (_KIND_NAME[k], int(src), int(snk), int(w))
            for k, src, snk, w in zip(
                kinds.tolist(), source_pc.tolist(), sink_pc.tolist(),
                words.tolist())
        }

    @staticmethod
    def _pairs_fallback(table: TraceTable,
                        config: DDTConfig) -> Set[DependencePair]:
        ddt = DDT(config)
        pairs: Set[DependencePair] = set()
        for inst in table.to_dyninsts():
            if inst.is_load:
                dep = ddt.observe_load(inst.pc, inst.word_addr)
                if dep is not None:
                    pairs.add((dep.kind.value, dep.source_pc, dep.sink_pc,
                               dep.word_addr))
            elif inst.is_store:
                ddt.observe_store(inst.pc, inst.word_addr)
        return pairs

    # -- locality --------------------------------------------------------

    def rar_locality(self, workload: Workload, scale: float, max_n: int,
                     windows: Dict[str, Optional[int]],
                     max_instructions: Optional[int] = None
                     ) -> Dict[str, RARLocalityResult]:
        if max_n < 1:
            raise ValueError("max_n must be >= 1")
        table = self.table(workload, scale, max_instructions)
        mem = np.nonzero(table.is_mem)[0]
        word = table.word_addr()[mem]
        is_store = table.is_store[mem]
        pc = table.pc[mem]
        by_size = ddt_dependences(word, is_store, list(windows.values()))
        results: Dict[str, RARLocalityResult] = {}
        for label, window in windows.items():
            kind, source = by_size[window]
            rar = np.nonzero(kind == KIND_RAR)[0]
            hits = mru_hits_within(pc[rar], pc[source[rar]], max_n)
            results[label] = RARLocalityResult(
                window=label,
                sink_loads=int(rar.size),
                hits_within=[int(h) for h in hits],
            )
        return results

    # -- locality + predict ----------------------------------------------

    def address_value_locality(self, workload: Workload, scale: float,
                               ddt_config: Optional[DDTConfig] = None,
                               tee: Optional[Callable[[DynInst], None]] = None,
                               max_instructions: Optional[int] = None
                               ) -> AddressValueLocalityAnalysis:
        config = ddt_config if ddt_config is not None else DDTConfig(size=128)
        table = self.table(workload, scale, max_instructions)
        if tee is not None:
            # predict stage: replay per-instruction consumers verbatim
            for inst in table.to_dyninsts():
                tee(inst)
        if not _is_default_config(config):
            return AddressValueLocalityAnalysis(config).run(table.to_dyninsts())

        mem = np.nonzero(table.is_mem)[0]
        is_store = table.is_store[mem]
        kind, _ = ddt_dependences(
            table.word_addr()[mem], is_store, [config.size])[config.size]

        load_rows = mem[~is_store]           # trace positions of loads
        kind = kind[~is_store]               # detected-dependence bucket
        pc = table.pc[load_rows]
        prev, _, _, _ = group_links(pc)      # previous execution per static pc
        seen = prev >= 0
        prev_row = np.clip(prev, 0, None)

        addr = table.addr[load_rows]
        addr_match = seen & (addr[prev_row] == addr)

        value = table.value[load_rows]
        prev_value = value[prev_row]
        value_match = seen & _IS_NOT_NONE(prev_value).astype(bool) \
            & np.asarray(prev_value == value, dtype=bool)

        analysis = AddressValueLocalityAnalysis(config)
        analysis.address = self._breakdown(addr_match, kind)
        analysis.value = self._breakdown(value_match, kind)
        return analysis

    @staticmethod
    def _breakdown(match: np.ndarray, kind: np.ndarray) -> LocalityBreakdown:
        return LocalityBreakdown(
            loads=int(match.size),
            local_raw=int(np.count_nonzero(match & (kind == KIND_RAW))),
            local_rar=int(np.count_nonzero(match & (kind == KIND_RAR))),
            local_nodep=int(np.count_nonzero(match & (kind == 0))),
        )


# re-exported for the differential checker's golden side
__all__ = ["NumPyBackend", "ReferenceBackend"]
