"""Staged columnar simulation backend (decode → execute → dependence →
locality → predict).

The per-instruction analyses in :mod:`repro.dependence` are the repo's
reference semantics, but their Python-loop hot paths cap traces at
10⁴–10⁶ instructions.  This package restructures the hot path as a staged
event-stream pipeline over explicit *record batches* (NumPy structured
columns), behind a common :class:`~repro.columnar.backend.SimBackend`
interface with two interchangeable implementations:

* ``reference`` — the existing per-instruction code, unchanged semantics;
* ``numpy`` — vectorized trace materialization, DDT observe/lookup via
  sorted per-word index arrays, and locality histograms via
  bincount-style kernels.

The two backends are held together by a lockstep differential checker
(:mod:`repro.columnar.diff`, reusing the ``repro.chaos`` golden-diff
machinery) and a suite-wide parity test, so they can never silently
drift.  ``docs/columnar.md`` has the stage/record-batch schema and the
parity guarantee.
"""

from repro.columnar.backend import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    RARLocalityResult,
    ReferenceBackend,
    SimBackend,
    TraceSummary,
    backend_available,
    backend_names,
    get_backend,
)
from repro.columnar.batch import TraceTable, iter_record_batches, materialized_trace

__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "RARLocalityResult",
    "ReferenceBackend",
    "SimBackend",
    "TraceSummary",
    "TraceTable",
    "backend_available",
    "backend_names",
    "get_backend",
    "iter_record_batches",
    "materialized_trace",
]
