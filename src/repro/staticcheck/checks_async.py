"""Async-soundness rules: AS101 blocking calls reachable from a
coroutine, AS102 unawaited coroutines, AS103 orphan tasks, AS104 locks
held across ``await``.

The serving stack (:mod:`repro.serve`) multiplexes every session onto
one event loop, so a single blocking primitive anywhere under a
coroutine stalls *all* sessions at once — the exact failure mode the
soak drill provokes dynamically.  AS101 proves its absence statically:
direct blocking calls in a coroutine body, plus transitive ones found by
walking the resolved call graph through synchronous callees (awaited
coroutine callees are skipped — they are analyzed on their own), with
the offending call chain spelled out in the message.

AS102/AS103 catch the two silent-death shapes of task plumbing: a
coroutine object that is created but never awaited (the body never
runs), and a ``create_task``/``ensure_future`` whose handle is dropped
(the task may be garbage-collected mid-flight and its exception is
lost).  AS104 flags a synchronous lock held across an ``await`` — the
await lets another task run, and if that task wants the same lock the
loop deadlocks.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import ResolvedCallGraph, canonical
from repro.staticcheck.checks_forksafety import _LOCK_CONSTRUCTORS
from repro.staticcheck.ir import local_walk
from repro.staticcheck.model import Finding, SourceFile

#: canonical dotted callables that block the calling thread
_BLOCKING_DOTTED: Dict[str, str] = {
    "time.sleep": "sleeps the whole event loop",
    "subprocess.run": "spawns and waits for a process",
    "subprocess.call": "spawns and waits for a process",
    "subprocess.check_call": "spawns and waits for a process",
    "subprocess.check_output": "spawns and waits for a process",
    "open": "synchronous file I/O",
    "io.open": "synchronous file I/O",
    "os.open": "synchronous file I/O",
    "os.fsync": "synchronous disk flush",
    "os.replace": "synchronous disk I/O",
    "os.rename": "synchronous disk I/O",
    "socket.create_connection": "synchronous socket connect",
}

#: method names that do file I/O on any receiver (pathlib idioms)
_BLOCKING_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes"}

#: modules whose every function is disk I/O by contract
_DISK_MODULES = {"repro.harness.store", "repro.harness.queue"}

#: task-spawning call names (AS103 watches their dropped results)
_SPAWNERS = {"create_task", "ensure_future"}


def _blocking_sites(graph: ResolvedCallGraph,
                    qual: str) -> List[Tuple[int, str, str]]:
    """(line, what, why) for direct blocking calls in one function body."""
    info = graph.functions[qual]
    imports = graph.imports.get(info.module, {})
    sites: List[Tuple[int, str, str]] = []
    for node in local_walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = canonical(node.func, imports)
        if dotted in _BLOCKING_DOTTED:
            sites.append((node.lineno, f"{dotted}()",
                          _BLOCKING_DOTTED[dotted]))
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_ATTRS):
            sites.append((node.lineno, f".{node.func.attr}()",
                          "synchronous file I/O"))
    sites.sort()
    return sites


def _blocking_chain(graph: ResolvedCallGraph, qual: str,
                    memo: Dict[str, Optional[List[str]]],
                    ) -> Optional[List[str]]:
    """A call chain from sync function ``qual`` down to a blocking
    primitive, or None.  Memoized; cycles resolve to None-in-progress
    (a recursive path adds nothing a shorter one would not)."""
    if qual in memo:
        return memo[qual]
    memo[qual] = None                        # cycle guard
    info = graph.functions.get(qual)
    if info is None:
        return None
    if info.module in _DISK_MODULES:
        memo[qual] = [f"{qual} [store/queue disk I/O]"]
        return memo[qual]
    direct = _blocking_sites(graph, qual)
    if direct:
        line, what, _why = direct[0]
        memo[qual] = [f"{qual}:{line} [{what}]"]
        return memo[qual]
    for callee in sorted(info.calls):
        if graph.is_async(callee):
            continue
        chain = _blocking_chain(graph, callee, memo)
        if chain is not None:
            memo[qual] = [qual] + chain
            return memo[qual]
    return None


def _check_blocking(graph: ResolvedCallGraph,
                    by_module: Dict[str, SourceFile]) -> List[Finding]:
    findings: List[Finding] = []
    memo: Dict[str, Optional[List[str]]] = {}
    for qual in sorted(graph.functions):
        if not graph.is_async(qual):
            continue
        info = graph.functions[qual]
        source = by_module.get(info.module)
        if source is None:
            continue
        for line, what, why in _blocking_sites(graph, qual):
            findings.append(Finding(
                rule="AS101", path=source.rel, line=line, col=1,
                message=f"{what} in coroutine {qual}: {why} — every "
                        f"session sharing this event loop stalls"))
        reported: Set[Tuple[int, str]] = set()
        for site in graph.sites.get(qual, []):
            for callee in site.callees:
                if graph.is_async(callee):
                    continue
                chain = _blocking_chain(graph, callee, memo)
                if chain is None or (site.lineno, chain[-1]) in reported:
                    continue
                reported.add((site.lineno, chain[-1]))
                findings.append(Finding(
                    rule="AS101", path=source.rel, line=site.lineno, col=1,
                    message=f"coroutine {qual} reaches a blocking call "
                            f"via {' -> '.join(chain)} — run it in an "
                            f"executor or make the path async"))
    return findings


def _parents(root: ast.AST) -> Dict[int, ast.AST]:
    return {id(child): parent
            for parent in ast.walk(root)
            for child in ast.iter_child_nodes(parent)}


def _name_loads(root: ast.AST) -> Dict[str, int]:
    loads: Dict[str, int] = {}
    for node in ast.walk(root):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads[node.id] = loads.get(node.id, 0) + 1
    return loads


def _check_dropped(graph: ResolvedCallGraph,
                   by_module: Dict[str, SourceFile]) -> List[Finding]:
    """AS102 (unawaited coroutine) + AS103 (dropped task handle).

    Both trigger on exactly two shapes — a bare expression statement and
    an assignment to a name that is never read again.  Passing the
    object onward (into ``gather``, a list, a callback registry) is
    deliberately trusted: the receiver owns it now.
    """
    findings: List[Finding] = []
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        source = by_module.get(info.module)
        if source is None:
            continue
        parents = _parents(info.node)
        loads = _name_loads(info.node)

        def dropped(node: ast.Call) -> bool:
            parent = parents.get(id(node))
            if isinstance(parent, ast.Expr):
                return True
            if (isinstance(parent, ast.Assign) and len(parent.targets) == 1
                    and isinstance(parent.targets[0], ast.Name)):
                return loads.get(parent.targets[0].id, 0) == 0
            return False

        for site in graph.sites.get(qual, []):
            if site.attr in _SPAWNERS:
                if dropped(site.node):
                    findings.append(Finding(
                        rule="AS103", path=source.rel, line=site.lineno,
                        col=site.node.col_offset + 1,
                        message=f"{site.attr}() result dropped in {qual} "
                                f"— hold a reference (or add a "
                                f"done-callback) so the task cannot be "
                                f"collected mid-flight and its "
                                f"exceptions surface"))
                continue
            if site.awaited:
                continue
            if any(graph.is_async(c) for c in site.callees):
                if dropped(site.node):
                    callee = next(c for c in site.callees
                                  if graph.is_async(c))
                    findings.append(Finding(
                        rule="AS102", path=source.rel, line=site.lineno,
                        col=site.node.col_offset + 1,
                        message=f"coroutine {callee} called in {qual} "
                                f"but never awaited — the body never "
                                f"runs"))
    return findings


def _check_lock_across_await(graph: ResolvedCallGraph,
                             by_module: Dict[str, SourceFile]
                             ) -> List[Finding]:
    findings: List[Finding] = []
    for qual in sorted(graph.functions):
        if not graph.is_async(qual):
            continue
        info = graph.functions[qual]
        source = by_module.get(info.module)
        if source is None:
            continue
        imports = graph.imports.get(info.module, {})
        lock_names: Set[str] = set()
        for node in local_walk(info.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and canonical(node.value.func,
                                  imports) in _LOCK_CONSTRUCTORS):
                lock_names.add(node.targets[0].id)

        def is_lock(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Call):
                return canonical(expr.func, imports) in _LOCK_CONSTRUCTORS
            terminal = None
            if isinstance(expr, ast.Attribute):
                terminal = expr.attr
            elif isinstance(expr, ast.Name):
                terminal = expr.id
                if terminal in lock_names:
                    return True
            return (terminal is not None
                    and terminal.lower().endswith(("lock", "mutex")))

        for node in local_walk(info.node):
            if not isinstance(node, ast.With):     # async with is fine
                continue
            if not any(is_lock(item.context_expr) for item in node.items):
                continue
            has_await = any(
                isinstance(sub, ast.Await)
                for stmt in node.body
                for sub in [stmt] + list(local_walk(stmt)))
            if has_await:
                findings.append(Finding(
                    rule="AS104", path=source.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=f"synchronous lock held across await in "
                            f"{qual} — another task needing it "
                            f"deadlocks the event loop; use "
                            f"asyncio.Lock or release before awaiting"))
    return findings


def check_graph(files: Sequence[SourceFile],
                graph: ResolvedCallGraph) -> List[Finding]:
    """The AS1xx family over a resolved call graph."""
    by_module = {source.module: source for source in files}
    return (_check_blocking(graph, by_module)
            + _check_dropped(graph, by_module)
            + _check_lock_across_await(graph, by_module))
