"""repro.staticcheck — the whole-repo invariant linter.

The reproduction's headline guarantees are *determinism properties*:
parallel and serial harness runs are byte-identical, figure outputs are
byte-identical across simulation backends, and the content-addressed
result store serves a cached cell only when code and configuration are
provably unchanged.  All of that is runtime-checked; this package checks
it *statically*, so the bug classes that would silently break those
guarantees — unsorted set iteration feeding a report, an unseeded RNG, a
wall-clock value in a payload, module state smuggled across ``fork()``,
a raw float cache key, fingerprint-invisible dispatch — fail CI before
they run.

Rule families (full reference in docs/staticcheck.md):

* ``DT*`` determinism — unordered iteration, unseeded randomness,
  wall-clock reads reachable from artefact entry points (a call-graph
  pass seeded at ``run``/``run_one``/``render``/``main`` and
  :mod:`repro.util.hashing`).
* ``FH*`` float hygiene — float dict keys and exact float comparison
  (the PR 2 ``_program_cache`` bug class).
* ``FS*`` fork safety — module-level mutable state, locks, RNGs and
  file handles that the fork scheduler would duplicate into workers.
* ``CK*`` cache-key soundness — dynamic import / getattr dispatch the
  code fingerprint cannot see.
* ``AS*`` async soundness — blocking calls reachable from coroutines
  (via the resolved call graph), unawaited coroutines, dropped task
  handles, locks held across ``await``.
* ``SH*`` shared-state isolation — class-body mutables shared across
  instances/sessions, read-await-write races in spawned tasks, closure
  ``fork()`` targets.
* ``RS*`` resource lifecycle — path-sensitive (per-function CFG) leak
  checks for file handles, queue leases and tmp files, including
  exception edges.

Findings are suppressible inline (``# staticcheck: ignore[FS101] why``)
or through the checked-in baseline (kept empty; see
:mod:`repro.staticcheck.baseline`).  CLI:

    python -m repro.staticcheck --strict
    python -m repro.staticcheck --json - --rule DT101 src/repro/harness
    python -m repro staticcheck --strict          # top-level alias
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.staticcheck.baseline import (
    BASELINE_FILENAME,
    BaselineError,
    apply_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.callgraph import CallGraph, ResolvedCallGraph
from repro.staticcheck.model import (
    REPORT_SCHEMA_VERSION,
    CheckReport,
    Finding,
    PragmaError,
    SourceFile,
)
from repro.staticcheck.rules import (
    REGISTRY_VERSION,
    RULES,
    Rule,
    Severity,
    resolve_many,
)
from repro.staticcheck import (
    checks_async,
    checks_cachekey,
    checks_determinism,
    checks_forksafety,
    checks_resource,
    checks_shared,
    checks_values,
)

#: per-file passes, in report order
_FILE_CHECKS = (
    checks_determinism.check_file,
    checks_values.check_file,
    checks_forksafety.check_file,
    checks_cachekey.check_file,
    checks_shared.check_file,
    checks_resource.check_file,
)

#: whole-graph passes (built on the resolved call graph), in report order
_GRAPH_CHECKS = (
    checks_determinism.check_wallclock,
    checks_async.check_graph,
    checks_shared.check_graph,
)


class StaticcheckError(ValueError):
    """A target cannot be analyzed (bad path, syntax error, bad pragma)."""


def default_root() -> Path:
    """The directory containing the ``repro`` package (``src/``)."""
    return Path(__file__).resolve().parent.parent.parent


def default_paths() -> List[Path]:
    """What the bare CLI analyzes: the whole installed ``repro`` tree."""
    return [Path(__file__).resolve().parent.parent]


def collect_sources(paths: Sequence[Path], root: Path) -> List[SourceFile]:
    """Parse every ``.py`` file under ``paths`` (sorted, deduplicated)."""
    seen = {}
    for path in paths:
        path = Path(path).resolve()
        if path.is_dir():
            for file_path in sorted(path.rglob("*.py")):
                seen[file_path] = None
        elif path.suffix == ".py" and path.is_file():
            seen[path] = None
        else:
            raise StaticcheckError(
                f"not a Python file or directory: {path}")
    sources = []
    for file_path in sorted(seen):
        try:
            sources.append(SourceFile.load(file_path, root))
        except ValueError as exc:       # bad relpath, pragma or syntax
            raise StaticcheckError(str(exc)) from None
        except SyntaxError as exc:
            raise StaticcheckError(
                f"{file_path}: syntax error: {exc}") from None
    return sources


def check_sources(sources: Sequence[SourceFile],
                  root: Path,
                  rules: Optional[Iterable[str]] = None) -> CheckReport:
    """Run every pass over parsed sources; pragma suppression applied."""
    selected = set(resolve_many(rules)) if rules else None
    report = CheckReport(root=str(root), files=len(sources))

    raw: List[Finding] = []
    for source in sources:
        for check in _FILE_CHECKS:
            raw.extend(check(source))
    graph = ResolvedCallGraph(sources)
    for check in _GRAPH_CHECKS:
        raw.extend(check(sources, graph))

    by_rel = {source.rel: source for source in sources}
    for finding in raw:
        if selected is not None and finding.rule not in selected:
            continue
        source = by_rel.get(finding.path)
        if source is not None and source.suppressed(finding.rule,
                                                    finding.line):
            report.suppressed += 1
            continue
        report.findings.append(finding)
    report.sort()
    return report


def check_paths(paths: Optional[Sequence[Path]] = None,
                root: Optional[Path] = None,
                rules: Optional[Iterable[str]] = None) -> CheckReport:
    """The one-call API: analyze ``paths`` (default: the repro tree)."""
    root = Path(root).resolve() if root is not None else default_root()
    targets = [Path(p) for p in paths] if paths else default_paths()
    return check_sources(collect_sources(targets, root), root, rules)


__all__ = [
    "BASELINE_FILENAME",
    "BaselineError",
    "CallGraph",
    "CheckReport",
    "Finding",
    "PragmaError",
    "REGISTRY_VERSION",
    "REPORT_SCHEMA_VERSION",
    "RULES",
    "ResolvedCallGraph",
    "Rule",
    "Severity",
    "SourceFile",
    "StaticcheckError",
    "apply_baseline",
    "check_paths",
    "check_sources",
    "collect_sources",
    "default_baseline_path",
    "default_paths",
    "default_root",
    "load_baseline",
    "write_baseline",
]
