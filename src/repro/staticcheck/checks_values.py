"""Float-hygiene rules: FH101 float dict keys, FH102 float equality.

The PR 2 ``_program_cache`` incident is the template: a raw float used
as a cache key made equal-after-arithmetic scales miss each other
(``0.1 + 0.2 - 0.2 != 0.1``).  The sanctioned idiom is rounding to a
fixed precision first (``round(float(scale), 9)``) — a ``round(...)``
call is not a literal, so the idiom passes both rules by construction.
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.model import Finding, SourceFile, is_float_constant


def check_file(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []

    def flag(rule: str, node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=source.rel, line=node.lineno,
            col=node.col_offset + 1, message=message))

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and is_float_constant(key):
                    flag("FH101", key,
                         "float literal as a dict key — round() to a "
                         "fixed precision (cache-key soundness)")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and is_float_constant(target.slice)):
                    flag("FH101", target,
                         "float literal as a subscript key — round() to "
                         "a fixed precision first")
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setdefault"
                and node.args and is_float_constant(node.args[0])):
            flag("FH101", node.args[0],
                 "float literal as a setdefault key — round() to a "
                 "fixed precision first")
        elif isinstance(node, ast.Compare):
            comparators = [node.left] + list(node.comparators)
            for op, (left, right) in zip(node.ops,
                                         zip(comparators, comparators[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if is_float_constant(left) or is_float_constant(right):
                    flag("FH102", node,
                         "== / != against a float literal — exact float "
                         "comparison; round() both sides or compare with "
                         "a tolerance")
                    break
    return findings
