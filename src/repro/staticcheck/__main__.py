"""``python -m repro.staticcheck`` — lint the repo's invariants.

    python -m repro.staticcheck                      # whole repro tree
    python -m repro.staticcheck --strict             # the CI gate
    python -m repro.staticcheck src/repro/harness    # one subtree
    python -m repro.staticcheck --rule DT101 --rule FS101
    python -m repro.staticcheck --json -             # machine-readable
    python -m repro.staticcheck --list-rules
    python -m repro.staticcheck --write-baseline     # grandfather findings

``--json -`` writes the JSON report to stdout and keeps every
human-readable line strictly on stderr, so pipeline consumers can parse
stdout directly (the same contract as ``python -m repro.analysis``).

Findings are suppressible with an inline pragma naming the rule and a
justification (``# staticcheck: ignore[FS101] deliberate fork seam``) or
via the baseline file (``staticcheck-baseline.json``; kept empty in this
repo — CI asserts it).  A pragma with an unknown rule ID is an error.

Exit status: 0 when clean, 1 when any unsuppressed error (with
``--strict``: error or warning) remains, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck import (
    BaselineError,
    RULES,
    StaticcheckError,
    apply_baseline,
    check_paths,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.model import REPORT_SCHEMA_VERSION
from repro.staticcheck.rules import REGISTRY_VERSION, expand


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: the whole "
             "installed repro package)")
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="directory paths are reported relative to (default: the "
             "directory containing the repro package)")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (the CI gate)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="only run this rule (ID, slug, or family name such as "
             "'async-soundness'; repeatable)")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full JSON report ('-' writes the JSON to "
             "stdout and moves all human-readable output to stderr)")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of grandfathered findings (default: "
             "staticcheck-baseline.json at the repo root, if present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="show analysis metadata too")
    return parser


def _list_rules(out) -> None:
    for rule in RULES.values():
        print(f"{rule.id}  {rule.severity.value:<7} "
              f"[{rule.family}] {rule.name}: {rule.summary}", file=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    # with --json - stdout belongs to the JSON document alone
    human = sys.stderr if args.json == "-" else sys.stdout

    if args.list_rules:
        _list_rules(human)
        return 0

    try:
        rules = expand(args.rule) if args.rule else None
        report = check_paths(paths=args.paths or None, root=args.root,
                             rules=rules)
    except (StaticcheckError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = None
    if not args.no_baseline:
        baseline_path = (Path(args.baseline) if args.baseline
                         else default_baseline_path())

    if args.write_baseline:
        target = baseline_path or Path("staticcheck-baseline.json")
        write_baseline(target, report)
        print(f"wrote {len(report.findings)} finding(s) to {target}",
              file=human)
        return 0

    stale = []
    if baseline_path is not None:
        try:
            report, stale = apply_baseline(report,
                                           load_baseline(baseline_path))
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(report.render(verbose=args.verbose), file=human)
    for key in stale:
        print(f"stale baseline entry (finding no longer exists): {key}",
              file=human)

    if args.json:
        payload = report.to_json_dict()
        payload["registry_version"] = REGISTRY_VERSION
        payload["schema_version"] = REPORT_SCHEMA_VERSION
        payload["strict"] = args.strict
        payload["stale_baseline_entries"] = stale
        text = json.dumps(payload, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text)

    return 0 if report.ok(strict=args.strict) and not stale else 1


if __name__ == "__main__":
    sys.exit(main())
