"""Cache-key soundness rules: CK101 dynamic imports, CK102 dynamic
getattr dispatch.

The result store keys every cached cell on a fingerprint of the source
tree (:func:`repro.util.hashing.tree_fingerprint`, harness excluded).
Fingerprinted code that selects its callee *at run time* — a computed
``importlib.import_module()`` target, ``__import__``, or a
``getattr(module, name)(...)`` dispatch — can change behavior without
changing any fingerprinted byte (for example by reaching outside the
tree), which would serve stale cache hits.  The harness itself is
outside the fingerprint and is exactly where such dispatch belongs
(:func:`repro.harness.jobs.execute_job`), so harness modules are exempt.

CK102 is scoped to *dispatch*: an immediately-called ``getattr`` result,
or ``getattr`` on an imported module object.  Reading data attributes by
computed name (field introspection over a literal name list) is not
dispatch and stays silent.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.staticcheck.callgraph import canonical, collect_imports
from repro.staticcheck.model import Finding, SourceFile


def _module_is_harness(module: str) -> bool:
    return "harness" in module.split(".")


def _is_constant_str(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _receiver_is_module(node: ast.AST, imports: Dict[str, str]) -> bool:
    """The getattr receiver is (statically) a module object."""
    if isinstance(node, ast.Call):
        return canonical(node.func, imports) in (
            "importlib.import_module", "__import__")
    if isinstance(node, ast.Name):
        target = imports.get(node.id)
        # "import x [as y]" maps to a bare module path; "from m import f"
        # maps to "m.f" — only the former is a module object for sure
        return target is not None and target == target.partition(".")[0] \
            and node.id in imports
    return False


def check_file(source: SourceFile) -> List[Finding]:
    if _module_is_harness(source.module):
        return []
    imports = collect_imports(source.tree, source.module)
    findings: List[Finding] = []

    def flag(rule: str, node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=source.rel, line=node.lineno,
            col=node.col_offset + 1, message=message))

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = canonical(node.func, imports)
        if dotted == "__import__":
            flag("CK101", node,
                 "__import__() in fingerprinted code — the code "
                 "fingerprint cannot see the dispatch target; route "
                 "dynamic loading through the harness registry")
        elif dotted == "importlib.import_module":
            if node.args and not _is_constant_str(node.args[0]):
                flag("CK101", node,
                     "importlib.import_module() with a computed target "
                     "in fingerprinted code — the fingerprint cannot "
                     "see what runs; use the harness-side loaders "
                     "(repro.harness.jobs) or a literal import")
        elif dotted == "getattr" and len(node.args) >= 2 \
                and not _is_constant_str(node.args[1]):
            # dispatch only: an immediately-called result, or a module
            # receiver — data-attribute introspection is not flagged
            if _receiver_is_module(node.args[0], imports):
                flag("CK102", node,
                     "getattr() with a computed name on a module "
                     "object — fingerprint-invisible dispatch; resolve "
                     "through the harness registry instead")

        # getattr(...)(...) — the result is called straight away
        if isinstance(node.func, ast.Call):
            inner = canonical(node.func.func, imports)
            if inner == "getattr" and len(node.func.args) >= 2 \
                    and not _is_constant_str(node.func.args[1]):
                flag("CK102", node,
                     "calling a getattr() result selected by a computed "
                     "name — fingerprint-invisible dispatch; use an "
                     "explicit dispatch table")
    return findings
