"""Shared-state isolation rules: SH201 class-level mutables, SH202
read/await/write races in spawned coroutines, SH203 closure fork
targets.

The serving invariant is *per-session-private engine state*: nothing a
session handler mutates may be visible to another session, and nothing
captured before ``fork()`` may be mutated in the child.  SH201 catches
the classic accidental sharing vector — a mutable bound in a class body
is one object on the class, shared by every instance, so a handler that
appends to ``self.cache`` without ever rebinding it writes into every
other session.  SH202 is the event-loop lost-update: in a coroutine that
runs as a *spawned task* (another task can interleave at any ``await``),
reading ``self.x``, awaiting, then writing ``self.x`` from the stale
read silently drops the interleaved task's update.  SH203 flags process
targets that drag captured state across the fork boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import ResolvedCallGraph, canonical, \
    collect_imports
from repro.staticcheck.checks_forksafety import _MUTABLE_CONSTRUCTORS, \
    _MUTATORS
from repro.staticcheck.ir import build_cfg, header_exprs, local_walk
from repro.staticcheck.model import Finding, SourceFile

#: wrappers that run their coroutine argument as a concurrent task
_TASK_WRAPPERS = {"create_task", "ensure_future", "gather", "wait"}


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


# -- SH201 ---------------------------------------------------------------

def _check_class_mutables(source: SourceFile,
                          imports: Dict[str, str]) -> List[Finding]:
    findings: List[Finding] = []
    for cls in ast.walk(source.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        mutables: Dict[str, int] = {}
        for stmt in cls.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                name = stmt.targets[0].id
                if name.startswith("__"):
                    continue
                value = stmt.value
                is_mutable = isinstance(value, (
                    ast.List, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp))
                if (not is_mutable and isinstance(value, ast.Call)
                        and canonical(value.func,
                                      imports) in _MUTABLE_CONSTRUCTORS):
                    is_mutable = True
                if is_mutable:
                    mutables[name] = stmt.lineno
        if not mutables:
            continue
        rebound: Set[str] = set()
        mutated: Dict[str, int] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(item):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    targets = (sub.targets if isinstance(sub, ast.Assign)
                               else [sub.target])
                    for target in targets:
                        attr = _is_self_attr(target)
                        if attr is not None:
                            rebound.add(attr)
                        if (isinstance(target, ast.Subscript)):
                            attr = _is_self_attr(target.value)
                            if attr is not None:
                                mutated.setdefault(attr, sub.lineno)
                elif isinstance(sub, ast.AugAssign):
                    if isinstance(sub.target, ast.Subscript):
                        attr = _is_self_attr(sub.target.value)
                        if attr is not None:
                            mutated.setdefault(attr, sub.lineno)
                elif (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _MUTATORS):
                    attr = _is_self_attr(sub.func.value)
                    if attr is not None:
                        mutated.setdefault(attr, sub.lineno)
        for name, where in sorted(mutated.items()):
            if name in mutables and name not in rebound:
                findings.append(Finding(
                    rule="SH201", path=source.rel, line=mutables[name],
                    col=1,
                    message=f"class-body mutable {name!r} is mutated "
                            f"through self (line {where}) but never "
                            f"rebound per instance — one object is "
                            f"shared by every instance; bind it in "
                            f"__init__"))
    return findings


# -- SH203 ---------------------------------------------------------------

def _check_fork_targets(source: SourceFile,
                        imports: Dict[str, str]) -> List[Finding]:
    nested_defs: Set[str] = set()
    for func in ast.walk(source.tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in local_walk(func):
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    nested_defs.add(sub.name)

    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = canonical(node.func, imports)
        is_process = ((dotted is not None
                       and (dotted == "Process"
                            or dotted.endswith(".Process")))
                      or (isinstance(node.func, ast.Attribute)
                          and node.func.attr == "Process"))
        if not is_process:
            continue
        target = next((kw.value for kw in node.keywords
                       if kw.arg == "target"), None)
        if target is None:
            continue
        reason = None
        if isinstance(target, ast.Lambda):
            reason = "a lambda"
        elif isinstance(target, ast.Name) and target.id in nested_defs:
            reason = f"nested closure {target.id!r}"
        elif _is_self_attr(target) is not None:
            reason = f"bound method self.{target.attr}"
        if reason is not None:
            findings.append(Finding(
                rule="SH203", path=source.rel, line=node.lineno,
                col=node.col_offset + 1,
                message=f"Process target is {reason} — it carries its "
                        f"captured state across fork()/spawn; use a "
                        f"module-level function taking explicit args"))
    return findings


# -- SH202 ---------------------------------------------------------------

def _spawned_coroutines(graph: ResolvedCallGraph) -> Set[str]:
    """Async qualnames passed (as direct calls) to task wrappers."""
    spawned: Set[str] = set()
    for qual, sites in graph.sites.items():
        by_node = {id(site.node): site for site in sites}
        for site in sites:
            if site.attr not in _TASK_WRAPPERS:
                continue
            args = list(site.node.args) + [kw.value
                                           for kw in site.node.keywords]
            for arg in args:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                inner = by_node.get(id(arg))
                if inner is None:
                    continue
                for callee in inner.callees:
                    if graph.is_async(callee):
                        spawned.add(callee)
    return spawned


def _stmt_self_access(stmt: ast.stmt
                      ) -> Tuple[Set[str], Set[str], bool]:
    """(reads, stale_writes, has_await) for one CFG node's own code.

    A *stale* write is a plain ``self.X = expr`` whose RHS does not
    re-read ``self.X`` — the value was computed from an earlier read, so
    an await between read and write loses interleaved updates.
    ``self.X += 1`` and mutator calls re-read at write time and are not
    stale.
    """
    reads: Set[str] = set()
    stale_writes: Set[str] = set()
    has_await = False
    for root in header_exprs(stmt):
        for node in [root] + list(local_walk(root)):
            if isinstance(node, ast.Await):
                has_await = True
            attr = _is_self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                reads.add(attr)
    if isinstance(stmt, ast.Assign):
        value_reads = {
            _is_self_attr(node)
            for node in [stmt.value] + list(local_walk(stmt.value))}
        for target in stmt.targets:
            attr = _is_self_attr(target)
            if attr is not None and attr not in value_reads:
                stale_writes.add(attr)
    return reads, stale_writes, has_await


def _check_task_races(files: Sequence[SourceFile],
                      graph: ResolvedCallGraph) -> List[Finding]:
    by_module = {source.module: source for source in files}
    findings: List[Finding] = []
    for qual in sorted(_spawned_coroutines(graph)):
        info = graph.functions.get(qual)
        if info is None or info.cls is None:
            continue
        source = by_module.get(info.module)
        if source is None:
            continue
        cfg = build_cfg(info.node)
        access = {node.id: _stmt_self_access(node.stmt)
                  for node in cfg.statement_nodes()}
        await_nodes = [nid for nid, (_r, _w, a) in access.items() if a]
        if not await_nodes:
            continue
        flagged: Set[Tuple[str, int]] = set()
        for rid, (reads, _w, _a) in sorted(access.items()):
            if not reads:
                continue
            reach_of_read = cfg.reachable_from([rid])
            awaits_after = [a for a in await_nodes if a in reach_of_read]
            if not awaits_after:
                continue
            reach_after = cfg.reachable_from(awaits_after)
            for wid in sorted(reach_after):
                if wid not in access:
                    continue
                stale = access[wid][1]
                common = (reads & stale)
                for attr in sorted(common):
                    node = cfg.nodes[wid]
                    key = (attr, node.lineno or 0)
                    if key in flagged:
                        continue
                    flagged.add(key)
                    findings.append(Finding(
                        rule="SH202", path=source.rel,
                        line=node.lineno or info.node.lineno, col=1,
                        message=f"self.{attr} written from a value read "
                                f"before an await in spawned coroutine "
                                f"{qual} — an interleaving task's "
                                f"update to self.{attr} is silently "
                                f"lost; re-read after the await or "
                                f"mutate in place"))
    return findings


# -- entry points --------------------------------------------------------

def check_file(source: SourceFile) -> List[Finding]:
    """The per-file SH rules (SH201, SH203)."""
    imports = collect_imports(source.tree, source.module)
    return (_check_class_mutables(source, imports)
            + _check_fork_targets(source, imports))


def check_graph(files: Sequence[SourceFile],
                graph: ResolvedCallGraph) -> List[Finding]:
    """The graph-scoped SH rule (SH202)."""
    return _check_task_races(files, graph)
