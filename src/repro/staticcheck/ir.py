"""A per-function control-flow IR for the flow-sensitive rule families.

The AS/SH/RS passes need to reason about *paths*: "is there an execution
of this function on which the lease is never released?", "can an
``await`` interleave between this read and that write?".  The per-line
AST walks of the older families cannot answer that, so this module
lowers each function body to a statement-level CFG:

* one :class:`Node` per simple statement (compound statements contribute
  their *header* — the ``if``/``while`` test, the ``for`` iterable, the
  ``with`` context expressions — as a node and recurse into their
  bodies);
* ``next`` edges for sequential/branch flow, ``exc`` edges from every
  may-raise node to the innermost live handler (or the virtual
  ``raise_exit``), routed through ``finally`` blocks;
* three virtual nodes: ``entry``, ``exit`` (normal completion and
  ``return``) and ``raise_exit`` (exception propagation out of the
  function).

The lowering is deliberately conservative in the *may* direction: a
``try`` body edge reaches every handler **and** — unless some handler is
a catch-all — escapes past them (typed handlers need not match), a
single ``finally`` chain feeds both its normal and exceptional
continuations, and any statement containing a call, ``raise``,
``assert``, ``await`` or iteration header is treated as may-raise.
Extra paths can only make the leak/race checks *more* suspicious, never
silently optimistic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: edge kinds: sequential/branch flow vs exception propagation
EDGE_NEXT = "next"
EDGE_EXC = "exc"


@dataclass
class Node:
    """One CFG node: a statement, or a virtual join/entry/exit point."""

    id: int
    stmt: Optional[ast.stmt]           # None for virtual nodes
    label: str = ""                    # "entry" / "exit" / "raise" / "join"
    succs: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def lineno(self) -> Optional[int]:
        return getattr(self.stmt, "lineno", None)


class FunctionCFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: Dict[int, Node] = {}
        self.entry = self._new(None, "entry").id
        self.exit = self._new(None, "exit").id
        self.raise_exit = self._new(None, "raise").id
        #: ``if`` node id -> (body entry id, orelse entry id); an empty
        #: branch maps to the statement's join node.  Lets path-sensitive
        #: consumers follow only the branch consistent with a narrowing
        #: test (``if claim is None: ... continue``).
        self.branches: Dict[int, Tuple[int, int]] = {}

    def _new(self, stmt: Optional[ast.stmt], label: str = "") -> Node:
        node = Node(id=len(self.nodes), stmt=stmt, label=label)
        self.nodes[node.id] = node
        return node

    def _edge(self, src: int, dst: int, kind: str = EDGE_NEXT) -> None:
        if (dst, kind) not in self.nodes[src].succs:
            self.nodes[src].succs.append((dst, kind))

    def successors(self, nid: int) -> List[Tuple[int, str]]:
        return self.nodes[nid].succs

    def statement_nodes(self) -> Iterable[Node]:
        """Every non-virtual node, in id (construction) order."""
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            if node.stmt is not None:
                yield node

    def reachable_from(self, starts: Iterable[int],
                       inclusive: bool = False) -> Set[int]:
        """Node ids reachable from ``starts`` along any edge kind."""
        work = list(starts)
        seen: Set[int] = set(work) if inclusive else set()
        visited: Set[int] = set()
        while work:
            nid = work.pop()
            if nid in visited:
                continue
            visited.add(nid)
            for succ, _ in self.nodes[nid].succs:
                seen.add(succ)
                if succ not in visited:
                    work.append(succ)
        return seen


def header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The AST a CFG node executes *itself*.

    For compound statements that is the header only — the ``if`` test,
    the ``for`` iterable/target, the ``with`` context expressions — the
    body statements are separate CFG nodes.  Simple statements execute
    whole.  Flow-sensitive checks must scan these (not ``ast.walk`` the
    raw ``stmt``) or a compound header node would double-count its body.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item for item in stmt.items]
    return [stmt]


_header_exprs = header_exprs


def local_walk(root: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` minus nested function/class/lambda bodies.

    Yields every descendant of ``root`` (not ``root`` itself) that runs
    when ``root``'s own scope runs — a ``time.sleep`` inside a nested
    callback is *deferred*, not executed by the enclosing coroutine.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def may_raise(stmt: ast.stmt) -> bool:
    """Whether executing ``stmt`` (its header, for compounds) can raise.

    Calls, explicit ``raise``, ``assert``, ``await`` and iteration /
    context-manager headers count; attribute access and arithmetic are
    deliberately ignored — treating *everything* as may-raise would turn
    every straight-line acquire/release pair into a reported leak.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert, ast.With, ast.AsyncWith,
                         ast.For, ast.AsyncFor)):
        return True
    for root in _header_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # defining a function runs nothing
            if isinstance(node, (ast.Call, ast.Await, ast.Yield,
                                 ast.YieldFrom)):
                return True
    return False


#: handler type names treated as catching every exception.  ``except
#: Exception`` technically lets ``KeyboardInterrupt``/``SystemExit``
#: escape, but treating it as a catch-all keeps the leak checks focused
#: on reachable bug paths: those two mean the process is being torn
#: down, which lease TTLs and stale-tmp sweeps already cover.
_CATCH_ALL = {"BaseException", "Exception"}


def _catches_all(handlers: List[ast.ExceptHandler]) -> bool:
    """Whether some handler is a bare ``except`` or names a catch-all."""
    for handler in handlers:
        node = handler.type
        if node is None:
            return True
        names = node.elts if isinstance(node, ast.Tuple) else [node]
        for name in names:
            terminal = (name.attr if isinstance(name, ast.Attribute)
                        else getattr(name, "id", None))
            if terminal in _CATCH_ALL:
                return True
    return False


class _Builder:
    """Recursive CFG construction over one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.cfg = FunctionCFG(func)
        #: innermost exception continuation (handler dispatch / finally /
        #: the virtual raise_exit)
        self._exc: List[int] = [self.cfg.raise_exit]
        #: (loop head id, loop after id) for break/continue
        self._loops: List[Tuple[int, int]] = []
        #: (finally entry id, loop depth at entry) for live ``finally``
        #: blocks — ``return``/``break``/``continue`` that cross one must
        #: route through it, not jump straight to their target
        self._finallies: List[Tuple[int, int]] = []

    # -- plumbing --------------------------------------------------------

    def _stmt_node(self, stmt: ast.stmt, pred: Optional[int]) -> int:
        node = self.cfg._new(stmt)
        if pred is not None:
            self.cfg._edge(pred, node.id)
        if may_raise(stmt):
            self.cfg._edge(node.id, self._exc[-1], EDGE_EXC)
        return node.id

    def _join(self) -> int:
        return self.cfg._new(None, "join").id

    # -- statement lowering ----------------------------------------------

    def seq(self, stmts: List[ast.stmt], pred: Optional[int]
            ) -> Optional[int]:
        cur = pred
        for stmt in stmts:
            if cur is None:
                break  # unreachable after return/raise/break/continue
            cur = self.stmt(stmt, cur)
        return cur

    def stmt(self, stmt: ast.stmt, pred: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, pred)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, pred)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, pred)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, pred)
        if isinstance(stmt, ast.Return):
            nid = self._stmt_node(stmt, pred)
            # a return crossing finally blocks runs them on the way out
            target = (self._finallies[-1][0] if self._finallies
                      else self.cfg.exit)
            self.cfg._edge(nid, target)
            return None
        if isinstance(stmt, ast.Raise):
            self._stmt_node(stmt, pred)  # exc edge added by _stmt_node
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            nid = self._stmt_node(stmt, pred)
            if self._loops:
                head, after = self._loops[-1]
                self.cfg._edge(nid, after if isinstance(stmt, ast.Break)
                               else head)
            # a finally entered inside the innermost loop is crossed by
            # the jump and runs first (extra path kept: may-direction)
            crossed = [f for f, depth in self._finallies
                       if depth == len(self._loops)]
            if crossed:
                self.cfg._edge(nid, crossed[-1])
            return None
        # nested defs/classes and all simple statements: one node
        return self._stmt_node(stmt, pred)

    def _if(self, stmt: ast.If, pred: int) -> Optional[int]:
        head = self._stmt_node(stmt, pred)
        join = self._join()
        entries = []
        reached = False
        for branch in (stmt.body, stmt.orelse):
            if branch:
                entries.append(len(self.cfg.nodes))  # next node's id
                out = self.seq(branch, head)
                if out is not None:
                    self.cfg._edge(out, join)
                    reached = True
            else:
                entries.append(join)
                self.cfg._edge(head, join)
                reached = True
        self.cfg.branches[head] = (entries[0], entries[1])
        return join if reached else None

    def _loop(self, stmt: ast.stmt, pred: int) -> int:
        head = self._stmt_node(stmt, pred)
        after = self._join()
        # the loop may run zero times (or its condition may go false)
        self.cfg._edge(head, after)
        self._loops.append((head, after))
        try:
            out = self.seq(stmt.body, head)
        finally:
            self._loops.pop()
        if out is not None:
            self.cfg._edge(out, head)
        if getattr(stmt, "orelse", None):
            else_out = self.seq(stmt.orelse, head)
            if else_out is not None:
                self.cfg._edge(else_out, after)
        return after

    def _with(self, stmt: ast.stmt, pred: int) -> Optional[int]:
        head = self._stmt_node(stmt, pred)
        return self.seq(stmt.body, head)

    def _try(self, stmt: ast.Try, pred: int) -> Optional[int]:
        after = self._join()
        outer_exc = self._exc[-1]

        if stmt.finalbody:
            # One finally chain serves both continuations: its exit feeds
            # ``after`` (normal) and the outer exception target
            # (propagation).  Conservative path merging — see module doc.
            f_entry = self._join()
            f_out = self.seq(stmt.finalbody, f_entry)
            if f_out is not None:
                self.cfg._edge(f_out, after)
                self.cfg._edge(f_out, outer_exc, EDGE_EXC)
            normal_cont, exc_cont = f_entry, f_entry
        else:
            normal_cont, exc_cont = after, outer_exc

        # handler dispatch point: body exceptions land here, then go to
        # every handler *and* (typed handlers may not match) escape
        # outward — unless some handler is a catch-all
        dispatch = self._join()
        if not _catches_all(stmt.handlers):
            self.cfg._edge(dispatch, exc_cont, EDGE_EXC)

        if stmt.finalbody:
            self._finallies.append((f_entry, len(self._loops)))

        self._exc.append(dispatch)
        try:
            body_out = self.seq(stmt.body, pred)
        finally:
            self._exc.pop()
        if not any(dst == dispatch
                   for node in self.cfg.nodes.values()
                   for dst, _ in node.succs if node.id != dispatch):
            # nothing in the body can raise: still keep the dispatch
            # wired so handler code stays reachable for the analyses
            self.cfg._edge(pred, dispatch, EDGE_EXC)

        self._exc.append(exc_cont)
        try:
            for handler in stmt.handlers:
                h_out = self.seq(handler.body, dispatch)
                if h_out is not None:
                    self.cfg._edge(h_out, normal_cont)
            if stmt.orelse:
                if body_out is not None:
                    else_out = self.seq(stmt.orelse, body_out)
                    if else_out is not None:
                        self.cfg._edge(else_out, normal_cont)
                body_out = None
        finally:
            self._exc.pop()
            if stmt.finalbody:
                self._finallies.pop()

        if body_out is not None:
            self.cfg._edge(body_out, normal_cont)
        if stmt.finalbody and normal_cont is not after:
            # reachable only through the finally chain's exit edges
            pass
        return after


def build_cfg(func: ast.AST) -> FunctionCFG:
    """Lower one ``FunctionDef``/``AsyncFunctionDef`` body to a CFG."""
    builder = _Builder(func)
    out = builder.seq(list(func.body), builder.cfg.entry)
    if out is not None:
        builder.cfg._edge(out, builder.cfg.exit)
    return builder.cfg
