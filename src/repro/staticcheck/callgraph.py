"""A simple name-based call graph over the analyzed package.

This is deliberately modest: calls resolve through per-module import
maps, ``self.<method>()`` within a class, and locals constructed from a
statically known class (``v = ClassName(...); v.m()``).  Attribute calls
on values the pass cannot type are ignored — under-approximation keeps
the reachability-scoped rules (DT301) free of avalanche false positives,
and the rule still catches every direct and module-function path from an
artefact entry point to a wall-clock read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.staticcheck.model import SourceFile, call_name


def collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> canonical dotted path, from a module's import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; relative imports
    resolve against the importing module's package.
    """
    imports: Dict[str, str] = {}
    package_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def canonical(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The canonical dotted name of a call target (or None if computed).

    The leading segment is rewritten through the import map, so
    ``np.random.default_rng`` canonicalizes to
    ``numpy.random.default_rng`` regardless of aliasing.
    """
    dotted = call_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = imports.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


@dataclass
class FunctionInfo:
    """One function (or method) body in the package."""

    qualname: str                 # "pkg.mod:func" or "pkg.mod:Class.func"
    module: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None
    calls: Set[str] = field(default_factory=set)   # resolved callee qualnames


def _function_bodies(node: ast.AST) -> Iterable[ast.AST]:
    """Every node of a function body, descending into nested defs/lambdas.

    Nested functions and lambdas are treated as part of the enclosing
    function: defining them does not run them, but a reachability linter
    over-approximates there rather than missing a deferred callback.
    """
    for child in ast.walk(node):
        yield child


class CallGraph:
    """Function index + resolved call edges for a set of source files."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self.imports: Dict[str, Dict[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module -> {simple name -> qualname} for module-level functions
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        #: canonical class path ("pkg.mod.Class") -> {method -> qualname}
        self._class_methods: Dict[str, Dict[str, str]] = {}
        self._index()
        self._link()

    # -- indexing --------------------------------------------------------

    def _index(self) -> None:
        for source in self.files:
            self.imports[source.module] = collect_imports(
                source.tree, source.module)
            funcs: Dict[str, str] = {}
            for node in source.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{source.module}:{node.name}"
                    self.functions[qual] = FunctionInfo(
                        qual, source.module, node)
                    funcs[node.name] = qual
                elif isinstance(node, ast.ClassDef):
                    methods: Dict[str, str] = {}
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            qual = f"{source.module}:{node.name}.{item.name}"
                            self.functions[qual] = FunctionInfo(
                                qual, source.module, item, cls=node.name)
                            methods[item.name] = qual
                    self._class_methods[
                        f"{source.module}.{node.name}"] = methods
            self._module_funcs[source.module] = funcs

    # -- edge resolution -------------------------------------------------

    def _resolve_target(self, dotted: Optional[str], module: str
                        ) -> List[str]:
        """Qualnames a canonical dotted call target may refer to."""
        if dotted is None:
            return []
        imports = self.imports.get(module, {})
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head, head)
        full = f"{resolved}.{rest}" if rest else resolved
        # module-level function in the same module
        if not rest and head in self._module_funcs.get(module, {}):
            return [self._module_funcs[module][head]]
        # "pkg.mod.func" — split into (module, func)
        mod_name, _, attr = full.rpartition(".")
        if attr and attr in self._module_funcs.get(mod_name, {}):
            return [self._module_funcs[mod_name][attr]]
        # class constructor: "pkg.mod.Class" -> every __init__/__post_init__
        if full in self._class_methods:
            methods = self._class_methods[full]
            return [methods[m] for m in ("__init__", "__post_init__", "__new__")
                    if m in methods]
        return []

    def _local_instance_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> canonical class path for ``v = Cls(...)`` locals."""
        types: Dict[str, str] = {}
        for node in _function_bodies(info.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                dotted = canonical(node.value.func,
                                   self.imports.get(info.module, {}))
                if dotted is None and isinstance(node.value.func, ast.Name):
                    dotted = node.value.func.id
                if dotted in self._class_methods:
                    types[node.targets[0].id] = dotted
                else:
                    # "Cls" defined in this module
                    local = f"{info.module}.{dotted}" if dotted else None
                    if local in self._class_methods:
                        types[node.targets[0].id] = local
        return types

    def _link(self) -> None:
        for info in self.functions.values():
            imports = self.imports.get(info.module, {})
            instance_types = self._local_instance_types(info)
            for node in _function_bodies(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                # self.<method>() within the defining class
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)):
                    receiver = func.value.id
                    if receiver == "self" and info.cls is not None:
                        methods = self._class_methods.get(
                            f"{info.module}.{info.cls}", {})
                        if func.attr in methods:
                            info.calls.add(methods[func.attr])
                            continue
                    if receiver in instance_types:
                        methods = self._class_methods.get(
                            instance_types[receiver], {})
                        if func.attr in methods:
                            info.calls.add(methods[func.attr])
                            continue
                for qual in self._resolve_target(
                        canonical(func, imports), info.module):
                    info.calls.add(qual)

    # -- reachability ----------------------------------------------------

    def reachable(self, seeds: Iterable[str],
                  skip_module=None) -> Set[str]:
        """Qualnames reachable from ``seeds`` (BFS over resolved edges).

        ``skip_module(module) -> bool`` prunes whole modules from the
        traversal (DT301 prunes the harness: its orchestration
        timestamps are run metadata, outside payload and cache key).
        """
        work = [s for s in seeds if s in self.functions]
        seen: Set[str] = set()
        while work:
            qual = work.pop()
            if qual in seen:
                continue
            info = self.functions.get(qual)
            if info is None:
                continue
            if skip_module is not None and skip_module(info.module):
                continue
            seen.add(qual)
            work.extend(info.calls - seen)
        return seen
