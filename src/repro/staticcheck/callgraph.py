"""Call graphs over the analyzed package: name-based and resolved.

:class:`CallGraph` is deliberately modest: calls resolve through
per-module import maps, ``self.<method>()`` within a class, and locals
constructed from a statically known class (``v = ClassName(...);
v.m()``).  Attribute calls on values the pass cannot type are ignored —
under-approximation keeps the reachability-scoped rules free of
avalanche false positives.

:class:`ResolvedCallGraph` extends it for the flow-sensitive AS/SH/RS
families: it additionally types ``self.<attr>`` from ``__init__``-style
assignments, locals and parameters from annotations, records every call
*site* (with its enclosing-``await`` context and line), and knows which
functions are coroutines.  Its extra edges also flow into
:attr:`FunctionInfo.calls`, so reachability consumers (DT301) see the
sharper graph for free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.model import SourceFile, call_name


def collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> canonical dotted path, from a module's import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; relative imports
    resolve against the importing module's package.
    """
    imports: Dict[str, str] = {}
    package_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def canonical(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The canonical dotted name of a call target (or None if computed).

    The leading segment is rewritten through the import map, so
    ``np.random.default_rng`` canonicalizes to
    ``numpy.random.default_rng`` regardless of aliasing.
    """
    dotted = call_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = imports.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


@dataclass
class FunctionInfo:
    """One function (or method) body in the package."""

    qualname: str                 # "pkg.mod:func" or "pkg.mod:Class.func"
    module: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None
    calls: Set[str] = field(default_factory=set)   # resolved callee qualnames


def _function_bodies(node: ast.AST) -> Iterable[ast.AST]:
    """Every node of a function body, descending into nested defs/lambdas.

    Nested functions and lambdas are treated as part of the enclosing
    function: defining them does not run them, but a reachability linter
    over-approximates there rather than missing a deferred callback.
    """
    for child in ast.walk(node):
        yield child


class CallGraph:
    """Function index + resolved call edges for a set of source files."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self.imports: Dict[str, Dict[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module -> {simple name -> qualname} for module-level functions
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        #: canonical class path ("pkg.mod.Class") -> {method -> qualname}
        self._class_methods: Dict[str, Dict[str, str]] = {}
        self._index()
        self._link()

    # -- indexing --------------------------------------------------------

    def _index(self) -> None:
        for source in self.files:
            self.imports[source.module] = collect_imports(
                source.tree, source.module)
            funcs: Dict[str, str] = {}
            for node in source.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{source.module}:{node.name}"
                    self.functions[qual] = FunctionInfo(
                        qual, source.module, node)
                    funcs[node.name] = qual
                elif isinstance(node, ast.ClassDef):
                    methods: Dict[str, str] = {}
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            qual = f"{source.module}:{node.name}.{item.name}"
                            self.functions[qual] = FunctionInfo(
                                qual, source.module, item, cls=node.name)
                            methods[item.name] = qual
                    self._class_methods[
                        f"{source.module}.{node.name}"] = methods
            self._module_funcs[source.module] = funcs

    # -- edge resolution -------------------------------------------------

    def _resolve_target(self, dotted: Optional[str], module: str
                        ) -> List[str]:
        """Qualnames a canonical dotted call target may refer to."""
        if dotted is None:
            return []
        imports = self.imports.get(module, {})
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head, head)
        full = f"{resolved}.{rest}" if rest else resolved
        # module-level function in the same module
        if not rest and head in self._module_funcs.get(module, {}):
            return [self._module_funcs[module][head]]
        # "pkg.mod.func" — split into (module, func)
        mod_name, _, attr = full.rpartition(".")
        if attr and attr in self._module_funcs.get(mod_name, {}):
            return [self._module_funcs[mod_name][attr]]
        # class constructor: "pkg.mod.Class" -> every __init__/__post_init__
        if full in self._class_methods:
            methods = self._class_methods[full]
            return [methods[m] for m in ("__init__", "__post_init__", "__new__")
                    if m in methods]
        return []

    def _local_instance_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> canonical class path for ``v = Cls(...)`` locals."""
        types: Dict[str, str] = {}
        for node in _function_bodies(info.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                dotted = canonical(node.value.func,
                                   self.imports.get(info.module, {}))
                if dotted is None and isinstance(node.value.func, ast.Name):
                    dotted = node.value.func.id
                if dotted in self._class_methods:
                    types[node.targets[0].id] = dotted
                else:
                    # "Cls" defined in this module
                    local = f"{info.module}.{dotted}" if dotted else None
                    if local in self._class_methods:
                        types[node.targets[0].id] = local
        return types

    def _link(self) -> None:
        for info in self.functions.values():
            imports = self.imports.get(info.module, {})
            instance_types = self._local_instance_types(info)
            for node in _function_bodies(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                # self.<method>() within the defining class
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)):
                    receiver = func.value.id
                    if receiver == "self" and info.cls is not None:
                        methods = self._class_methods.get(
                            f"{info.module}.{info.cls}", {})
                        if func.attr in methods:
                            info.calls.add(methods[func.attr])
                            continue
                    if receiver in instance_types:
                        methods = self._class_methods.get(
                            instance_types[receiver], {})
                        if func.attr in methods:
                            info.calls.add(methods[func.attr])
                            continue
                for qual in self._resolve_target(
                        canonical(func, imports), info.module):
                    info.calls.add(qual)

    # -- reachability ----------------------------------------------------

    def reachable(self, seeds: Iterable[str],
                  skip_module=None) -> Set[str]:
        """Qualnames reachable from ``seeds`` (BFS over resolved edges).

        ``skip_module(module) -> bool`` prunes whole modules from the
        traversal (DT301 prunes the harness: its orchestration
        timestamps are run metadata, outside payload and cache key).
        """
        work = [s for s in seeds if s in self.functions]
        seen: Set[str] = set()
        while work:
            qual = work.pop()
            if qual in seen:
                continue
            info = self.functions.get(qual)
            if info is None:
                continue
            if skip_module is not None and skip_module(info.module):
                continue
            seen.add(qual)
            work.extend(info.calls - seen)
        return seen


@dataclass
class CallSite:
    """One call expression inside a function body, with its resolution."""

    node: ast.Call
    lineno: int
    awaited: bool                  # directly wrapped in ``await ...``
    dotted: Optional[str]          # canonical dotted target ("time.sleep")
    attr: Optional[str]            # terminal name ("sleep" / "claim" / "f")
    callees: Tuple[str, ...] = ()  # resolved in-package qualnames


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The dotted name of a plain annotation (strings and Optional[...] too)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        # Optional[Cls] / "Claim | None" style wrappers: look inside
        inner = node.slice
        if isinstance(inner, ast.Index):       # pragma: no cover (py<3.9)
            inner = inner.value
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return _annotation_name(inner)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left)
    return call_name(node)


class ResolvedCallGraph(CallGraph):
    """Call graph with typed receivers, call sites and coroutine flags.

    On top of the base resolution this pass types three more receiver
    shapes — ``self.<attr>`` assigned a known class in any method of the
    same class, locals/parameters annotated with a known class, and
    ``cls.<attr>`` style module aliases — and keeps per-function
    :class:`CallSite` records so the async-soundness checks can tell a
    direct blocking call from a transitive one and an awaited coroutine
    from a dropped one.
    """

    def __init__(self, files: Sequence[SourceFile]) -> None:
        #: canonical class path -> {attr name -> canonical class path}
        self.self_attr_types: Dict[str, Dict[str, str]] = {}
        #: qualname -> ordered call sites in that function body
        self.sites: Dict[str, List[CallSite]] = {}
        super().__init__(files)
        self._infer_self_attrs()
        self._resolve_sites()
        #: reverse adjacency over the (sharpened) edges
        self.callers: Dict[str, Set[str]] = {}
        for qual, info in self.functions.items():
            for callee in info.calls:
                self.callers.setdefault(callee, set()).add(qual)

    # -- typing ----------------------------------------------------------

    def is_async(self, qual: str) -> bool:
        info = self.functions.get(qual)
        return info is not None and isinstance(info.node,
                                               ast.AsyncFunctionDef)

    def _class_of(self, dotted: Optional[str], module: str) -> Optional[str]:
        """Canonical class path if ``dotted`` names a known class."""
        if dotted is None:
            return None
        if dotted in self._class_methods:
            return dotted
        imports = self.imports.get(module, {})
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head, head)
        full = f"{resolved}.{rest}" if rest else resolved
        if full in self._class_methods:
            return full
        local = f"{module}.{dotted}"
        if local in self._class_methods:
            return local
        return None

    def _infer_self_attrs(self) -> None:
        """``self.attr = Cls(...)`` / ``attr: Cls`` in any method types the attr."""
        for info in self.functions.values():
            if info.cls is None:
                continue
            cls_path = f"{info.module}.{info.cls}"
            attrs = self.self_attr_types.setdefault(cls_path, {})
            for node in ast.walk(info.node):
                target = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    ann = self._class_of(_annotation_name(node.annotation),
                                         info.module)
                    if (ann is not None and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs.setdefault(target.attr, ann)
                if (target is None or not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"):
                    continue
                if isinstance(value, ast.Call):
                    typed = self._class_of(
                        canonical(value.func,
                                  self.imports.get(info.module, {})),
                        info.module)
                    if typed is None and isinstance(value.func, ast.Name):
                        typed = self._class_of(value.func.id, info.module)
                    if typed is not None:
                        attrs.setdefault(target.attr, typed)

    def _typed_locals(self, info: FunctionInfo) -> Dict[str, str]:
        """Local/parameter name -> canonical class path."""
        types = dict(self._local_instance_types(info))
        node = info.node
        arg_lists = [node.args.args, node.args.kwonlyargs]
        arg_lists.append(getattr(node.args, "posonlyargs", []))
        for args in arg_lists:
            for arg in args:
                typed = self._class_of(_annotation_name(arg.annotation),
                                       info.module)
                if typed is not None:
                    types.setdefault(arg.arg, typed)
        for child in ast.walk(node):
            if (isinstance(child, ast.AnnAssign)
                    and isinstance(child.target, ast.Name)):
                typed = self._class_of(_annotation_name(child.annotation),
                                       info.module)
                if typed is not None:
                    types.setdefault(child.target.id, typed)
        return types

    # -- call sites ------------------------------------------------------

    def _site_callees(self, func_expr: ast.AST, info: FunctionInfo,
                      locals_: Dict[str, str]) -> List[str]:
        imports = self.imports.get(info.module, {})
        if isinstance(func_expr, ast.Attribute):
            receiver = func_expr.value
            # self.method()
            if (isinstance(receiver, ast.Name) and receiver.id == "self"
                    and info.cls is not None):
                methods = self._class_methods.get(
                    f"{info.module}.{info.cls}", {})
                if func_expr.attr in methods:
                    return [methods[func_expr.attr]]
                # self.attr where attr is typed: constructor call shape
                attr_types = self.self_attr_types.get(
                    f"{info.module}.{info.cls}", {})
                if func_expr.attr in attr_types:
                    return list(self._resolve_target(
                        attr_types[func_expr.attr], info.module))
            # self.attr.method()
            if (isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                    and info.cls is not None):
                attr_types = self.self_attr_types.get(
                    f"{info.module}.{info.cls}", {})
                cls_path = attr_types.get(receiver.attr)
                if cls_path is not None:
                    methods = self._class_methods.get(cls_path, {})
                    if func_expr.attr in methods:
                        return [methods[func_expr.attr]]
            # typed_local.method()
            if isinstance(receiver, ast.Name) and receiver.id in locals_:
                methods = self._class_methods.get(locals_[receiver.id], {})
                if func_expr.attr in methods:
                    return [methods[func_expr.attr]]
        return list(self._resolve_target(canonical(func_expr, imports),
                                         info.module))

    def _resolve_sites(self) -> None:
        for qual, info in self.functions.items():
            imports = self.imports.get(info.module, {})
            locals_ = self._typed_locals(info)
            awaited_calls = {
                id(node.value) for node in ast.walk(info.node)
                if isinstance(node, ast.Await)
                and isinstance(node.value, ast.Call)
            }
            sites: List[CallSite] = []
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func_expr = node.func
                if isinstance(func_expr, ast.Attribute):
                    attr: Optional[str] = func_expr.attr
                elif isinstance(func_expr, ast.Name):
                    attr = func_expr.id
                else:
                    attr = None
                callees = self._site_callees(func_expr, info, locals_)
                info.calls.update(callees)
                sites.append(CallSite(
                    node=node, lineno=node.lineno,
                    awaited=id(node) in awaited_calls,
                    dotted=canonical(func_expr, imports), attr=attr,
                    callees=tuple(sorted(callees))))
            sites.sort(key=lambda s: (s.lineno, s.node.col_offset))
            self.sites[qual] = sites
