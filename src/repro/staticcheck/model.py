"""Source model: parsed files, pragma suppressions, findings, report.

A :class:`SourceFile` is one parsed module with its dotted name relative
to the analysis root and its ``# staticcheck: ignore[...]`` pragma map.
A :class:`Finding` is one rule hit anchored to a line; the
:class:`CheckReport` aggregates the whole run and serializes to the JSON
schema documented in docs/staticcheck.md.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.staticcheck.rules import RULES, Severity, resolve

#: version of the ``--json`` payload layout (bump on breaking changes)
REPORT_SCHEMA_VERSION = 1

#: ``# staticcheck: ignore`` (whole line) or ``ignore[DT101, set-iteration]``
_PRAGMA = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")

#: the pragma token that suppresses every rule on the line
ALL_RULES = "*"


class PragmaError(ValueError):
    """A pragma names a rule the registry does not know."""


def parse_pragmas(text: str, path: str = "<source>") -> Dict[int, Set[str]]:
    """Line number -> suppressed rule IDs (``{"*"}`` = all rules).

    Pragmas are real ``#`` comments (docstrings that merely *mention*
    the syntax do not count).  A trailing pragma suppresses findings on
    its own line; a pragma inside a comment-only block also covers the
    first code line after the block, so a multi-line justification can
    sit above the code it excuses.  When that first code line is a
    decorator, :func:`attach_decorator_pragmas` extends the coverage to
    the decorated ``def``/``class`` line itself — findings anchor there,
    not on the ``@`` line.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):
        return suppressions      # the ast parse will report the real error
    comment_only = {
        token.start[0] for token in tokens
        if token.type == tokenize.COMMENT
        and token.line[: token.start[1]].strip() == ""
    }
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if not match:
            continue
        lineno = token.start[0]
        spec = match.group("rules")
        if spec is None:
            rules = {ALL_RULES}
        else:
            try:
                rules = {resolve(t) for t in spec.split(",") if t.strip()}
            except ValueError as exc:
                raise PragmaError(f"{path}:{lineno}: {exc}") from None
            if not rules:
                rules = {ALL_RULES}
        suppressions.setdefault(lineno, set()).update(rules)
        if lineno in comment_only:
            # cover the rest of the comment block and the code line below
            covered = lineno + 1
            while covered in comment_only:
                suppressions.setdefault(covered, set()).update(rules)
                covered += 1
            suppressions.setdefault(covered, set()).update(rules)
    return suppressions


def attach_decorator_pragmas(tree: ast.Module,
                             suppressions: Dict[int, Set[str]]) -> None:
    """Extend pragmas on decorator lines to the decorated definition.

    A comment-block pragma above ``@dataclass`` lands on the ``@`` line,
    but findings for the class or (async) function anchor at the
    ``class``/``def`` line below the whole decorator stack.  Walking the
    AST instead of counting brackets keeps multi-line decorator calls
    and stacked decorators correct for free.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        rules: Set[str] = set()
        for decorator in node.decorator_list:
            rules.update(suppressions.get(decorator.lineno, set()))
        if rules:
            suppressions.setdefault(node.lineno, set()).update(rules)


@dataclass
class SourceFile:
    """One parsed module under analysis."""

    path: Path                    # absolute
    rel: str                      # posix path relative to the analysis root
    module: str                   # dotted name relative to the root
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(root).as_posix()
        module = rel[:-3].replace("/", ".")
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        tree = ast.parse(text, filename=str(path))
        suppressions = parse_pragmas(text, rel)
        attach_decorator_pragmas(tree, suppressions)
        return cls(path=path, rel=rel, module=module, text=text,
                   tree=tree, suppressions=suppressions)

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and (rule in rules or ALL_RULES in rules)


@dataclass(frozen=True)
class Finding:
    """One rule hit, anchored to a source line."""

    rule: str
    path: str          # posix, relative to the analysis root
    line: int
    col: int
    message: str

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    @property
    def key(self) -> str:
        """The baseline identity (line-precise, message-insensitive)."""
        return f"{self.rule}:{self.path}:{self.line}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.value:<7} {self.rule} "
                f"[{RULES[self.rule].name}] {self.message}")

    def to_json_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class CheckReport:
    """Everything one staticcheck run found."""

    root: str
    files: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0          # pragma-suppressed finding count
    baselined: int = 0           # baseline-suppressed finding count

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def ok(self, strict: bool = False) -> bool:
        if self.errors:
            return False
        return not (strict and self.warnings)

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    def to_json_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "root": self.root,
            "files": self.files,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [f.to_json_dict() for f in self.findings],
        }

    def render(self, verbose: bool = False) -> str:
        lines = [f.render() for f in self.findings]
        status = ("clean" if not self.findings else
                  f"{len(self.errors)} error(s), "
                  f"{len(self.warnings)} warning(s)")
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} pragma-suppressed")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(f"staticcheck: {self.files} file(s), {status}{suffix}")
        if verbose and not self.findings:
            lines.insert(0, f"root: {self.root}")
        return "\n".join(lines)


def call_name(node: ast.AST) -> Optional[str]:
    """A dotted name for a call target, when statically evident.

    ``Name`` gives ``"f"``; nested ``Attribute`` chains over names give
    ``"a.b.c"``; anything computed gives ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_float_constant(node: ast.AST) -> bool:
    """A float literal, including a negated one (``-0.5``)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)
