"""The staticcheck rule registry.

Every rule has a stable ID (``DT*`` determinism, ``FH*`` float hygiene,
``FS*`` fork safety, ``CK*`` cache-key soundness, ``AS*`` async
soundness, ``SH*`` shared-state isolation, ``RS*`` resource lifecycle),
a severity, and a one-line summary; the full reference lives in
docs/staticcheck.md.  The
registry is what the CLI's ``--rule`` filter, the pragma parser and the
JSON report key off, so IDs are append-only: retiring a rule leaves its
ID reserved.

``REGISTRY_VERSION`` participates in the ``ext_staticcheck`` artefact's
store config descriptor — bump it whenever a rule is added, removed, or
its detection logic changes enough to alter findings, so cached
staticcheck cells invalidate with the rule set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

#: bump on any change to the rule set or a rule's detection logic
REGISTRY_VERSION = 2


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One named, suppressible invariant check."""

    id: str
    name: str            # short kebab-case slug (also valid in pragmas)
    severity: Severity
    family: str          # determinism | float-hygiene | fork-safety | cache-key
    summary: str


#: declaration order = documentation order
_ALL_RULES = (
    Rule("DT101", "set-iteration", Severity.WARNING, "determinism",
         "iteration over a set/frozenset without sorted() — order depends "
         "on hashing, not the program"),
    Rule("DT102", "unsorted-dir-listing", Severity.WARNING, "determinism",
         "iteration over os.listdir()/glob()/iterdir() output without "
         "sorted() — order depends on the filesystem"),
    Rule("DT201", "unseeded-random", Severity.ERROR, "determinism",
         "module-global random / numpy.random use — draw from an "
         "explicitly seeded generator instead"),
    Rule("DT301", "wallclock-in-artefact", Severity.ERROR, "determinism",
         "time/datetime/uuid wall-clock value reachable from an artefact "
         "payload or hashing entry point"),
    Rule("FH101", "float-dict-key", Severity.ERROR, "float-hygiene",
         "raw float used as a dict key — round() to a fixed precision "
         "first (the PR 2 _program_cache bug class)"),
    Rule("FH102", "float-equality", Severity.WARNING, "float-hygiene",
         "== / != against a float literal — compare rounded values or "
         "use an epsilon"),
    Rule("FS101", "module-mutable-state", Severity.ERROR, "fork-safety",
         "module-level mutable container (or global rebinding) mutated "
         "from function code — state smuggled across fork()"),
    Rule("FS102", "module-lock", Severity.WARNING, "fork-safety",
         "module-level lock/condition/semaphore — held locks are copied "
         "locked into fork children"),
    Rule("FS103", "module-rng", Severity.ERROR, "fork-safety",
         "module-level RNG instance — fork children inherit identical "
         "generator state"),
    Rule("FS104", "module-open-handle", Severity.ERROR, "fork-safety",
         "module-level open() handle — shared file offsets across "
         "fork()ed workers"),
    Rule("CK101", "dynamic-import", Severity.WARNING, "cache-key",
         "non-literal importlib.import_module()/__import__() in "
         "fingerprinted code — the code fingerprint cannot see the "
         "dispatch target"),
    Rule("CK102", "dynamic-getattr", Severity.WARNING, "cache-key",
         "getattr() with a computed attribute name in fingerprinted "
         "code — fingerprint-invisible dispatch"),
    Rule("AS101", "blocking-call-in-coroutine", Severity.ERROR,
         "async-soundness",
         "blocking primitive (time.sleep, sync file/socket I/O, "
         "subprocess, store/queue disk ops) reachable from a coroutine — "
         "it stalls every session on the event loop"),
    Rule("AS102", "unawaited-coroutine", Severity.ERROR, "async-soundness",
         "coroutine called but never awaited — the body silently never "
         "runs"),
    Rule("AS103", "orphan-task", Severity.ERROR, "async-soundness",
         "create_task()/ensure_future() result dropped — the task can be "
         "garbage-collected mid-flight and its exceptions are lost"),
    Rule("AS104", "lock-across-await", Severity.ERROR, "async-soundness",
         "synchronous lock held across an await — any other task needing "
         "the lock deadlocks the event loop"),
    Rule("SH201", "class-level-mutable", Severity.ERROR, "shared-state",
         "mutable container in a class body mutated through self — one "
         "object is shared by every instance (and every session)"),
    Rule("SH202", "read-await-write-race", Severity.WARNING, "shared-state",
         "instance attribute read before and written after an await in a "
         "concurrently spawned coroutine — another task can interleave "
         "at the await"),
    Rule("SH203", "fork-closure-target", Severity.ERROR, "shared-state",
         "process target is a closure/lambda/bound method — it drags its "
         "captured state across fork()/spawn"),
    Rule("RS301", "leaked-handle", Severity.ERROR, "resource-lifecycle",
         "file/socket handle acquired outside `with` not closed on every "
         "CFG path (including exception edges)"),
    Rule("RS302", "leaked-lease", Severity.ERROR, "resource-lifecycle",
         "queue lease claimed (or received) but not completed/released "
         "on every CFG path — the cell stays locked until TTL expiry"),
    Rule("RS303", "orphan-tempfile", Severity.WARNING, "resource-lifecycle",
         "tmp file created but not renamed/removed on every CFG path — "
         "crash debris accumulates in the store"),
)

#: id -> Rule (insertion order = documentation order).  Built in one
#: shot at import time: the registry is never mutated afterwards, so it
#: is identical in the scheduler parent and every fork worker (FS101).
RULES: Dict[str, Rule] = {rule.id: rule for rule in _ALL_RULES}

#: slug -> id, for pragmas written with the readable name
_BY_NAME: Dict[str, str] = {rule.name: rule.id for rule in _ALL_RULES}

if len(RULES) != len(_ALL_RULES) or len(_BY_NAME) != len(_ALL_RULES):
    raise AssertionError("duplicate staticcheck rule id or slug")


def resolve(token: str) -> str:
    """Map a rule ID or slug (as written in pragmas / --rule) to its ID.

    Raises :class:`ValueError` for an unknown token so typo'd pragmas and
    CLI filters fail loudly instead of silently suppressing nothing.
    """
    token = token.strip()
    if token in RULES:
        return token
    if token in _BY_NAME:
        return _BY_NAME[token]
    known = ", ".join(list(RULES) + sorted(_BY_NAME))
    raise ValueError(f"unknown staticcheck rule {token!r}; known: {known}")


def resolve_many(tokens: Iterable[str]) -> List[str]:
    return [resolve(token) for token in tokens]


#: family name -> rule IDs, in declaration order
FAMILIES: Dict[str, List[str]] = {}
for _rule in _ALL_RULES:
    FAMILIES.setdefault(_rule.family, []).append(_rule.id)
del _rule


def expand(tokens: Iterable[str]) -> List[str]:
    """Like :func:`resolve_many`, but a family name selects every rule
    in that family (``--rule async-soundness``).  Pragmas stay
    single-rule on purpose — a blanket family suppression hides too
    much — so this is for CLI filters only.
    """
    out: List[str] = []
    for token in tokens:
        stripped = token.strip()
        if stripped in FAMILIES:
            out.extend(FAMILIES[stripped])
        else:
            out.append(resolve(stripped))
    return out
