"""Fork-safety rules: FS101 mutated module state, FS102 module locks,
FS103 module RNGs, FS104 module file handles.

The fork scheduler (:mod:`repro.harness.scheduler`) gives every worker a
copy-on-write snapshot of the parent's module state.  Module-level
mutable state that functions write to therefore forks into divergent
copies (or, pre-fork, smuggles parent history into every child); locks
fork in whatever state they were held in; RNG instances fork mid-stream
so children replay identical draws; file handles share offsets.

A module-level container that is only populated at import time (the
registry pattern — every mutation happens at module top level) is *not*
flagged: import-time state is identical in parent and children by
construction.  Deliberate cross-fork seams (the harness injection hook)
and deterministic memo caches carry an inline pragma with their
justification instead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.staticcheck.callgraph import canonical, collect_imports
from repro.staticcheck.model import Finding, SourceFile

_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.deque", "collections.Counter", "collections.ChainMap",
}
_LOCK_CONSTRUCTORS = {
    f"{mod}.{name}"
    for mod in ("threading", "multiprocessing")
    for name in ("Lock", "RLock", "Condition", "Semaphore",
                 "BoundedSemaphore", "Event", "Barrier")
}
_RNG_CONSTRUCTORS = {"random.Random", "numpy.random.RandomState",
                     "numpy.random.default_rng"}
_OPEN_CONSTRUCTORS = {"open", "io.open"}

#: container method calls that mutate the receiver
_MUTATORS = {"add", "append", "appendleft", "extend", "extendleft",
             "insert", "update", "setdefault", "pop", "popitem",
             "popleft", "remove", "discard", "clear"}


def _module_level_assigns(tree: ast.Module):
    """(name, value, lineno) for simple module-level assignments."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            yield stmt.targets[0].id, stmt.value, stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            yield stmt.target.id, stmt.value, stmt.lineno


def _function_scopes(tree: ast.Module):
    """Every function/method body in the module (at any nesting)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _mutations_in_functions(tree: ast.Module, names: Set[str]
                            ) -> Dict[str, int]:
    """name -> first line where function code mutates or rebinds it."""
    hits: Dict[str, int] = {}

    def record(name: str, lineno: int) -> None:
        if name in names and (name not in hits or lineno < hits[name]):
            hits[name] = lineno

    for func in _function_scopes(tree):
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                for name in node.names:
                    record(name, node.lineno)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in _MUTATORS):
                record(node.func.value.id, node.lineno)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, (ast.Assign,
                                                             ast.Delete))
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)):
                        record(target.value.id, target.lineno)
    return hits


def check_file(source: SourceFile) -> List[Finding]:
    imports = collect_imports(source.tree, source.module)
    findings: List[Finding] = []

    def classify(value: ast.AST) -> Optional[str]:
        if isinstance(value, (ast.List, ast.Dict, ast.Set,
                              ast.ListComp, ast.DictComp, ast.SetComp)):
            return "container"
        if isinstance(value, ast.Call):
            dotted = canonical(value.func, imports)
            if dotted in _MUTABLE_CONSTRUCTORS:
                return "container"
            if dotted in _LOCK_CONSTRUCTORS:
                return "lock"
            if dotted in _RNG_CONSTRUCTORS:
                return "rng"
            if dotted in _OPEN_CONSTRUCTORS:
                return "open"
        return None

    containers: Dict[str, int] = {}
    plain_names: Dict[str, int] = {}
    for name, value, lineno in _module_level_assigns(source.tree):
        kind = classify(value)
        if kind == "container":
            containers[name] = lineno
        elif kind == "lock":
            findings.append(Finding(
                rule="FS102", path=source.rel, line=lineno, col=1,
                message=f"module-level synchronization primitive "
                        f"{name!r} — fork children inherit its held "
                        f"state; create it per-process"))
        elif kind == "rng":
            findings.append(Finding(
                rule="FS103", path=source.rel, line=lineno, col=1,
                message=f"module-level RNG instance {name!r} — fork "
                        f"children replay identical draws; construct "
                        f"seeded generators per use"))
        elif kind == "open":
            findings.append(Finding(
                rule="FS104", path=source.rel, line=lineno, col=1,
                message=f"module-level open file handle {name!r} — "
                        f"fork children share the offset; open inside "
                        f"the consuming function"))
        else:
            plain_names[name] = lineno

    watched = set(containers) | set(plain_names)
    mutations = _mutations_in_functions(source.tree, watched)
    for name, where in sorted(mutations.items()):
        lineno = containers.get(name, plain_names.get(name, where))
        what = ("module-level mutable container"
                if name in containers else "module-level name")
        findings.append(Finding(
            rule="FS101", path=source.rel, line=lineno, col=1,
            message=f"{what} {name!r} is mutated from function code "
                    f"(line {where}) — state diverges across fork(); "
                    f"move it into an object the caller owns"))
    return findings
