"""Harness integration: staticcheck reports as a store artefact.

Exposes the uniform experiment interface (``run`` / ``run_one`` /
``render``) so ``python -m repro.harness run ext_staticcheck`` lints the
source tree in parallel and lands per-subpackage summaries in the
content-addressed result store.  The cell axis is not the workload grid:
each cell is one ``repro`` subpackage (plus ``toplevel`` for the
package's own top-level modules), declared through
``ArtefactSpec.cells``.

Cache-key notes: the store's code fingerprint covers the whole analyzed
tree *except* ``repro/harness`` — so the artefact's configuration
descriptor (see ``repro.harness.registry``) folds in a fingerprint of
the harness tree plus the rule ``REGISTRY_VERSION``, and cached cells
invalidate whenever the analyzed code, the analyzer, or the rule set
changes.  Cells report *raw* findings — neither the checked-in baseline
nor its suppressions apply here (inline pragmas do), so the store always
records ground truth.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.staticcheck import check_sources, collect_sources, default_root

#: the cell covering ``repro/*.py`` (modules outside any subpackage)
TOPLEVEL = "toplevel"


def package_root() -> Path:
    """The ``repro`` package directory itself."""
    return Path(__file__).resolve().parent.parent


def scopes() -> List[str]:
    """Cell names: every ``repro`` subpackage, then ``toplevel``."""
    names = sorted(entry.name for entry in package_root().iterdir()
                   if entry.is_dir() and (entry / "__init__.py").is_file())
    return names + [TOPLEVEL]


def _in_scope(rel_path: str, scope: str) -> bool:
    parts = rel_path.split("/")
    if scope == TOPLEVEL:
        return len(parts) == 2          # ["repro", "<module>.py"]
    return len(parts) > 2 and parts[1] == scope


@dataclass
class StaticcheckRow:
    """One subpackage's lint summary (store/JSON serializable)."""

    scope: str
    files: int
    errors: int
    warnings: int
    findings: List[str]   # rendered ``path:line:col: ...`` lines


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[StaticcheckRow]:
    """Analyze the tree once and summarize the requested scopes.

    ``workloads`` names *scopes* here (the harness reuses the parameter
    slot for the cell axis); ``scale`` is accepted for interface
    uniformity and ignored — static analysis has no workload size.
    """
    del scale
    known = scopes()
    selected = list(workloads) if workloads else known
    unknown = [name for name in selected if name not in known]
    if unknown:
        raise ValueError(
            f"unknown staticcheck scope(s) {', '.join(unknown)}; "
            f"valid scopes: {', '.join(known)}")

    root = default_root()
    sources = collect_sources([package_root()], root)
    report = check_sources(sources, root)

    rows = []
    for scope in selected:
        in_scope = [f for f in report.findings if _in_scope(f.path, scope)]
        rows.append(StaticcheckRow(
            scope=scope,
            files=sum(1 for s in sources if _in_scope(s.rel, scope)),
            errors=sum(1 for f in in_scope
                       if f.severity.value == "error"),
            warnings=sum(1 for f in in_scope
                         if f.severity.value == "warning"),
            findings=[f.render() for f in in_scope],
        ))
    return rows


def run_one(workload: str, scale: float, **kwargs) -> List[StaticcheckRow]:
    """One scope cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[StaticcheckRow]) -> str:
    table_rows = [
        [row.scope, str(row.files), str(row.errors), str(row.warnings),
         "clean" if not row.findings else "FINDINGS"]
        for row in rows
    ]
    headers = ["scope", "files", "errors", "warnings", "status"]
    lines = [format_table(
        headers, table_rows,
        title="Staticcheck: invariant lint by subpackage")]
    for row in rows:
        lines.extend(f"  {text}" for text in row.findings)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scopes", nargs="*", default=None, metavar="SCOPE",
        help="subset of scopes to report (default: all; see --list-scopes)")
    parser.add_argument(
        "--list-scopes", action="store_true",
        help="print the cell axis and exit")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the rows as machine-readable JSON "
             "(the same serialization the repro.harness result store uses)")
    args = parser.parse_args(argv)
    if args.list_scopes:
        for name in scopes():
            print(name)
        return 0
    rows = run(workloads=args.scopes)
    if args.json:
        from repro.harness.store import write_rows_json

        write_rows_json(args.json, rows)
    print(render(rows))
    return 1 if any(row.errors for row in rows) else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
