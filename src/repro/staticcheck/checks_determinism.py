"""Determinism rules: DT101 set iteration, DT102 directory listings,
DT201 unseeded randomness, DT301 wall-clock reachability.

DT101/DT102 are scope-local: within each function (and the module top
level) the pass tracks names bound to unordered producers (set displays,
``set()``/``frozenset()``, ``os.listdir``/``glob``/``iterdir``, set
algebra over tracked names) and flags order-sensitive consumption — a
``for`` loop, a list/generator comprehension, ``list()``/``tuple()``/
``enumerate()``/``join()`` — that is not wrapped in ``sorted(...)``.
Order-insensitive uses (membership, ``len``/``any``/``all``/``min``/
``max``/``sum``/``sorted``, set-to-set conversion, ``SetComp``) stay
silent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.callgraph import CallGraph, canonical, collect_imports
from repro.staticcheck.model import Finding, SourceFile, call_name

#: canonical callables that return unordered collections
_SET_PRODUCERS = {"set", "frozenset"}
_DIR_PRODUCERS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
#: method names that list directories on any receiver (pathlib idioms)
_DIR_METHODS = {"glob", "rglob", "iterdir"}
#: set methods that return another set
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
#: consumers whose output order follows input order (flagged over unordered)
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "iter", "reversed",
                      "map", "filter"}
#: consumers that erase ordering again (never flagged)
_NEUTRAL_CONSUMERS = {"sorted", "len", "any", "all", "min", "max", "sum",
                      "set", "frozenset", "bool"}

#: module-global randomness that must be replaced by a seeded generator
_SEEDED_RANDOM = {"random.Random", "random.SystemRandom"}
_SEEDED_NUMPY = {"numpy.random.Generator", "numpy.random.SeedSequence"}
#: numpy constructors that are fine *if* given an explicit seed argument
_NUMPY_SEEDABLE = {"numpy.random.default_rng", "numpy.random.RandomState"}

#: wall-clock / uniqueness reads that must never feed payloads or keys
WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.strftime", "time.localtime", "time.gmtime", "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
}

#: entry-point names seeding the DT301 reachability pass
ENTRY_POINT_NAMES = ("run", "run_one", "render", "main")


def _module_is_harness(module: str) -> bool:
    return "harness" in module.split(".")


# -- DT101 / DT102 -------------------------------------------------------

def _unordered_kind(node: ast.AST, imports: Dict[str, str],
                    names: Dict[str, str]) -> Optional[str]:
    """"set" / "dir" when ``node`` evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Name):
        return names.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_unordered_kind(node.left, imports, names)
                or _unordered_kind(node.right, imports, names))
    if isinstance(node, ast.Call):
        dotted = canonical(node.func, imports)
        if dotted in _SET_PRODUCERS:
            return "set"
        if dotted in _DIR_PRODUCERS:
            return "dir"
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _DIR_METHODS:
                return "dir"
            if (node.func.attr in _SET_METHODS
                    and _unordered_kind(node.func.value, imports, names)):
                return "set"
    return None


def _scope_names(body: Iterable[ast.stmt],
                 imports: Dict[str, str]) -> Dict[str, str]:
    """Names bound to unordered producers within one scope.

    Flow-insensitive with an orderliness bias: a name that is *ever*
    rebound to something not known-unordered (``x = sorted(x)``) is
    dropped, so reordered rebinds never false-positive.
    """
    assigns: List[Tuple[str, ast.AST]] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not stmt:
                continue
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                assigns.append((node.targets[0].id, node.value))
    names: Dict[str, str] = {}
    # two rounds so chained aliases (t = s | u) resolve
    for _ in range(2):
        for name, value in assigns:
            kind = _unordered_kind(value, imports, names)
            if kind:
                names[name] = kind
    for name, value in assigns:           # orderliness bias
        if name in names and not _unordered_kind(value, imports, names):
            del names[name]
    return names


class _IterationVisitor(ast.NodeVisitor):
    """Flags order-sensitive consumption of unordered collections."""

    def __init__(self, source: SourceFile, imports: Dict[str, str]) -> None:
        self.source = source
        self.imports = imports
        self.findings: List[Finding] = []
        self._scopes: List[Dict[str, str]] = [
            _scope_names(source.tree.body, imports)]
        #: comprehensions whose result feeds an order-erasing consumer
        self._neutral: Set[ast.AST] = set()

    # scope management ----------------------------------------------------

    def _enter_function(self, node) -> None:
        self._scopes.append(_scope_names(node.body, self.imports))
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = visit_AsyncFunctionDef = _enter_function

    def _kind(self, node: ast.AST) -> Optional[str]:
        merged: Dict[str, str] = {}
        for scope in self._scopes:
            merged.update(scope)
        return _unordered_kind(node, self.imports, merged)

    # consumption sites ---------------------------------------------------

    def _flag(self, node: ast.AST, kind: str, context: str) -> None:
        rule = "DT101" if kind == "set" else "DT102"
        what = ("set/frozenset" if kind == "set"
                else "directory-listing output")
        self.findings.append(Finding(
            rule=rule, path=self.source.rel,
            line=node.lineno, col=node.col_offset + 1,
            message=f"{context} iterates {what} without sorted() — "
                    f"the order is not defined by the program"))

    def _check_iter(self, iter_node: ast.AST, context: str) -> None:
        kind = self._kind(iter_node)
        if kind:
            self._flag(iter_node, kind, context)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node, context: str) -> None:
        if node not in self._neutral:
            for gen in node.generators:
                self._check_iter(gen.iter, context)
        self.generic_visit(node)

    def visit_ListComp(self, node) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node) -> None:
        self._check_comprehension(node, "generator expression")

    def visit_DictComp(self, node) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_SetComp(self, node) -> None:
        # set -> set keeps the result unordered; nothing order-sensitive
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = canonical(node.func, self.imports)
        if dotted in _ORDERED_CONSUMERS and node.args:
            self._check_iter(node.args[0], f"{dotted}()")
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join" and node.args):
            self._check_iter(node.args[0], "str.join()")
        elif dotted in _NEUTRAL_CONSUMERS and node.args:
            # sorted(x for x in s) erases order just like sorted(s)
            if isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp)):
                self._neutral.add(node.args[0])
        self.generic_visit(node)


# -- DT201 ---------------------------------------------------------------

def _check_unseeded_random(source: SourceFile,
                           imports: Dict[str, str]) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = canonical(node.func, imports)
        if dotted is None:
            continue
        message = None
        if dotted.startswith("random.") and dotted not in _SEEDED_RANDOM:
            message = (f"{dotted}() draws from the module-global RNG; "
                       f"use an explicitly seeded random.Random instead")
        elif dotted in _NUMPY_SEEDABLE:
            if not node.args and not node.keywords:
                message = (f"{dotted}() without a seed is "
                           f"nondeterministic; pass an explicit seed")
        elif (dotted.startswith("numpy.random.")
                and dotted not in _SEEDED_NUMPY):
            message = (f"{dotted}() uses numpy's module-global RNG; "
                       f"use numpy.random.default_rng(seed) instead")
        if message:
            findings.append(Finding(
                rule="DT201", path=source.rel, line=node.lineno,
                col=node.col_offset + 1, message=message))
    return findings


# -- DT301 ---------------------------------------------------------------

def _wallclock_calls(info_node: ast.AST,
                     imports: Dict[str, str]) -> List[Tuple[ast.Call, str]]:
    calls = []
    for node in ast.walk(info_node):
        if isinstance(node, ast.Call):
            dotted = canonical(node.func, imports)
            if dotted in WALLCLOCK:
                calls.append((node, dotted))
    return calls


def check_wallclock(files, graph: CallGraph) -> List[Finding]:
    """DT301 over a file set: wall-clock reads reachable from artefact
    entry points (``run``/``run_one``/``render``/``main`` outside the
    harness) or from hashing modules, plus any import-time read."""
    seeds = []
    for qual, info in graph.functions.items():
        if _module_is_harness(info.module):
            continue
        simple = qual.rsplit(":", 1)[1]
        if info.cls is None and simple in ENTRY_POINT_NAMES:
            seeds.append(qual)
        if info.module.split(".")[-1] == "hashing":
            seeds.append(qual)
    reachable = graph.reachable(seeds, skip_module=_module_is_harness)

    findings: List[Finding] = []
    by_module = {source.module: source for source in files}
    for qual in sorted(reachable):
        info = graph.functions[qual]
        source = by_module.get(info.module)
        if source is None:
            continue
        imports = graph.imports.get(info.module, {})
        for node, dotted in _wallclock_calls(info.node, imports):
            findings.append(Finding(
                rule="DT301", path=source.rel, line=node.lineno,
                col=node.col_offset + 1,
                message=f"{dotted}() is reachable from artefact entry "
                        f"point(s) via {qual} — wall-clock values must "
                        f"not feed payloads or cache keys"))
    # import-time wall-clock reads (module top level, any non-harness file)
    for source in files:
        if _module_is_harness(source.module):
            continue
        imports = graph.imports.get(source.module, {})
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node, dotted in _wallclock_calls(stmt, imports):
                findings.append(Finding(
                    rule="DT301", path=source.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=f"{dotted}() at import time — module state "
                            f"must not depend on the clock"))
    return findings


# -- entry point ---------------------------------------------------------

def check_file(source: SourceFile) -> List[Finding]:
    """The per-file determinism rules (DT101/DT102/DT201)."""
    imports = collect_imports(source.tree, source.module)
    visitor = _IterationVisitor(source, imports)
    visitor.visit(source.tree)
    return visitor.findings + _check_unseeded_random(source, imports)
