"""Resource-lifecycle rules: RS301 leaked handles, RS302 leaked queue
leases, RS303 orphaned tmp files.

These are the path-sensitive checks the CFG IR exists for.  For every
resource acquired in a function body — a handle from ``open``/``os.open``
/``socket``/``Pipe``, a lease from ``queue.claim(...)`` (or received as a
``Claim``-annotated parameter), a ``*.tmp`` path destined for an atomic
rename — the pass searches the function's CFG for a path from the
acquisition to the function's normal or exceptional exit on which the
resource is neither released nor handed off.  Exception edges are real
paths here: ``put()`` raising between ``claim()`` and ``complete()``
leaves the lease locked until TTL expiry, which is exactly the bug class
the worker kill drills provoke dynamically.

Ownership transfer is conservative-quiet: returning the resource,
storing it on ``self``, aliasing it, or passing it *bare* to another
call all count as escapes and end the obligation locally (``worker_loop``
hands its claim to ``_run_claim``; the leak check then applies inside
``_run_claim`` via its ``Claim``-typed parameter).  Method calls *on*
the resource and attribute projections (``claim.key``) are mere uses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import canonical, collect_imports
from repro.staticcheck.ir import EDGE_NEXT, FunctionCFG, build_cfg, \
    header_exprs, local_walk
from repro.staticcheck.model import Finding, SourceFile

#: canonical constructors returning one closable handle
_HANDLE_CTORS = {"open", "io.open", "os.fdopen", "os.open",
                 "socket.socket", "socket.create_connection"}
#: constructors returning a *pair* of closable handles
_PAIR_CTORS_ATTR = {"Pipe"}
_PAIR_CTORS = {"multiprocessing.Pipe", "socket.socketpair"}

#: lease terminal operations (on the queue, naming the claim)
_LEASE_TERMINALS = {"complete", "release", "finish_failed"}

#: canonical functions that consume/retire a tmp path (first argument)
_TMP_TERMINALS = {"os.replace", "os.rename", "os.unlink", "os.remove",
                  "shutil.move"}
#: Path methods that retire the receiver
_TMP_TERMINAL_METHODS = {"replace", "rename", "unlink"}
#: calls that merely *use* a tmp path without taking ownership
_TMP_USERS = {"open", "io.open", "str", "repr"}


@dataclass
class _Resource:
    rule: str            # RS301 / RS302 / RS303
    name: str            # the local variable holding it
    node_id: int         # acquiring CFG node (entry for parameters)
    lineno: int
    what: str            # human description for the message


def _contains_name(root: ast.AST, name: str) -> bool:
    for node in ast.walk(root):
        if isinstance(node, ast.Name) and node.id == name:
            return True
    return False


def _whole_ref(root: ast.AST, name: str) -> bool:
    """``name`` appears as a whole-object reference (not a projection).

    ``claim`` in ``other = claim`` transfers the object; ``claim`` in
    ``spec = claim.spec`` or ``queue.release(claim.key)`` only projects
    an attribute out of it and leaves ownership where it was.
    """
    parents = {id(child): parent
               for parent in ast.walk(root)
               for child in ast.iter_child_nodes(parent)}
    for node in ast.walk(root):
        if not (isinstance(node, ast.Name) and node.id == name):
            continue
        parent = parents.get(id(node))
        if (isinstance(parent, (ast.Attribute, ast.Subscript))
                and parent.value is node):
            continue
        return True
    return False


def _exprs(stmt: ast.stmt) -> List[ast.AST]:
    out: List[ast.AST] = []
    for root in header_exprs(stmt):
        out.append(root)
        out.extend(local_walk(root))
    return out


def _classify(stmt: ast.stmt, res: _Resource,
              imports: Dict[str, str]) -> Optional[str]:
    """"release" / "escape" / None for one CFG node w.r.t. a resource."""
    v = res.name
    release = False
    escape = False
    for node in _exprs(stmt):
        if isinstance(node, ast.Call):
            dotted = canonical(node.func, imports)
            attr = (node.func.attr
                    if isinstance(node.func, ast.Attribute) else None)
            receiver_is_v = (isinstance(node.func, ast.Attribute)
                             and isinstance(node.func.value, ast.Name)
                             and node.func.value.id == v)
            bare_arg = any(
                isinstance(arg, ast.Name) and arg.id == v
                for arg in list(node.args)
                + [kw.value for kw in node.keywords])
            if res.rule == "RS301":
                if receiver_is_v and attr == "close":
                    release = True
                elif receiver_is_v:
                    pass                         # f.read() etc: use
                elif bare_arg and dotted == "os.close":
                    release = True
                elif bare_arg and dotted == "os.fdopen":
                    escape = True                # fd ownership transfers
                elif bare_arg:
                    escape = True
            elif res.rule == "RS302":
                mentions_v = any(_contains_name(arg, v)
                                 for arg in list(node.args)
                                 + [kw.value for kw in node.keywords])
                if attr in _LEASE_TERMINALS and mentions_v:
                    release = True
                elif receiver_is_v:
                    pass                         # claim.method(): use
                elif bare_arg:
                    escape = True                # handed off whole
            elif res.rule == "RS303":
                first_arg = node.args[0] if node.args else None
                if (dotted in _TMP_TERMINALS and first_arg is not None
                        and _contains_name(first_arg, v)):
                    release = True
                elif receiver_is_v and attr in _TMP_TERMINAL_METHODS:
                    release = True
                elif receiver_is_v:
                    pass                         # tmp.write_bytes(): use
                elif bare_arg and dotted in _TMP_USERS:
                    pass
                elif bare_arg:
                    escape = True
        elif isinstance(node, ast.Return):
            if node.value is not None and _whole_ref(node.value, v):
                escape = True
        elif isinstance(node, ast.Raise):
            if any(node_part is not None
                   and _whole_ref(node_part, v)
                   for node_part in (node.exc, node.cause)):
                escape = True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None and _whole_ref(node.value, v):
                escape = True
        elif isinstance(node, ast.withitem):
            ctx = node.context_expr
            if isinstance(ctx, ast.Name) and ctx.id == v:
                release = True                   # `with f:` closes it
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == v:
                if stmt.lineno != res.lineno:
                    release = True               # rebound: stop tracking
        if _whole_ref(stmt.value, v):
            escape = True                        # aliased or stored
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if stmt.value is not None and _whole_ref(stmt.value, v):
            escape = True
    if release:
        return "release"
    if escape:
        return "escape"
    return None


def _annotation_terminal(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("\"' []")
    if isinstance(node, ast.Subscript):
        return _annotation_terminal(node.slice)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _acquisitions(func: ast.AST, cfg: FunctionCFG,
                  imports: Dict[str, str]) -> List[_Resource]:
    resources: List[_Resource] = []

    # Claim-typed parameters: the caller handed this function a live
    # lease — it owns the release obligation from entry.
    arg_lists = (func.args.args + func.args.kwonlyargs
                 + getattr(func.args, "posonlyargs", []))
    for arg in arg_lists:
        if _annotation_terminal(arg.annotation) == "Claim":
            resources.append(_Resource(
                rule="RS302", name=arg.arg, node_id=cfg.entry,
                lineno=func.lineno,
                what=f"lease parameter {arg.arg!r}"))

    for node in cfg.statement_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        value = stmt.value
        if not isinstance(value, ast.Call):
            # tmp paths are built by expressions, not just calls
            if (isinstance(target, ast.Name)
                    and _mentions_tmp(value)):
                resources.append(_Resource(
                    rule="RS303", name=target.id, node_id=node.id,
                    lineno=stmt.lineno,
                    what=f"tmp path {target.id!r}"))
            continue
        dotted = canonical(value.func, imports)
        attr = (value.func.attr
                if isinstance(value.func, ast.Attribute) else None)
        if isinstance(target, ast.Name):
            if dotted in _HANDLE_CTORS:
                resources.append(_Resource(
                    rule="RS301", name=target.id, node_id=node.id,
                    lineno=stmt.lineno,
                    what=f"handle {target.id!r} from {dotted}()"))
            elif attr == "claim" and _queueish_receiver(value.func):
                resources.append(_Resource(
                    rule="RS302", name=target.id, node_id=node.id,
                    lineno=stmt.lineno,
                    what=f"lease {target.id!r}"))
            elif _mentions_tmp(value):
                resources.append(_Resource(
                    rule="RS303", name=target.id, node_id=node.id,
                    lineno=stmt.lineno,
                    what=f"tmp path {target.id!r}"))
        elif (isinstance(target, ast.Tuple)
                and all(isinstance(e, ast.Name) for e in target.elts)
                and (dotted in _PAIR_CTORS
                     or attr in _PAIR_CTORS_ATTR)):
            for elt in target.elts:
                resources.append(_Resource(
                    rule="RS301", name=elt.id, node_id=node.id,
                    lineno=stmt.lineno,
                    what=f"handle {elt.id!r} from "
                         f"{dotted or attr}()"))
    return resources


def _queueish_receiver(func_expr: ast.Attribute) -> bool:
    receiver = func_expr.value
    terminal = None
    if isinstance(receiver, ast.Name):
        terminal = receiver.id
    elif isinstance(receiver, ast.Attribute):
        terminal = receiver.attr
    return terminal is not None and "queue" in terminal.lower()


def _mentions_tmp(expr: ast.AST) -> bool:
    """The expression builds a ``*.tmp*`` path (or mkstemp's result)."""
    for node in [expr] + list(local_walk(expr)):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and ".tmp" in node.value):
            return True
        if (isinstance(node, ast.Call)
                and canonical(node.func, {}) in {"tempfile.mkstemp",
                                                 "tempfile.mktemp"}):
            return True
    return False


def _narrowed_successor(cfg: FunctionCFG, nid: int,
                        name: str) -> Optional[int]:
    """The only live-branch successor of an ``if <name> is None`` test.

    Acquisitions that can legitimately return None (``queue.claim``)
    are always followed by such a test; on the None branch there is no
    resource to leak, so the search follows only the branch consistent
    with the resource existing.
    """
    stmt = cfg.nodes[nid].stmt
    if not isinstance(stmt, ast.If) or nid not in cfg.branches:
        return None
    test = stmt.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.left, ast.Name) and test.left.id == name
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return None
    body_entry, else_entry = cfg.branches[nid]
    if isinstance(test.ops[0], ast.Is):
        return else_entry
    if isinstance(test.ops[0], ast.IsNot):
        return body_entry
    return None


def _leak_paths(cfg: FunctionCFG, res: _Resource,
                imports: Dict[str, str]) -> Tuple[bool, bool]:
    """(leaks_on_normal_path, leaks_on_exception_path).

    BFS from the acquisition along live-resource paths; a node that
    releases or escapes the resource terminates its path.  The
    acquisition node's own exception edge is excluded — if the acquire
    call itself raised, nothing was acquired.
    """
    if res.node_id == cfg.entry:
        work = [dst for dst, _kind in cfg.successors(cfg.entry)]
    else:
        work = [dst for dst, kind in cfg.successors(res.node_id)
                if kind == EDGE_NEXT]
    visited: Set[int] = set()
    leak_normal = leak_exc = False
    while work:
        nid = work.pop()
        if nid in visited:
            continue
        visited.add(nid)
        if nid == cfg.exit:
            leak_normal = True
            continue
        if nid == cfg.raise_exit:
            leak_exc = True
            continue
        node = cfg.nodes[nid]
        if node.stmt is not None:
            verdict = _classify(node.stmt, res, imports)
            if verdict in ("release", "escape"):
                continue
            narrowed = _narrowed_successor(cfg, nid, res.name)
            if narrowed is not None:
                work.append(narrowed)
                work.extend(dst for dst, kind in node.succs
                            if kind != EDGE_NEXT)
                continue
        work.extend(dst for dst, _kind in node.succs)
    return leak_normal, leak_exc


_RULE_HINTS = {
    "RS301": "close it in a finally (or use `with`)",
    "RS302": "complete/release it in a finally so a failure cannot "
             "hold the cell until TTL expiry",
    "RS303": "rename or unlink it on every path so crash debris "
             "cannot accumulate",
}


def check_file(source: SourceFile) -> List[Finding]:
    """The RS3xx family over every function in one file."""
    imports = collect_imports(source.tree, source.module)
    findings: List[Finding] = []
    for func in ast.walk(source.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cfg = build_cfg(func)
        for res in _acquisitions(func, cfg, imports):
            leak_normal, leak_exc = _leak_paths(cfg, res, imports)
            if not (leak_normal or leak_exc):
                continue
            if leak_normal and leak_exc:
                where = "on fall-through and exception paths"
            elif leak_exc:
                where = "on an exception path"
            else:
                where = "on a fall-through path"
            findings.append(Finding(
                rule=res.rule, path=source.rel, line=res.lineno, col=1,
                message=f"{res.what} in {func.name}() is not released "
                        f"{where} — {_RULE_HINTS[res.rule]}"))
    return findings
