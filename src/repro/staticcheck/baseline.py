"""The grandfathered-findings baseline.

The baseline file (``staticcheck-baseline.json`` at the repo root) lists
findings that predate the gate and are excused until fixed.  Entries are
keyed ``RULE:path:line`` — precise enough that fixing a site retires its
entry, and brittle enough (on purpose) that unrelated edits force a
refresh instead of silently excusing *new* findings that drifted onto a
baselined line.

The shipped baseline is **empty**: every real finding was fixed in the
PR that introduced the gate, and CI asserts the file stays empty, so the
mechanism exists only for downstream forks mid-cleanup.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.staticcheck.model import CheckReport, Finding

BASELINE_SCHEMA_VERSION = 1

#: the conventional baseline filename, looked up at the repo root
BASELINE_FILENAME = "staticcheck-baseline.json"


class BaselineError(ValueError):
    """The baseline file is unreadable or malformed."""


def default_baseline_path() -> Optional[Path]:
    """The conventional baseline location, if one exists.

    Checks the working directory first (the checkout the gate runs in),
    then the repo root inferred from the installed package (``src/`` two
    levels above ``repro/staticcheck``).
    """
    candidates = [Path.cwd() / BASELINE_FILENAME]
    package_root = Path(__file__).resolve().parent.parent.parent.parent
    candidates.append(package_root / BASELINE_FILENAME)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def load_baseline(path: Path) -> Set[str]:
    """The set of excused finding keys (``RULE:path:line``)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(
            f"malformed baseline {path}: expected an object with a "
            f"'findings' list")
    keys = set()
    for entry in data["findings"]:
        try:
            keys.add(f"{entry['rule']}:{entry['path']}:{entry['line']}")
        except (TypeError, KeyError):
            raise BaselineError(
                f"malformed baseline entry in {path}: {entry!r} "
                f"(need rule/path/line)") from None
    return keys


def apply_baseline(report: CheckReport, keys: Set[str]
                   ) -> Tuple[CheckReport, List[str]]:
    """Drop baselined findings from ``report``; returns unused keys too.

    Unused (stale) keys are surfaced so the gate can demand a refresh —
    a baseline entry whose finding no longer exists is cleanup debt.
    """
    kept: List[Finding] = []
    matched: Set[str] = set()
    for finding in report.findings:
        if finding.key in keys:
            matched.add(finding.key)
            report.baselined += 1
        else:
            kept.append(finding)
    report.findings = kept
    return report, sorted(keys - matched)


def write_baseline(path: Path, report: CheckReport) -> None:
    """Grandfather every current finding into ``path``."""
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "message": f.message}
            for f in report.findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
