"""Memory dependence detection and dependence-stream analyses.

This package implements the paper's detection substrate: the Dependence
Detection Table (Section 3.1), the RAW/RAR classification of every executed
load, and the stream analyses behind Figure 2 (RAR memory dependence
locality), Figure 5 (dependence visibility vs DDT size) and Figure 7
(address / value locality breakdowns).
"""

from repro.dependence.ddt import DDT, DDTConfig, Dependence, DependenceKind
from repro.dependence.detector import DependenceProfile, DependenceProfiler
from repro.dependence.distance import RecencyRanker
from repro.dependence.locality import (
    AddressValueLocalityAnalysis,
    RARLocalityAnalysis,
)

__all__ = [
    "DDT",
    "DDTConfig",
    "Dependence",
    "DependenceKind",
    "DependenceProfile",
    "DependenceProfiler",
    "RecencyRanker",
    "RARLocalityAnalysis",
    "AddressValueLocalityAnalysis",
]
