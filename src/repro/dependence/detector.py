"""Streaming dependence classification of a trace (Figure 5 substrate).

:class:`DependenceProfiler` drives one or more DDTs over a committed
instruction stream and accumulates, per DDT configuration, the fraction of
loads whose dependence is visible — broken down into RAW and RAR.  Running
several DDT sizes in one pass is how the Figure 5 sweep amortizes trace
generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.dependence.ddt import DDT, DDTConfig, Dependence, DependenceKind
from repro.trace.records import DynInst


@dataclass
class DependenceProfile:
    """Visibility counts for one DDT configuration."""

    config: DDTConfig
    loads: int = 0
    raw_loads: int = 0
    rar_loads: int = 0

    @property
    def raw_fraction(self) -> float:
        return self.raw_loads / self.loads if self.loads else 0.0

    @property
    def rar_fraction(self) -> float:
        return self.rar_loads / self.loads if self.loads else 0.0

    @property
    def any_fraction(self) -> float:
        return (self.raw_loads + self.rar_loads) / self.loads if self.loads else 0.0


class DependenceProfiler:
    """Feeds a trace through one DDT per configuration, counting visibility."""

    def __init__(self, configs: Sequence[DDTConfig]) -> None:
        if not configs:
            raise ValueError("at least one DDTConfig is required")
        self._ddts: List[DDT] = [DDT(cfg) for cfg in configs]
        self.profiles: List[DependenceProfile] = [
            DependenceProfile(cfg) for cfg in configs
        ]

    def observe(self, inst: DynInst) -> None:
        """Account one committed instruction."""
        if inst.is_load:
            addr = inst.word_addr
            pc = inst.pc
            for ddt, profile in zip(self._ddts, self.profiles):
                dep = ddt.observe_load(pc, addr)
                profile.loads += 1
                if dep is not None:
                    if dep.kind == DependenceKind.RAW:
                        profile.raw_loads += 1
                    else:
                        profile.rar_loads += 1
        elif inst.is_store:
            addr = inst.word_addr
            pc = inst.pc
            for ddt in self._ddts:
                ddt.observe_store(pc, addr)

    def run(self, trace: Iterable[DynInst]) -> List[DependenceProfile]:
        """Consume a whole trace and return the profiles."""
        for inst in trace:
            self.observe(inst)
        return self.profiles


def classify_loads(
    trace: Iterable[DynInst], config: DDTConfig = DDTConfig()
) -> Iterable[Optional[Dependence]]:
    """Yield, for every instruction, the dependence its load detects.

    Non-load instructions yield nothing; stores update the DDT.  A helper
    for analyses that need the per-load classification rather than counts.
    """
    ddt = DDT(config)
    for inst in trace:
        if inst.is_load:
            yield ddt.observe_load(inst.pc, inst.word_addr)
        elif inst.is_store:
            ddt.observe_store(inst.pc, inst.word_addr)
