"""Dependence-stream locality analyses (Figures 2 and 7).

Three metrics from the paper:

* **memory-dependence-locality(n)** (Section 2, Figure 2): the probability
  that a sink load's current RAR dependence was among the last ``n``
  *unique* RAR dependences experienced by previous executions of the same
  static load.  Locality(1) is the hit rate of a "last dependence"
  predictor; larger ``n`` measures the per-load dependence working set.
* **address locality** (Section 5.4): probability that a static load
  accesses the same address in two consecutive executions.
* **value locality** (Section 5.5): same for the loaded value — the hit
  rate of a last-value predictor with unbounded capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.dependence.ddt import DDT, DDTConfig, DependenceKind
from repro.trace.records import DynInst


class _MRUList:
    """A tiny most-recently-used list of unique items (bounded)."""

    __slots__ = ("items", "capacity")

    def __init__(self, capacity: int) -> None:
        self.items: List[int] = []
        self.capacity = capacity

    def find_and_promote(self, item: int) -> Optional[int]:
        """Return the 0-based recency position of ``item`` and move it to front.

        ``None`` when absent (the item is inserted at the front).
        """
        try:
            position = self.items.index(item)
        except ValueError:
            self.items.insert(0, item)
            del self.items[self.capacity:]
            return None
        if position:
            del self.items[position]
            self.items.insert(0, item)
        return position


class DependenceWorkingSetAnalysis:
    """Section 2's second observation: "the working set of RAR-dependences
    per load is relatively small".

    Tracks, for every static sink load, the set of unique RAR sources it
    has ever depended on, and summarizes the distribution.  A small working
    set is what makes a few-entry-per-PC history predictor viable.
    """

    def __init__(self, window: Optional[int] = None) -> None:
        self._ddt = DDT(DDTConfig(size=window))
        self._sources: Dict[int, set] = {}
        self.sink_loads = 0

    def observe(self, inst: DynInst) -> None:
        """Account one committed instruction."""
        if inst.is_store:
            self._ddt.observe_store(inst.pc, inst.word_addr)
            return
        if not inst.is_load:
            return
        dep = self._ddt.observe_load(inst.pc, inst.word_addr)
        if dep is None or dep.kind != DependenceKind.RAR:
            return
        self.sink_loads += 1
        self._sources.setdefault(dep.sink_pc, set()).add(dep.source_pc)

    def run(self, trace: Iterable[DynInst]) -> "DependenceWorkingSetAnalysis":
        for inst in trace:
            self.observe(inst)
        return self

    @property
    def static_sinks(self) -> int:
        return len(self._sources)

    def working_set_sizes(self) -> List[int]:
        """Unique-source counts per static sink load (sorted descending)."""
        return sorted((len(s) for s in self._sources.values()), reverse=True)

    def fraction_with_at_most(self, n: int) -> float:
        """Fraction of static sink loads with a working set of <= n sources."""
        if not self._sources:
            return 0.0
        small = sum(1 for s in self._sources.values() if len(s) <= n)
        return small / len(self._sources)


class RARLocalityAnalysis:
    """Figure 2: RAR memory dependence locality over sink loads.

    Dependences are detected with a DDT whose size plays the role of the
    paper's *address window* (``None`` = infinite, Figure 2(a); 4096 =
    Figure 2(b)).  For every executed sink load (a load whose probe detects
    a RAR dependence) the analysis asks at which recency position the
    dependence's source PC sits in that static load's history of unique
    sources.
    """

    def __init__(self, max_n: int = 4, window: Optional[int] = None) -> None:
        if max_n < 1:
            raise ValueError("max_n must be >= 1")
        self.max_n = max_n
        self._ddt = DDT(DDTConfig(size=window))
        self._history: Dict[int, _MRUList] = {}
        self.sink_loads = 0
        self.hits_within = [0] * max_n  # hits_within[k] = hits at position <= k

    def observe(self, inst: DynInst) -> None:
        """Account one committed instruction."""
        if inst.is_store:
            self._ddt.observe_store(inst.pc, inst.word_addr)
            return
        if not inst.is_load:
            return
        dep = self._ddt.observe_load(inst.pc, inst.word_addr)
        if dep is None or dep.kind != DependenceKind.RAR:
            return
        self.sink_loads += 1
        history = self._history.get(dep.sink_pc)
        if history is None:
            history = self._history[dep.sink_pc] = _MRUList(self.max_n)
        position = history.find_and_promote(dep.source_pc)
        if position is not None and position < self.max_n:
            for k in range(position, self.max_n):
                self.hits_within[k] += 1

    def locality(self, n: int) -> float:
        """memory-dependence-locality(n) over all executed sink loads."""
        if not 1 <= n <= self.max_n:
            raise ValueError(f"n must be in [1, {self.max_n}]")
        return self.hits_within[n - 1] / self.sink_loads if self.sink_loads else 0.0

    def run(self, trace: Iterable[DynInst]) -> "RARLocalityAnalysis":
        for inst in trace:
            self.observe(inst)
        return self


@dataclass
class LocalityBreakdown:
    """One Figure 7 bar: locality fractions split by detected dependence."""

    loads: int = 0
    local_raw: int = 0      # loads with locality and a detected RAW dependence
    local_rar: int = 0      # with locality and a detected RAR dependence
    local_nodep: int = 0    # with locality but no visible dependence

    @property
    def total_locality(self) -> float:
        if not self.loads:
            return 0.0
        return (self.local_raw + self.local_rar + self.local_nodep) / self.loads

    def fraction(self, bucket: str) -> float:
        if not self.loads:
            return 0.0
        value = {"raw": self.local_raw, "rar": self.local_rar,
                 "none": self.local_nodep}[bucket]
        return value / self.loads


class AddressValueLocalityAnalysis:
    """Figure 7: address and value locality with a dependence breakdown.

    Uses the paper's 128-entry DDT (configurable) to tag each load with the
    dependence it detects, then checks whether the load's address (part a)
    and value (part b) match its previous execution.
    """

    def __init__(self, ddt_config: DDTConfig = DDTConfig(size=128)) -> None:
        self._ddt = DDT(ddt_config)
        self._last_addr: Dict[int, int] = {}
        self._last_value: Dict[int, object] = {}
        self.address = LocalityBreakdown()
        self.value = LocalityBreakdown()

    def observe(self, inst: DynInst) -> None:
        """Account one committed instruction."""
        if inst.is_store:
            self._ddt.observe_store(inst.pc, inst.word_addr)
            return
        if not inst.is_load:
            return
        pc = inst.pc
        dep = self._ddt.observe_load(pc, inst.word_addr)
        if dep is None:
            bucket = "none"
        elif dep.kind == DependenceKind.RAW:
            bucket = "raw"
        else:
            bucket = "rar"

        self.address.loads += 1
        self.value.loads += 1
        prev_addr = self._last_addr.get(pc)
        if prev_addr is not None and prev_addr == inst.addr:
            self._bump(self.address, bucket)
        prev_value = self._last_value.get(pc)
        if prev_value is not None and prev_value == inst.value:
            self._bump(self.value, bucket)
        self._last_addr[pc] = inst.addr
        self._last_value[pc] = inst.value

    @staticmethod
    def _bump(breakdown: LocalityBreakdown, bucket: str) -> None:
        if bucket == "raw":
            breakdown.local_raw += 1
        elif bucket == "rar":
            breakdown.local_rar += 1
        else:
            breakdown.local_nodep += 1

    def run(self, trace: Iterable[DynInst]) -> "AddressValueLocalityAnalysis":
        for inst in trace:
            self.observe(inst)
        return self
