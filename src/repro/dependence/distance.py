"""Dependence distance distributions.

The DDT's reach is bounded by its size: a dependence is detectable only if
at most ``size`` unique addresses are touched between its source and sink
(the paper's *address window*, Section 2).  This analysis measures, for
every detected RAW and RAR dependence under an infinite window, the
distance in unique intervening addresses — the distribution that explains
the Figure 5 sweep: the fraction of dependences with distance ≤ N is
(approximately) the visibility an N-entry DDT achieves.

It also demonstrates the Section 3.1 argument quantitatively: loads whose
RAW distance exceeds the DDT size but whose RAR distance does not are
exactly the population RAR cloaking rescues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.records import DynInst


class RecencyRanker:
    """Tracks unique-address recency: rank 0 = most recently accessed.

    ``touch`` returns the current rank of the address (``None`` if never
    seen) and moves it to the front.  The rank of an address equals the
    number of unique addresses touched since its previous access — the
    paper's address-window distance.

    Implemented as a Fenwick (binary indexed) tree over access timestamps:
    a set bit at time ``t`` means "some address was last accessed at
    ``t``".  An address's rank is the number of set bits after its previous
    timestamp, giving O(log n) per access instead of an O(n) LRU scan.
    """

    def __init__(self) -> None:
        self._last_time: Dict[int, int] = {}
        self._tree: List[int] = [0, 0]
        self._size = 1
        self._now = 0
        self._live = 0

    def _grow(self, needed: int) -> None:
        # Double the index space and rebuild from the live timestamps (a
        # Fenwick tree cannot simply be zero-extended across its root).
        while self._size < needed:
            self._size *= 2
        self._tree = [0] * (self._size + 1)
        for t in self._last_time.values():
            self._add(t, 1)

    def _add(self, index: int, delta: int) -> None:
        while index <= self._size:
            self._tree[index] += delta
            index += index & -index

    def _prefix(self, index: int) -> int:
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total

    def touch(self, word_addr: int) -> Optional[int]:
        self._now += 1
        if self._now > self._size:
            self._grow(self._now)
        previous = self._last_time.get(word_addr)
        rank: Optional[int] = None
        if previous is not None:
            rank = self._live - self._prefix(previous)
            self._add(previous, -1)
        else:
            self._live += 1
        self._add(self._now, 1)
        self._last_time[word_addr] = self._now
        return rank

    @property
    def now(self) -> int:
        """The current logical timestamp."""
        return self._now

    def rank_since(self, timestamp: int) -> int:
        """Unique addresses whose most recent access is after ``timestamp``."""
        return self._live - self._prefix(min(timestamp, self._size))


#: Backward-compatible private alias (the ranker predates its public use
#: by ``repro.experiments.ext_static_distance``).
_RecencyRanker = RecencyRanker


@dataclass
class DistanceHistogram:
    """Power-of-two bucketed distance counts."""

    buckets: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    def record(self, distance: int) -> None:
        bucket = 1
        while bucket <= distance:
            bucket <<= 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.total += 1

    def fraction_within(self, limit: int) -> float:
        """Fraction of dependences with distance < ``limit``."""
        if not self.total:
            return 0.0
        covered = sum(count for bucket, count in self.buckets.items()
                      if bucket <= limit)
        return covered / self.total

    def as_rows(self) -> List[Tuple[int, int, float]]:
        """(bucket upper bound, count, cumulative fraction) rows."""
        rows = []
        cumulative = 0
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            rows.append((bucket, self.buckets[bucket],
                         cumulative / self.total))
        return rows


class DependenceDistanceAnalysis:
    """Distance (in unique intervening addresses) of RAW/RAR dependences.

    Unlike :class:`~repro.dependence.ddt.DDT`, both the last store and the
    first load since that store are tracked per address simultaneously, so
    a load's RAW *and* RAR distances are measured independently — the
    comparison behind the paper's distant-store discussion.
    """

    def __init__(self, rescue_limit: int = 128) -> None:
        self._ranker = RecencyRanker()
        self._load_seen: Dict[int, bool] = {}
        self._last_store_time: Dict[int, int] = {}
        self.raw = DistanceHistogram()
        self.rar = DistanceHistogram()
        self.rescue_limit = rescue_limit
        #: RAR dependences within the window whose underlying RAW
        #: dependence lies beyond it — the Section 3.1 rescued loads
        self.rescued_distant_raw = 0
        #: RAR dependences within the window at never-stored addresses —
        #: pure data sharing, the population RAW cloaking can never reach
        self.rescued_no_raw = 0

    def observe(self, inst: DynInst) -> None:
        """Account one committed instruction."""
        if not inst.is_mem:
            return
        word = inst.word_addr
        distance = self._ranker.touch(word)
        if inst.is_store:
            self._last_store_time[word] = self._ranker.now
            self._load_seen.pop(word, None)
            return
        # a load
        store_time = self._last_store_time.get(word)
        if distance is not None:
            if self._load_seen.get(word):
                self.rar.record(distance)
                if distance < self.rescue_limit:
                    if store_time is None:
                        self.rescued_no_raw += 1
                    elif self._ranker.rank_since(store_time) >= self.rescue_limit:
                        self.rescued_distant_raw += 1
            elif store_time is not None:
                self.raw.record(distance)
        if self._load_seen.get(word) is None:
            self._load_seen[word] = True

    def run(self, trace: Iterable[DynInst]) -> "DependenceDistanceAnalysis":
        for inst in trace:
            self.observe(inst)
        return self
