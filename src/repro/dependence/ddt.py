"""The Dependence Detection Table (DDT).

The DDT (paper Section 3.1) is an address-indexed cache recording the PC of
a load or store that accessed each address, with LRU replacement (Section
5.2) and word granularity (Section 5.6.1).  A load probing the DDT detects:

* a **RAW** dependence when the entry holds a store — the store wrote the
  value the load reads;
* a **RAR** dependence when the entry holds a load — both loads read the
  same location with no intervening store.

Recording policy for loads (Section 3.1): a load is recorded only when no
preceding *store* is recorded for the address **and** no other *load* is
recorded for it.  This annotates the earliest load in program order as the
producer, matching the paper's restriction of RAR dependences to
(earliest source, any later sink) pairs.

Two organizations are provided:

* **common** (the paper's default): one table shared by loads and stores.
  Section 5.6.2 observes an anomaly where loads evict stores and hide RAW
  dependences.
* **split**: separate load and store tables, the fix the paper suggests.
  A store must still invalidate the load table's entry for its address —
  otherwise a later load would see a stale "RAR" across an intervening
  store, which contradicts the definition of RAR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.util.lru import LRUTable, SetAssociativeTable


class DependenceKind(enum.Enum):
    RAW = "RAW"
    RAR = "RAR"


class Dependence(NamedTuple):
    """A detected (source, sink) memory dependence."""

    kind: DependenceKind
    source_pc: int
    sink_pc: int
    word_addr: int


class _Entry(NamedTuple):
    is_store: bool
    pc: int


@dataclass(frozen=True)
class DDTConfig:
    """Configuration of a DDT instance.

    ``size=None`` models an infinite table (limit studies); ``split=True``
    selects the separate load/store organization of Section 5.6.2; with a
    split table each of the two tables gets ``size`` entries.
    ``record_loads=False`` reproduces the *original* RAW-only cloaking DDT,
    which records stores only — no RAR dependence can be detected and loads
    never evict stores.  ``record_all_loads=True`` makes every load
    (re)record itself, so RAR sources track the *most recent* prior load
    instead of the paper's earliest-load policy (``False``, the default) —
    exposed for ablation.
    """

    size: Optional[int] = 128
    ways: int = 0                   # 0 = fully associative (the paper's DDT)
    split: bool = False
    record_loads: bool = True
    record_all_loads: bool = False
    touch_on_hit: bool = True

    def describe(self) -> str:
        size = "inf" if self.size is None else str(self.size)
        organization = "split" if self.split else "common"
        assoc = f", {self.ways}-way" if self.ways else ""
        return f"DDT({size}, {organization}{assoc})"


class DDT:
    """One Dependence Detection Table; streaming observe API.

    Feed committed loads and stores in program order via
    :meth:`observe_load` / :meth:`observe_store`;  ``observe_load`` returns
    the detected dependence, if any.
    """

    def __init__(self, config: DDTConfig = DDTConfig()) -> None:
        self.config = config

        def make_table():
            if config.ways and config.size is not None:
                if config.size % config.ways:
                    raise ValueError(
                        f"DDT size {config.size} not divisible by "
                        f"ways {config.ways}")
                return SetAssociativeTable(config.size // config.ways,
                                           config.ways)
            return LRUTable(config.size)

        if config.split:
            self._store_table = make_table()
            self._load_table = make_table()
        else:
            self._store_table = self._load_table = make_table()
        self.loads_observed = 0
        self.stores_observed = 0
        self.raw_detected = 0
        self.rar_detected = 0

    def observe_store(self, pc: int, word_addr: int) -> None:
        """Record a committed store; it becomes the producer for its address."""
        self.stores_observed += 1
        if self.config.split:
            # An intervening store breaks any RAR chain through this address.
            self._load_table.pop(word_addr)
        self._store_table.put(word_addr, _Entry(True, pc))

    def observe_load(self, pc: int, word_addr: int) -> Optional[Dependence]:
        """Record a committed load; return the dependence it detects."""
        self.loads_observed += 1
        touch = self.config.touch_on_hit

        if self.config.split:
            store_entry = self._store_table.get(word_addr, touch=touch)
            if store_entry is not None:
                self.raw_detected += 1
                return Dependence(DependenceKind.RAW, store_entry.pc, pc, word_addr)
            if not self.config.record_loads:
                return None
            load_entry = self._load_table.get(word_addr, touch=touch)
            if load_entry is not None:
                self.rar_detected += 1
                if self.config.record_all_loads:
                    self._load_table.put(word_addr, _Entry(False, pc))
                return Dependence(DependenceKind.RAR, load_entry.pc, pc, word_addr)
            self._load_table.put(word_addr, _Entry(False, pc))
            return None

        entry = self._store_table.get(word_addr, touch=touch)
        if entry is not None:
            if entry.is_store:
                self.raw_detected += 1
                return Dependence(DependenceKind.RAW, entry.pc, pc, word_addr)
            self.rar_detected += 1
            if self.config.record_all_loads:
                self._store_table.put(word_addr, _Entry(False, pc))
            return Dependence(DependenceKind.RAR, entry.pc, pc, word_addr)
        if self.config.record_loads:
            self._store_table.put(word_addr, _Entry(False, pc))
        return None

    def clear(self) -> None:
        self._store_table.clear()
        if self.config.split:
            self._load_table.clear()
