"""A small MIPS-like ISA, assembler and functional interpreter.

The paper evaluates on SPEC'95 binaries compiled for MIPS-I.  Every
mechanism it studies is driven purely by the *dynamic instruction stream* —
load/store PCs, data addresses, loaded values, and register dependences —
so a compact RISC ISA that can express the same program idioms is a faithful
substrate.  Workloads (:mod:`repro.workloads`) are written in this ISA and
executed by :class:`~repro.isa.interpreter.Interpreter` to produce the
dynamic traces all experiments consume.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Instruction, OpClass, latency_of
from repro.isa.interpreter import ExecutionError, Interpreter
from repro.isa.program import Program
from repro.isa.registers import FP_REG_BASE, NUM_REGS, fp, reg, register_name

__all__ = [
    "AssemblyError",
    "ExecutionError",
    "Instruction",
    "Interpreter",
    "OpClass",
    "Program",
    "assemble",
    "latency_of",
    "reg",
    "fp",
    "register_name",
    "FP_REG_BASE",
    "NUM_REGS",
]
