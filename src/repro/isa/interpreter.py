"""Functional execution of assembled programs.

The interpreter executes a :class:`~repro.isa.program.Program` and yields a
:class:`~repro.trace.records.DynInst` per committed instruction.  It is a
generator so analyses can stream arbitrarily long traces without
materializing them.

Semantics notes:

* ``r0`` reads as zero; writes to it are discarded (as on MIPS).
* Integer multiplication wraps to signed 32 bits; integer and floating
  division by zero produce 0 (synthetic kernels never rely on trapping).
* Memory is word addressed; word and halfword accesses must be aligned.
  Uninitialized memory reads as integer 0.  Byte/halfword accesses pack
  into their containing word.
* ``jal`` writes the return address (the PC of the following instruction)
  to ``r31``; ``jr`` jumps to a byte-address PC held in a register.

For speed the instruction list is pre-decoded once per :meth:`run` into
flat tuples with small-integer operation codes, so the hot loop performs
no attribute lookups or string comparisons.  Semantics are pinned by the
test suite and by per-workload trace fingerprints
(``tests/test_workload_goldens.py``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.isa.instructions import OpClass  # noqa: F401 (re-export convenience)
from repro.isa.program import WORD_SIZE, Program
from repro.isa.registers import NUM_REGS, ZERO_REG

if False:  # pragma: no cover - type-checking only (avoids a package cycle)
    from repro.trace.records import DynInst

_INT32_MASK = 0xFFFFFFFF
_INT32_SIGN = 0x80000000


def _wrap32(value: int) -> int:
    value &= _INT32_MASK
    return value - (1 << 32) if value & _INT32_SIGN else value


class ExecutionError(RuntimeError):
    """Raised on runtime faults: bad PC, misaligned access, negative address."""


# Dense operation codes for the pre-decoded dispatch.  Grouped by class so
# the hot loop can branch on ranges: IALU <= 17 < loads <= 22 < stores
# <= 25 < branches <= 33 < control <= 38 < mul/div <= 41 < fp.
_OP_CODES: Dict[str, int] = {
    "add": 0, "sub": 1, "and": 2, "or": 3, "xor": 4, "slt": 5, "seq": 6,
    "sne": 7, "addi": 8, "andi": 9, "ori": 10, "xori": 11, "slti": 12,
    "sll": 13, "srl": 14, "sra": 15, "mov": 16, "li": 17, "la": 17,
    "lw": 18, "lf": 18, "lb": 19, "lbu": 20, "lh": 21, "lhu": 22,
    "sw": 23, "sf": 23, "sb": 24, "sh": 25,
    "beq": 26, "bne": 27, "blt": 28, "bge": 29, "blez": 30, "bgtz": 31,
    "bltz": 32, "bgez": 33,
    "j": 34, "jal": 35, "jr": 36, "halt": 37, "nop": 38,
    "mul": 39, "div": 40, "rem": 41,
    "fadd.s": 42, "fadd.d": 42, "fsub.s": 43, "fsub.d": 43,
    "fmul.s": 44, "fmul.d": 44, "fdiv.s": 45, "fdiv.d": 45,
    "fclt": 46, "fcle": 47, "fceq": 48, "fmov": 49, "fneg": 50,
    "fabs": 51, "itof": 52, "ftoi": 53, "fli": 54,
}

_LOAD_SIZE = {18: 4, 19: 1, 20: 1, 21: 2, 22: 2}
_STORE_SIZE = {23: 4, 24: 1, 25: 2}


def _decode(program: Program) -> List[Tuple]:
    """Pre-decode instructions into flat dispatch tuples.

    Tuple layout: ``(code, opclass, rd, s0, s1, srcs, imm, fimm, target, pc)``
    where ``s0``/``s1`` are the first/second source register ids (or -1).
    """
    decoded = []
    base = program.text_base
    for index, inst in enumerate(program.instructions):
        code = _OP_CODES[inst.opcode]
        srcs = inst.srcs
        s0 = srcs[0] if len(srcs) > 0 else -1
        s1 = srcs[1] if len(srcs) > 1 else -1
        decoded.append((code, inst.opclass, inst.rd, s0, s1, srcs,
                        inst.imm, inst.fimm, inst.target,
                        base + WORD_SIZE * index))
    return decoded


class Interpreter:
    """Executes a program, yielding the committed dynamic instruction stream."""

    def __init__(self, program: Program, max_instructions: Optional[int] = None) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.registers: List[object] = [0] * NUM_REGS
        self.memory: Dict[int, object] = {
            addr >> 2: value for addr, value in program.data.items()
        }
        self.executed = 0
        self.halted = False

    def load_word(self, byte_addr: int) -> object:
        """Read memory at a byte address (must be word aligned)."""
        self._check_addr(byte_addr)
        return self.memory.get(byte_addr >> 2, 0)

    def store_word(self, byte_addr: int, value: object) -> None:
        """Write memory at a byte address (must be word aligned)."""
        self._check_addr(byte_addr)
        self.memory[byte_addr >> 2] = value

    def _check_addr(self, byte_addr: int, size: int = WORD_SIZE) -> None:
        if byte_addr < 0:
            raise ExecutionError(f"negative address {byte_addr:#x}")
        if byte_addr % size:
            raise ExecutionError(
                f"misaligned {size}-byte access at {byte_addr:#x}")

    def _load_subword(self, addr: int, size: int, signed: bool) -> int:
        """Read a byte or halfword out of the containing word."""
        self._check_addr(addr, size)
        word = self.memory.get(addr >> 2, 0)
        if not isinstance(word, int):
            raise ExecutionError(
                f"sub-word read of non-integer data at {addr:#x}")
        shift = (addr & 3) * 8
        mask = (1 << (size * 8)) - 1
        value = (word >> shift) & mask
        if signed and value & (1 << (size * 8 - 1)):
            value -= 1 << (size * 8)
        return value

    def _store_subword(self, addr: int, size: int, value: int) -> int:
        """Merge a byte or halfword into the containing word; returns the
        stored (truncated) value."""
        self._check_addr(addr, size)
        word_index = addr >> 2
        word = self.memory.get(word_index, 0)
        if not isinstance(word, int):
            raise ExecutionError(
                f"sub-word write over non-integer data at {addr:#x}")
        shift = (addr & 3) * 8
        mask = (1 << (size * 8)) - 1
        truncated = value & mask
        self.memory[word_index] = (word & ~(mask << shift)) | (truncated << shift)
        return truncated

    def run(self) -> "Iterator[DynInst]":
        """Execute until ``halt``, falling off the program, or the cap."""
        # Imported here rather than at module scope: repro.trace.records
        # depends on repro.isa.instructions, so a top-level import would
        # close an import cycle through the two packages' __init__ modules.
        from repro.trace.records import DynInst

        program = self.program
        decoded = _decode(program)
        num_instructions = len(decoded)
        regs = self.registers
        memory = self.memory
        memory_get = memory.get
        text_base = program.text_base
        limit = self.max_instructions
        index = 0
        count = self.executed

        while 0 <= index < num_instructions:
            if limit is not None and count >= limit:
                break
            (code, cls, rd, s0, s1, srcs, imm, fimm, target,
             pc) = decoded[index]
            next_index = index + 1

            if code <= 17:  # IALU
                if code == 0:
                    result = regs[s0] + regs[s1]
                elif code == 8:
                    result = regs[s0] + imm
                elif code == 17:
                    result = imm
                elif code == 13:
                    result = _wrap32(regs[s0] << imm)
                elif code == 1:
                    result = regs[s0] - regs[s1]
                elif code == 2:
                    result = regs[s0] & regs[s1]
                elif code == 3:
                    result = regs[s0] | regs[s1]
                elif code == 4:
                    result = regs[s0] ^ regs[s1]
                elif code == 5:
                    result = 1 if regs[s0] < regs[s1] else 0
                elif code == 6:
                    result = 1 if regs[s0] == regs[s1] else 0
                elif code == 7:
                    result = 1 if regs[s0] != regs[s1] else 0
                elif code == 9:
                    result = regs[s0] & imm
                elif code == 10:
                    result = regs[s0] | imm
                elif code == 11:
                    result = regs[s0] ^ imm
                elif code == 12:
                    result = 1 if regs[s0] < imm else 0
                elif code == 14:
                    result = (regs[s0] & _INT32_MASK) >> imm
                elif code == 15:
                    result = regs[s0] >> imm
                else:  # 16: mov
                    result = regs[s0]
                if rd != ZERO_REG:
                    regs[rd] = result
                record = DynInst(count, pc, cls, rd=rd, srcs=srcs)

            elif code <= 22:  # loads
                addr = regs[s0] + imm
                if code == 18:
                    if addr < 0 or addr & 3:
                        self._check_addr(addr)
                    value = memory_get(addr >> 2, 0)
                    size = 4
                elif code <= 20:
                    value = self._load_subword(addr, 1, signed=(code == 19))
                    size = 1
                else:
                    value = self._load_subword(addr, 2, signed=(code == 21))
                    size = 2
                if rd != ZERO_REG:
                    regs[rd] = value
                record = DynInst(count, pc, cls, rd=rd, srcs=srcs,
                                 addr=addr, value=value, size=size)

            elif code <= 25:  # stores
                addr = regs[s0] + imm
                value = regs[s1]
                if code == 23:
                    if addr < 0 or addr & 3:
                        self._check_addr(addr)
                    memory[addr >> 2] = value
                    size = 4
                elif code == 24:
                    value = self._store_subword(addr, 1, value)
                    size = 1
                else:
                    value = self._store_subword(addr, 2, value)
                    size = 2
                record = DynInst(count, pc, cls, srcs=srcs, addr=addr,
                                 value=value, size=size)

            elif code <= 33:  # conditional branches
                a = regs[s0]
                if code == 26:
                    taken = a == regs[s1]
                elif code == 27:
                    taken = a != regs[s1]
                elif code == 28:
                    taken = a < regs[s1]
                elif code == 29:
                    taken = a >= regs[s1]
                elif code == 30:
                    taken = a <= 0
                elif code == 31:
                    taken = a > 0
                elif code == 32:
                    taken = a < 0
                else:
                    taken = a >= 0
                target_pc = text_base + WORD_SIZE * target
                if taken:
                    next_index = target
                record = DynInst(count, pc, cls, srcs=srcs, taken=taken,
                                 target_pc=target_pc)

            elif code == 34:  # j
                next_index = target
                record = DynInst(count, pc, cls, taken=True,
                                 target_pc=text_base + WORD_SIZE * target)

            elif code == 35:  # jal
                regs[rd] = text_base + WORD_SIZE * (index + 1)
                next_index = target
                record = DynInst(count, pc, cls, rd=rd, taken=True,
                                 target_pc=text_base + WORD_SIZE * target)

            elif code == 36:  # jr
                target_pc = regs[s0]
                next_index = program.index_of(target_pc)
                record = DynInst(count, pc, cls, srcs=srcs, taken=True,
                                 target_pc=target_pc)

            elif code == 37:  # halt
                self.halted = True
                break

            elif code == 38:  # nop
                record = DynInst(count, pc, cls)

            elif code == 39:  # mul
                result = _wrap32(regs[s0] * regs[s1])
                if rd != ZERO_REG:
                    regs[rd] = result
                record = DynInst(count, pc, cls, rd=rd, srcs=srcs)

            elif code <= 41:  # div / rem
                divisor = regs[s1]
                if code == 40:
                    result = int(regs[s0] / divisor) if divisor else 0
                else:
                    a = regs[s0]
                    result = a - int(a / divisor) * divisor if divisor else 0
                if rd != ZERO_REG:
                    regs[rd] = result
                record = DynInst(count, pc, cls, rd=rd, srcs=srcs)

            else:  # floating point
                if code == 42:
                    result = regs[s0] + regs[s1]
                elif code == 43:
                    result = regs[s0] - regs[s1]
                elif code == 44:
                    result = regs[s0] * regs[s1]
                elif code == 45:
                    divisor = regs[s1]
                    result = regs[s0] / divisor if divisor else 0.0
                elif code == 46:
                    result = 1 if regs[s0] < regs[s1] else 0
                elif code == 47:
                    result = 1 if regs[s0] <= regs[s1] else 0
                elif code == 48:
                    result = 1 if regs[s0] == regs[s1] else 0
                elif code == 49:
                    result = regs[s0]
                elif code == 50:
                    result = -regs[s0]
                elif code == 51:
                    result = abs(regs[s0])
                elif code == 52:
                    result = float(regs[s0])
                elif code == 53:
                    result = int(regs[s0])
                else:  # 54: fli
                    result = fimm
                if rd != ZERO_REG:
                    regs[rd] = result
                record = DynInst(count, pc, cls, rd=rd, srcs=srcs)

            index = next_index
            count += 1
            self.executed = count
            yield record

        self.executed = count
