"""Register file naming for the mini ISA.

Thirty-two integer registers ``r0``-``r31`` occupy ids 0-31 (``r0`` is
hardwired to zero, as on MIPS) and thirty-two floating-point registers
``f0``-``f31`` occupy ids 32-63.  A single flat id space keeps dependence
tracking in the pipeline model trivial.

Conventions used by the workload kernels (not enforced by hardware):
``r29`` is the stack pointer, ``r31`` holds the return address written by
``jal``.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
FP_REG_BASE = NUM_INT_REGS
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

ZERO_REG = 0
STACK_POINTER = 29
RETURN_ADDRESS = 31


def reg(index: int) -> int:
    """The flat register id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp(index: int) -> int:
    """The flat register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_REG_BASE + index


def is_fp(regid: int) -> bool:
    """True when the flat id names a floating-point register."""
    return regid >= FP_REG_BASE


def register_name(regid: int) -> str:
    """Human-readable name of a flat register id."""
    if not 0 <= regid < NUM_REGS:
        raise ValueError(f"register id out of range: {regid}")
    if regid < FP_REG_BASE:
        return f"r{regid}"
    return f"f{regid - FP_REG_BASE}"


def parse_register(token: str) -> int:
    """Parse ``r12`` / ``f3`` into a flat register id."""
    token = token.strip().lower()
    if len(token) < 2 or token[0] not in ("r", "f") or not token[1:].isdigit():
        raise ValueError(f"not a register: {token!r}")
    index = int(token[1:])
    return reg(index) if token[0] == "r" else fp(index)
