"""A two-pass assembler for the mini ISA.

Syntax example::

    .data
    table:  .word 1, 2, 3, 4
    buf:    .space 64            # 64 zero words
    pi:     .float 3.14159

    .text
    main:   la   r1, table
            li   r2, 0
    loop:   lw   r3, 0(r1)
            add  r2, r2, r3
            addi r1, r1, 4
            addi r4, r4, 1
            blt  r4, r5, loop
            halt

Comments run from ``#`` to end of line.  ``.space`` counts words.  Labels
may appear on their own line or prefix a statement.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import DATA_BASE, WORD_SIZE, Program
from repro.isa.registers import RETURN_ADDRESS, parse_register


class AssemblyError(ValueError):
    """Raised on any syntax or semantic error, with the offending line.

    ``name`` identifies the program being assembled (the workload abbrev
    for kernels) so suite-wide tooling — the static analyzer's CLI, the
    harness — can say *which* kernel failed, not just on which line.
    """

    def __init__(self, message: str, line_no: int, line: str,
                 name: Optional[str] = None) -> None:
        prefix = f"{name}: " if name else ""
        super().__init__(
            f"{prefix}line {line_no}: {message}: {line.strip()!r}")
        self.message = message
        self.line_no = line_no
        self.line = line
        self.name = name

    def with_name(self, name: str) -> "AssemblyError":
        """A copy of this error attributed to program ``name``."""
        return AssemblyError(self.message, self.line_no, self.line, name=name)


_MEM_OPERAND = re.compile(r"^(-?\d+)?\(([rf]\d+)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):")

# mnemonic -> (opclass, operand format)
# formats: 3r = rd,rs,rt  2ri = rd,rs,imm  2r = rd,rs  ri = rd,imm
#          mem = r,disp(base)  b2 = rs,rt,label  b1 = rs,label
#          j = label  jr = rs  none = no operands
_OPCODES: Dict[str, Tuple[OpClass, str]] = {
    "add": (OpClass.IALU, "3r"),
    "sub": (OpClass.IALU, "3r"),
    "and": (OpClass.IALU, "3r"),
    "or": (OpClass.IALU, "3r"),
    "xor": (OpClass.IALU, "3r"),
    "slt": (OpClass.IALU, "3r"),
    "seq": (OpClass.IALU, "3r"),
    "sne": (OpClass.IALU, "3r"),
    "mul": (OpClass.IMUL, "3r"),
    "div": (OpClass.IDIV, "3r"),
    "rem": (OpClass.IDIV, "3r"),
    "addi": (OpClass.IALU, "2ri"),
    "andi": (OpClass.IALU, "2ri"),
    "ori": (OpClass.IALU, "2ri"),
    "xori": (OpClass.IALU, "2ri"),
    "slti": (OpClass.IALU, "2ri"),
    "sll": (OpClass.IALU, "2ri"),
    "srl": (OpClass.IALU, "2ri"),
    "sra": (OpClass.IALU, "2ri"),
    "mov": (OpClass.IALU, "2r"),
    "li": (OpClass.IALU, "ri"),
    "la": (OpClass.IALU, "rl"),
    "fadd.s": (OpClass.FADD, "3r"),
    "fsub.s": (OpClass.FADD, "3r"),
    "fadd.d": (OpClass.FADD, "3r"),
    "fsub.d": (OpClass.FADD, "3r"),
    "fmul.s": (OpClass.FMUL_SP, "3r"),
    "fmul.d": (OpClass.FMUL_DP, "3r"),
    "fdiv.s": (OpClass.FDIV_SP, "3r"),
    "fdiv.d": (OpClass.FDIV_DP, "3r"),
    "fclt": (OpClass.FCMP, "3r"),
    "fcle": (OpClass.FCMP, "3r"),
    "fceq": (OpClass.FCMP, "3r"),
    "fmov": (OpClass.FADD, "2r"),
    "fneg": (OpClass.FADD, "2r"),
    "fabs": (OpClass.FADD, "2r"),
    "itof": (OpClass.FADD, "2r"),
    "ftoi": (OpClass.FADD, "2r"),
    "fli": (OpClass.FADD, "rf"),
    "lw": (OpClass.LOAD, "mem"),
    "lf": (OpClass.LOAD, "mem"),
    "lb": (OpClass.LOAD, "mem"),   # sign-extended byte
    "lbu": (OpClass.LOAD, "mem"),  # zero-extended byte
    "lh": (OpClass.LOAD, "mem"),   # sign-extended halfword
    "lhu": (OpClass.LOAD, "mem"),
    "sw": (OpClass.STORE, "mem"),
    "sf": (OpClass.STORE, "mem"),
    "sb": (OpClass.STORE, "mem"),
    "sh": (OpClass.STORE, "mem"),
    "beq": (OpClass.BRANCH, "b2"),
    "bne": (OpClass.BRANCH, "b2"),
    "blt": (OpClass.BRANCH, "b2"),
    "bge": (OpClass.BRANCH, "b2"),
    "blez": (OpClass.BRANCH, "b1"),
    "bgtz": (OpClass.BRANCH, "b1"),
    "bltz": (OpClass.BRANCH, "b1"),
    "bgez": (OpClass.BRANCH, "b1"),
    "j": (OpClass.JUMP, "j"),
    "jal": (OpClass.CALL, "j"),
    "jr": (OpClass.RETURN, "jr"),
    "nop": (OpClass.NOP, "none"),
    "halt": (OpClass.HALT, "none"),
}


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()] if rest else []


class _Statement:
    """One source statement surviving pass 1."""

    __slots__ = ("mnemonic", "operands", "line_no", "line")

    def __init__(self, mnemonic: str, operands: List[str], line_no: int, line: str):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line_no = line_no
        self.line = line


def assemble(source: str, name: str = "<anonymous>") -> Program:
    """Assemble ``source`` into a :class:`~repro.isa.program.Program`."""
    try:
        return _assemble(source, name)
    except AssemblyError as exc:
        if exc.name is None and name != "<anonymous>":
            raise exc.with_name(name) from None
        raise


def _assemble(source: str, name: str) -> Program:
    labels: Dict[str, int] = {}
    data: Dict[int, object] = {}
    data_labels: Dict[str, int] = {}
    statements: List[_Statement] = []
    section = "text"
    data_cursor = DATA_BASE

    # Pass 1: collect labels, lay out data, keep instruction statements.
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while True:
            match = _LABEL_DEF.match(line)
            if not match:
                break
            label = match.group(1)
            if label in labels or label in data_labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no, raw)
            if section == "text":
                labels[label] = len(statements)
            else:
                data_labels[label] = data_cursor
            line = line[match.end():].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split(None, 1)
            directive, rest = parts[0], (parts[1] if len(parts) > 1 else "")
            if directive == ".text":
                section = "text"
            elif directive == ".data":
                section = "data"
            elif directive == ".word":
                for tok in _split_operands(rest):
                    try:
                        data[data_cursor] = int(tok, 0)
                    except ValueError:
                        raise AssemblyError(f"bad word value {tok!r}", line_no, raw)
                    data_cursor += WORD_SIZE
            elif directive == ".float":
                for tok in _split_operands(rest):
                    try:
                        data[data_cursor] = float(tok)
                    except ValueError:
                        raise AssemblyError(f"bad float value {tok!r}", line_no, raw)
                    data_cursor += WORD_SIZE
            elif directive == ".space":
                try:
                    count = int(rest.strip(), 0)
                except ValueError:
                    raise AssemblyError(f"bad .space count {rest!r}", line_no, raw)
                if count < 0:
                    raise AssemblyError(".space count must be non-negative", line_no, raw)
                data_cursor += count * WORD_SIZE
            else:
                raise AssemblyError(f"unknown directive {directive!r}", line_no, raw)
            continue
        if section != "text":
            raise AssemblyError("instruction outside .text section", line_no, raw)
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        if mnemonic not in _OPCODES:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no, raw)
        statements.append(_Statement(mnemonic, operands, line_no, raw))

    # Pass 2: encode instructions, resolving labels.
    instructions = [
        _encode(stmt, labels, data_labels) for stmt in statements
    ]
    return Program(
        instructions=tuple(instructions),
        labels=labels,
        data=data,
        data_labels=data_labels,
        name=name,
        data_end=data_cursor,
    )


def _need(stmt: _Statement, count: int) -> None:
    if len(stmt.operands) != count:
        raise AssemblyError(
            f"{stmt.mnemonic} expects {count} operand(s), got {len(stmt.operands)}",
            stmt.line_no,
            stmt.line,
        )


def _reg(stmt: _Statement, token: str) -> int:
    try:
        return parse_register(token)
    except ValueError as exc:
        raise AssemblyError(str(exc), stmt.line_no, stmt.line) from None


def _int(stmt: _Statement, token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate {token!r}", stmt.line_no, stmt.line) from None


def _text_label(stmt: _Statement, token: str, labels: Dict[str, int]) -> int:
    if token not in labels:
        raise AssemblyError(f"undefined label {token!r}", stmt.line_no, stmt.line)
    return labels[token]


def _encode(
    stmt: _Statement, labels: Dict[str, int], data_labels: Dict[str, int]
) -> Instruction:
    opclass, fmt = _OPCODES[stmt.mnemonic]
    ops = stmt.operands
    if fmt == "3r":
        _need(stmt, 3)
        return Instruction(
            stmt.mnemonic, opclass,
            rd=_reg(stmt, ops[0]), srcs=(_reg(stmt, ops[1]), _reg(stmt, ops[2])),
        )
    if fmt == "2ri":
        _need(stmt, 3)
        return Instruction(
            stmt.mnemonic, opclass,
            rd=_reg(stmt, ops[0]), srcs=(_reg(stmt, ops[1]),), imm=_int(stmt, ops[2]),
        )
    if fmt == "2r":
        _need(stmt, 2)
        return Instruction(
            stmt.mnemonic, opclass, rd=_reg(stmt, ops[0]), srcs=(_reg(stmt, ops[1]),),
        )
    if fmt == "ri":
        _need(stmt, 2)
        return Instruction(stmt.mnemonic, opclass, rd=_reg(stmt, ops[0]), imm=_int(stmt, ops[1]))
    if fmt == "rf":
        _need(stmt, 2)
        try:
            value = float(ops[1])
        except ValueError:
            raise AssemblyError(
                f"bad float immediate {ops[1]!r}", stmt.line_no, stmt.line
            ) from None
        return Instruction(stmt.mnemonic, opclass, rd=_reg(stmt, ops[0]), fimm=value)
    if fmt == "rl":
        _need(stmt, 2)
        label = ops[1]
        if label not in data_labels:
            raise AssemblyError(
                f"undefined data label {label!r}", stmt.line_no, stmt.line
            )
        return Instruction(
            stmt.mnemonic, opclass,
            rd=_reg(stmt, ops[0]), imm=data_labels[label], data_label=label,
        )
    if fmt == "mem":
        _need(stmt, 2)
        match = _MEM_OPERAND.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblyError(
                f"bad memory operand {ops[1]!r}", stmt.line_no, stmt.line
            )
        disp = int(match.group(1)) if match.group(1) else 0
        base = _reg(stmt, match.group(2))
        value_reg = _reg(stmt, ops[0])
        if opclass == OpClass.LOAD:
            return Instruction(stmt.mnemonic, opclass, rd=value_reg, srcs=(base,), imm=disp)
        return Instruction(stmt.mnemonic, opclass, srcs=(base, value_reg), imm=disp)
    if fmt == "b2":
        _need(stmt, 3)
        return Instruction(
            stmt.mnemonic, opclass,
            srcs=(_reg(stmt, ops[0]), _reg(stmt, ops[1])),
            target=_text_label(stmt, ops[2], labels),
        )
    if fmt == "b1":
        _need(stmt, 2)
        return Instruction(
            stmt.mnemonic, opclass,
            srcs=(_reg(stmt, ops[0]),), target=_text_label(stmt, ops[1], labels),
        )
    if fmt == "j":
        _need(stmt, 1)
        target = _text_label(stmt, ops[0], labels)
        if stmt.mnemonic == "jal":
            return Instruction(stmt.mnemonic, opclass, rd=RETURN_ADDRESS, target=target)
        return Instruction(stmt.mnemonic, opclass, target=target)
    if fmt == "jr":
        _need(stmt, 1)
        return Instruction(stmt.mnemonic, opclass, srcs=(_reg(stmt, ops[0]),))
    if fmt == "none":
        _need(stmt, 0)
        return Instruction(stmt.mnemonic, opclass)
    raise AssemblyError(f"unhandled format {fmt!r}", stmt.line_no, stmt.line)
