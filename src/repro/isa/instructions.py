"""Instruction formats and operation classes of the mini ISA.

Operation classes carry the execution latencies of the paper's base
processor (Section 5.1): integer operations take 1 cycle except
multiplication (4) and division (12); floating-point addition/subtraction
and comparison take 2 cycles, multiplication 4 (SP) / 5 (DP), division
12 (SP) / 15 (DP).  Loads and stores are scheduled by the load/store queue
and the memory hierarchy, so their :func:`latency_of` is the 1-cycle address
calculation only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class OpClass(enum.IntEnum):
    """Functional classes, each with a fixed execution latency."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FADD = 3      # fp add/sub (SP and DP share a 2-cycle latency)
    FMUL_SP = 4
    FMUL_DP = 5
    FDIV_SP = 6
    FDIV_DP = 7
    FCMP = 8
    LOAD = 9
    STORE = 10
    BRANCH = 11
    JUMP = 12
    CALL = 13
    RETURN = 14
    NOP = 15
    HALT = 16


_LATENCY = {
    OpClass.IALU: 1,
    OpClass.IMUL: 4,
    OpClass.IDIV: 12,
    OpClass.FADD: 2,
    OpClass.FMUL_SP: 4,
    OpClass.FMUL_DP: 5,
    OpClass.FDIV_SP: 12,
    OpClass.FDIV_DP: 15,
    OpClass.FCMP: 2,
    OpClass.LOAD: 1,     # address calculation; memory latency is modelled separately
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.NOP: 1,
    OpClass.HALT: 1,
}

CONTROL_CLASSES = frozenset(
    (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN)
)

MEMORY_CLASSES = frozenset((OpClass.LOAD, OpClass.STORE))


def latency_of(opclass: OpClass) -> int:
    """Execution latency in cycles of an operation class."""
    return _LATENCY[opclass]


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``rd`` is the destination register (flat id, ``None`` for stores,
    branches and jumps), ``srcs`` the source registers in operand order,
    ``imm`` an immediate (also the displacement of loads/stores), and
    ``target`` the *resolved* instruction index of a branch/jump/call.
    ``data_label`` survives assembly for ``la`` so disassembly stays
    readable.
    """

    opcode: str
    opclass: OpClass
    rd: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[int] = None
    fimm: Optional[float] = None
    target: Optional[int] = None
    data_label: Optional[str] = None

    @property
    def is_load(self) -> bool:
        return self.opclass == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass == OpClass.STORE

    @property
    def is_control(self) -> bool:
        return self.opclass in CONTROL_CLASSES

    def __str__(self) -> str:  # pragma: no cover - debug aid
        from repro.isa.registers import register_name

        parts = [self.opcode]
        if self.rd is not None:
            parts.append(register_name(self.rd))
        parts.extend(register_name(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.fimm is not None:
            parts.append(repr(self.fimm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
