"""Assembled program representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.isa.instructions import Instruction

TEXT_BASE = 0x1000
DATA_BASE = 0x100000
WORD_SIZE = 4


@dataclass
class Program:
    """An assembled program: code, label maps and an initial data image.

    ``data`` maps *byte* addresses (word aligned) to initial values; the
    interpreter materializes it into its word-addressed memory.  ``pc_of``
    converts an instruction index into the instruction address used as the
    PC throughout the prediction machinery.
    """

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, object] = field(default_factory=dict)
    data_labels: Dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    name: str = "<anonymous>"
    #: First byte address past the assembled data image (``.word``,
    #: ``.float`` and ``.space`` all advance it); static analysis uses it
    #: as the upper bound of the last labelled region.
    data_end: int = DATA_BASE

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of(self, index: int) -> int:
        """Instruction address of the instruction at ``index``."""
        return self.text_base + WORD_SIZE * index

    def index_of(self, pc: int) -> int:
        """Inverse of :meth:`pc_of`."""
        index, rem = divmod(pc - self.text_base, WORD_SIZE)
        if rem or not 0 <= index < len(self.instructions):
            raise ValueError(f"pc {pc:#x} is not inside program {self.name!r}")
        return index

    def address_of(self, label: str) -> int:
        """Byte address of a data label."""
        try:
            return self.data_labels[label]
        except KeyError:
            raise KeyError(f"no data label {label!r} in program {self.name!r}") from None

    def disassemble(self) -> str:
        """A printable listing (debug / example aid)."""
        index_labels: Dict[int, str] = {v: k for k, v in self.labels.items()}
        lines = []
        for i, inst in enumerate(self.instructions):
            label = index_labels.get(i)
            prefix = f"{label}:" if label else ""
            lines.append(f"{prefix:>16} {self.pc_of(i):#08x}  {inst}")
        return "\n".join(lines)
