"""``130.li`` stand-in: a linked-list interpreter.

This is the paper's own motivating example (Figure 3): every node of a
heap-allocated list is visited by *two* functions per traversal — ``foo``
accumulates ``l->data`` into a total, ``bar`` compares ``l->data`` against a
key — so each node's data word is read twice in short succession by two
distinct static loads.  That pair of loads is the canonical RAR dependence.
A memory-resident accumulator and an occasional node update provide the
RAW (store→load) traffic typical of lisp interpreters.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder, linked_list_words
from repro.workloads.base import Workload, lcg_sequence, scaled

_NODES = 48
_BASE_TRAVERSALS = 650


def build(scale: float = 1.0, input_seed: int = 0) -> str:
    """``input_seed`` selects an alternative list layout and payloads."""
    traversals = scaled(_BASE_TRAVERSALS, scale)
    order = list(lcg_sequence(seed=0x11 ^ input_seed, count=_NODES, modulus=1 << 30))
    # Derive a permutation: sort slot indices by random keys.
    slots = sorted(range(_NODES), key=lambda i: order[i])
    payloads = [v % 257 for v in lcg_sequence(seed=0x22 ^ input_seed, count=_NODES, modulus=1 << 16)]
    node_words = linked_list_words(slots, payloads)

    asm = AsmBuilder()
    asm.words("nodes", node_words)
    asm.word("head", slots[0] * 8)  # relative; relocated at startup
    asm.word("total", 0)
    asm.word("key", payloads[len(payloads) // 2])
    asm.word("hits", 0)

    asm.comment("relocate next pointers from slot offsets to absolute addresses")
    asm.ins(
        "la   r1, nodes",
        "li   r2, 0",
        f"li   r3, {_NODES}",
    )
    asm.label("reloc")
    asm.ins(
        "sll  r4, r2, 3",        # node byte offset
        "add  r4, r4, r1",
        "lw   r5, 4(r4)",        # next (relative)
        "bltz r5, endmark",
        "add  r5, r5, r1",
        "sw   r5, 4(r4)",
        "j    relocnext",
    )
    asm.label("endmark")
    asm.ins("sw   r0, 4(r4)")
    asm.label("relocnext")
    asm.ins(
        "addi r2, r2, 1",
        "blt  r2, r3, reloc",
        "la   r10, head",
        "lw   r11, 0(r10)",
        "add  r11, r11, r1",
        "sw   r11, 0(r10)",
    )

    asm.comment("outer traversal loop")
    asm.ins(f"li   r20, {traversals}", "li   r22, 0")
    asm.label("outer")
    asm.ins(
        "la   r10, head",
        "lw   r1, 0(r10)",       # head pointer (read-only global: RAR)
    )
    asm.label("visit")
    asm.ins("beq  r1, r0, done_list")
    asm.comment("foo(l): total += l->data")
    asm.ins(
        "lw   r2, 0(r1)",        # load data  -- RAR source
        "la   r3, total",
        "lw   r4, 0(r3)",        # RAW with the store below
        "add  r4, r4, r2",
        "sw   r4, 0(r3)",
    )
    asm.comment("bar(l): if (l->data == key) hits++")
    asm.ins(
        "lw   r5, 0(r1)",        # load data again -- RAR sink
        "la   r6, key",
        "lw   r7, 0(r6)",        # read-only global: self-RAR
        "bne  r5, r7, no_hit",
        "la   r8, hits",
        "lw   r9, 0(r8)",
        "addi r9, r9, 1",
        "sw   r9, 0(r8)",
    )
    asm.label("no_hit")
    asm.ins(
        "lw   r1, 4(r1)",        # l = l->next (pointer chase)
        "j    visit",
    )
    asm.label("done_list")
    asm.comment("every 8th traversal, mutate one node (RAW for later readers)")
    asm.ins(
        "addi r22, r22, 1",
        "andi r23, r22, 7",
        "bne  r23, r0, no_mut",
        "la   r10, head",
        "lw   r24, 0(r10)",
        "lw   r25, 0(r24)",
        "addi r25, r25, 3",
        "sw   r25, 0(r24)",
    )
    asm.label("no_mut")
    asm.ins(
        "addi r20, r20, -1",
        "bgtz r20, outer",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="li",
    spec_name="130.li",
    category="int",
    description="linked-list interpreter; two readers per node (Figure 3 idiom)",
    builder=build,
    sampling="N/A",
)
