"""``141.apsi`` stand-in: atmospheric model with many global scalars.

The paper attributes the FP codes' RAR dominance to "a large number of
variables with long lifetimes that are not register allocated" (Section
5.2).  This kernel makes that idiom explicit: two dozen model parameters
live in memory and are re-loaded by the physics routine at every column
update (each such load RAR-depends on its own previous instance), while a
handful of prognostic scalars are read-modify-written (RAW).
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_LEVELS = 30
_NUM_PARAMS = 12
_BASE_STEPS = 250


def build(scale: float = 1.0, input_seed: int = 0) -> str:
    """``input_seed`` selects alternative model parameters and a column."""
    steps = scaled(_BASE_STEPS, scale)
    params = [0.01 * (1 + v % 90)
              for v in lcg_sequence(0xA5 ^ input_seed, _NUM_PARAMS, 1 << 16)]
    column = [280.0 + round(v / (1 << 22), 6)
              for v in lcg_sequence(0xA6 ^ input_seed, _LEVELS, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("column_t", column)
    for i, value in enumerate(params):
        asm.floats(f"param{i}", [round(value, 6)])
    asm.floats("surface_flux", [0.0])
    asm.floats("precip", [0.0])

    asm.ins(f"li   r20, {steps}", "la   r1, column_t")
    asm.label("step")
    asm.ins("li   r2, 1")
    asm.label("level")
    asm.ins(
        "sll  r3, r2, 2",
        "add  r3, r3, r1",
        "lf   f1, 0(r3)",                       # T[k]
        "lf   f2, -4(r3)",                      # T[k-1] (RAW: updated below)
    )
    # The physics: every parameter re-loaded from memory at every level.
    for i in range(_NUM_PARAMS):
        asm.ins(f"la   r4, param{i}", "lf   f3, 0(r4)")
        if i % 3 == 0:
            asm.ins("fmul.d f1, f1, f3")
        elif i % 3 == 1:
            asm.ins("fadd.d f1, f1, f3")
        else:
            asm.ins("fmul.d f4, f2, f3", "fadd.d f1, f1, f4")
    asm.ins(
        "fli  f5, 0.999",
        "fmul.d f1, f1, f5",
        "sf   f1, 0(r3)",                       # in-place column update
        # prognostic accumulators (RAW each level)
        "la   r5, surface_flux",
        "lf   f6, 0(r5)",
        "fadd.d f6, f6, f1",
        "sf   f6, 0(r5)",
        "addi r2, r2, 1",
        f"li   r6, {_LEVELS}",
        "blt  r2, r6, level",
        "la   r7, precip",
        "lf   f7, 0(r7)",
        "fli  f8, 0.01",
        "fmul.d f9, f6, f8",
        "fadd.d f7, f7, f9",
        "sf   f7, 0(r7)",
        "addi r20, r20, -1",
        "bgtz r20, step",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="aps",
    spec_name="141.apsi",
    category="fp",
    description="memory-resident model parameters re-loaded per level (RAR)",
    builder=build,
    sampling="N/A",
)
