"""``110.applu`` stand-in: SSOR banded triangular solve.

Applu's lower-triangular sweep reads several coefficient arrays per point
and consumes solution values produced a row earlier (RAW at one-row
distance), while the coefficient arrays are re-read across the sweep's
sub-steps (RAR).  Memory-resident relaxation parameters add read-only
scalar traffic.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_N = 18
_BASE_SWEEPS = 43


def build(scale: float = 1.0) -> str:
    sweeps = scaled(_BASE_SWEEPS, scale)
    cells = _N * _N

    def coeffs(seed: int):
        return [0.1 + round(v / (1 << 23), 6)
                for v in lcg_sequence(seed, cells, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("coef_a", coeffs(0xA0))
    asm.floats("coef_b", coeffs(0xA1))
    asm.floats("coef_c", coeffs(0xA2))
    asm.floats("sol", [1.0] * cells)
    asm.floats("omega", [1.2])
    asm.floats("rsd", [0.0])

    row = 4 * _N
    asm.ins(
        f"li   r20, {sweeps}",
        "la   r1, coef_a",
        "la   r2, coef_b",
        "la   r3, coef_c",
        "la   r4, sol",
        "la   r5, omega",
    )
    asm.label("sweep")
    asm.ins("li   r6, 1")
    asm.label("irow")
    asm.ins(
        "li   r7, 1",
        f"li   r8, {_N}",
        "mul  r9, r6, r8",
        "sll  r9, r9, 2",
    )
    asm.label("jcol")
    asm.ins(
        "sll  r10, r7, 2",
        "add  r11, r9, r10",
        "add  r12, r11, r4",                    # &sol[i][j]
        # lower-triangular update: uses sol written at (i-1,j) and (i,j-1)
        f"lf   f1, {-row}(r12)",                # RAW with previous row's store
        "lf   f2, -4(r12)",                     # RAW with previous col's store
        "add  r13, r11, r1",
        "lf   f3, 0(r13)",                      # coef_a (streamed)
        "add  r14, r11, r2",
        "lf   f4, 0(r14)",                      # coef_b
        "fmul.d f5, f1, f3",
        "fmul.d f6, f2, f4",
        "fadd.d f5, f5, f6",
        # second sub-step re-reads the same coefficients (RAR)
        "lf   f7, 0(r13)",                      # coef_a again: RAR
        "lf   f8, 0(r14)",                      # coef_b again: RAR
        "add  r15, r11, r3",
        "lf   f9, 0(r15)",                      # coef_c
        "fadd.d f10, f7, f8",
        "fmul.d f10, f10, f9",
        "fadd.d f5, f5, f10",
        "lf   f11, 0(r5)",                      # omega (read-only scalar)
        "fmul.d f5, f5, f11",
        "lf   f12, 0(r12)",                     # old solution value
        "fsub.d f13, f5, f12",
        "fli  f14, 0.1",
        "fmul.d f13, f13, f14",
        "fadd.d f15, f12, f13",
        "sf   f15, 0(r12)",                     # in-place solution update
        "addi r7, r7, 1",
        f"li   r16, {_N - 1}",
        "blt  r7, r16, jcol",
        "addi r6, r6, 1",
        "blt  r6, r16, irow",
    )
    asm.ins(
        "la   r17, rsd",
        "lf   f16, 0(r17)",
        "fabs f17, f13",
        "fadd.d f16, f16, f17",
        "sf   f16, 0(r17)",
        "addi r20, r20, -1",
        "bgtz r20, sweep",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="apl",
    spec_name="110.applu",
    category="fp",
    description="SSOR sweep; coefficient re-reads (RAR) + row-distance RAW",
    builder=build,
    sampling="1:1",
)
