"""``134.perl`` stand-in: a stack bytecode interpreter.

Script interpreters keep an operand stack and a variable table in memory.
Pushes store what pops soon load (RAW at stack-discipline distances), the
bytecode array is re-fetched on every pass over the script (RAR on code
words), and variable reads hit slots written by earlier assignments (RAW)
or re-read by later expressions (RAR).
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_VARS = 16
_CODE = 48           # bytecodes per script pass
_BASE_PASSES = 330


def build(scale: float = 1.0) -> str:
    passes = scaled(_BASE_PASSES, scale)
    raw = lcg_sequence(seed=0x9E, count=2 * _CODE, modulus=1 << 24)
    # op: 0=push-const 1=load-var 2=store-var 3=add 4=mul (binary ops pop 2)
    code = []
    depth = 0
    for i in range(_CODE):
        if depth < 2:
            op = 0 if raw[2 * i] % 2 == 0 else 1
        else:
            op = raw[2 * i] % 5
        if op in (0, 1):
            depth += 1
        elif op == 2:
            depth -= 1
        else:
            depth -= 1
        operand = raw[2 * i + 1] % _VARS if op in (1, 2) else raw[2 * i + 1] % 100
        code.append(op * 256 + operand)
    # Terminate with stores to drain the stack.
    while depth > 0:
        code.append(2 * 256 + (depth % _VARS))
        depth -= 1

    asm = AsmBuilder()
    asm.words("bytecode", code)
    asm.words("variables", [v % 50 for v in lcg_sequence(0x9F, _VARS, 1 << 16)])
    asm.space("stack", 64)
    asm.word("executed_ops", 0)

    asm.ins(
        f"li   r20, {passes}",
        "la   r1, bytecode",
        "la   r2, variables",
        "la   r3, stack",
        f"li   r26, {len(code)}",
    )
    asm.label("pass_top")
    asm.ins("li   r4, 0", "li   r5, 0")   # r4 = vpc, r5 = stack depth
    asm.label("dispatch")
    asm.ins(
        "sll  r6, r4, 2",
        "add  r6, r6, r1",
        "lw   r7, 0(r6)",            # fetch bytecode (RAR across passes)
        "srl  r8, r7, 8",            # op
        "andi r9, r7, 255",          # operand
        "li   r10, 1",
        "beq  r8, r0, op_push",
        "beq  r8, r10, op_loadv",
        "li   r10, 2",
        "beq  r8, r10, op_storev",
        "li   r10, 3",
        "beq  r8, r10, op_add",
        "j    op_mul",
    )
    asm.label("op_push")
    asm.ins(
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "sw   r9, 0(r11)",           # push constant
        "addi r5, r5, 1",
        "j    next",
    )
    asm.label("op_loadv")
    asm.ins(
        "sll  r12, r9, 2",
        "add  r12, r12, r2",
        "lw   r13, 0(r12)",          # variable read (RAW/RAR with var traffic)
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "sw   r13, 0(r11)",          # push
        "addi r5, r5, 1",
        "j    next",
    )
    asm.label("op_storev")
    asm.ins(
        "addi r5, r5, -1",
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "lw   r13, 0(r11)",          # pop (RAW with push store)
        "sll  r12, r9, 2",
        "add  r12, r12, r2",
        "sw   r13, 0(r12)",          # variable write
        "j    next",
    )
    asm.label("op_add")
    asm.ins(
        "addi r5, r5, -1",
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "lw   r13, 0(r11)",          # pop rhs
        "addi r5, r5, -1",
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "lw   r14, 0(r11)",          # pop lhs
        "add  r14, r14, r13",
        "sw   r14, 0(r11)",          # push result
        "addi r5, r5, 1",
        "j    next",
    )
    asm.label("op_mul")
    asm.ins(
        "addi r5, r5, -1",
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "lw   r13, 0(r11)",
        "addi r5, r5, -1",
        "sll  r11, r5, 2",
        "add  r11, r11, r3",
        "lw   r14, 0(r11)",
        "mul  r14, r14, r13",
        "sw   r14, 0(r11)",
        "addi r5, r5, 1",
    )
    asm.label("next")
    asm.ins(
        "la   r15, executed_ops",
        "lw   r16, 0(r15)",
        "addi r16, r16, 1",
        "sw   r16, 0(r15)",
        "addi r4, r4, 1",
        "blt  r4, r26, dispatch",
        "addi r20, r20, -1",
        "bgtz r20, pass_top",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="per",
    spec_name="134.perl",
    category="int",
    description="stack bytecode interpreter; push/pop RAW, code refetch RAR",
    builder=build,
    sampling="1:1",
)
