"""``102.swim`` stand-in: shallow-water stencils.

Swim computes several flux arrays from the same pressure/velocity fields:
``CU``, ``CV``, ``Z`` and ``H`` all read overlapping windows of ``P``,
``U`` and ``V``.  A single ``P[i][j]`` element is therefore read by many
static loads within one inner iteration — the strongest RAR pattern in the
FP suite — while the computed flux arrays are write-only in the kernel.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_N = 18
_BASE_SWEEPS = 33


def build(scale: float = 1.0, n: int = _N) -> str:
    """Build at grid size ``n`` (``n > 40`` exceeds the 32K L1 data cache,
    for cache-pressure studies)."""
    sweeps = scaled(_BASE_SWEEPS, scale)
    cells = n * n

    def grid(seed: int):
        return [1.0 + round(v / (1 << 22), 6)
                for v in lcg_sequence(seed, cells, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("field_p", grid(0x50))
    asm.floats("field_u", grid(0x51))
    asm.floats("field_v", grid(0x52))
    asm.space("flux_cu", cells)
    asm.space("flux_cv", cells)
    asm.space("flux_z", cells)
    asm.space("flux_h", cells)
    asm.floats("fsdx", [4.0 / 100.0])
    asm.floats("fsdy", [4.0 / 100.0])

    row = 4 * n
    asm.ins(
        f"li   r20, {sweeps}",
        "la   r1, field_p",
        "la   r2, field_u",
        "la   r3, field_v",
        "la   r4, flux_cu",
        "la   r5, flux_cv",
        "la   r6, flux_z",
        "la   r7, flux_h",
    )
    asm.label("sweep")
    asm.ins("li   r8, 1")
    asm.label("irow")
    asm.ins(
        "li   r9, 1",
        f"li   r10, {n}",
        "mul  r11, r8, r10",
        "sll  r11, r11, 2",
    )
    asm.label("jcol")
    asm.ins(
        "sll  r12, r9, 2",
        "add  r13, r11, r12",                  # element byte offset
        "add  r14, r13, r1",                   # &P[i][j]
        "add  r15, r13, r2",                   # &U[i][j]
        "add  r16, r13, r3",                   # &V[i][j]
        # CU = .5*(P[i][j] + P[i][j+1]) * U[i][j]
        "lf   f1, 0(r14)",
        "lf   f2, 4(r14)",
        "lf   f3, 0(r15)",
        "fadd.d f4, f1, f2",
        "fmul.d f4, f4, f3",
        "add  r17, r13, r4",
        "sf   f4, 0(r17)",
        # CV = .5*(P[i][j] + P[i+1][j]) * V[i][j]  (re-reads P[i][j]: RAR)
        "lf   f5, 0(r14)",
        f"lf   f6, {row}(r14)",
        "lf   f7, 0(r16)",
        "fadd.d f8, f5, f6",
        "fmul.d f8, f8, f7",
        "add  r17, r13, r5",
        "sf   f8, 0(r17)",
        # Z = (fsdx*(V[i][j+1]-V[i][j]) - fsdy*(U[i+1][j]-U[i][j])) / P[i][j]
        "lf   f9, 4(r16)",
        "lf   f10, 0(r16)",                    # RAR with CV's V load
        f"lf   f11, {row}(r15)",
        "lf   f12, 0(r15)",                    # RAR with CU's U load
        "la   r18, fsdx",
        "lf   f13, 0(r18)",
        "la   r18, fsdy",
        "lf   f14, 0(r18)",
        "fsub.d f15, f9, f10",
        "fmul.d f15, f15, f13",
        "fsub.d f16, f11, f12",
        "fmul.d f16, f16, f14",
        "fsub.d f15, f15, f16",
        "lf   f17, 0(r14)",                    # P again: RAR
        "fdiv.d f15, f15, f17",
        "add  r17, r13, r6",
        "sf   f15, 0(r17)",
        # H = P[i][j] + .25*(U[i][j]^2 + V[i][j]^2)
        "lf   f18, 0(r14)",                    # P again: RAR
        "lf   f19, 0(r15)",                    # U again: RAR
        "lf   f20, 0(r16)",                    # V again: RAR
        "fmul.d f21, f19, f19",
        "fmul.d f22, f20, f20",
        "fadd.d f21, f21, f22",
        "fadd.d f21, f21, f18",
        "add  r17, r13, r7",
        "sf   f21, 0(r17)",
        "addi r9, r9, 1",
        f"li   r19, {n - 1}",
        "blt  r9, r19, jcol",
        "addi r8, r8, 1",
        "blt  r8, r19, irow",
        "addi r20, r20, -1",
        "bgtz r20, sweep",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="swm",
    spec_name="102.swim",
    category="fp",
    description="four flux arrays re-read the same P/U/V windows (heavy RAR)",
    builder=build,
    sampling="1:2",
)
