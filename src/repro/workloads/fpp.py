"""``145.fpppp`` stand-in: enormous straight-line blocks of memory temporaries.

Fpppp's two-electron integral code has basic blocks thousands of
instructions long; the compiler keeps hundreds of temporaries in memory.
A temporary is *stored* early in the block and *read several times* much
later.  With a 128-entry DDT the store has been evicted before the first
read (the RAW dependence is invisible — the paper's "distant store" case,
Section 3.1), but the second and third reads RAR-depend on the first read
at short distance, which is exactly the load population RAR-based cloaking
rescues.  The paper singles fpppp out for this behaviour (Section 5.4).
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_TEMPS = 160          # distinct memory temporaries (> 128-entry DDT)
_BASE_BLOCKS = 105


def build(scale: float = 1.0) -> str:
    blocks = scaled(_BASE_BLOCKS, scale)
    inputs = [0.5 + round(v / (1 << 21), 6)
              for v in lcg_sequence(0xF9, _TEMPS, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("inputs", inputs)
    asm.space("temps", _TEMPS)
    asm.floats("integral", [0.0])

    asm.ins(
        f"li   r20, {blocks}",
        "la   r1, inputs",
        "la   r2, temps",
        "la   r3, integral",
    )
    asm.label("block")
    asm.comment("phase 1: compute and spill all temporaries")
    asm.ins("li   r4, 0", f"li   r5, {_TEMPS}")
    asm.label("spill")
    asm.ins(
        "sll  r6, r4, 2",
        "add  r7, r6, r1",
        "lf   f1, 0(r7)",                       # input element
        "fmul.d f2, f1, f1",
        "fli  f3, 1.0",
        "fadd.d f2, f2, f3",
        "add  r8, r6, r2",
        "sf   f2, 0(r8)",                       # spill temp[i]
        "addi r4, r4, 1",
        "blt  r4, r5, spill",
    )
    asm.comment("phase 2: consume each temporary three times, far from its store")
    asm.ins("li   r4, 0", "lf   f4, 0(r3)")
    asm.label("consume")
    asm.ins(
        "sll  r6, r4, 2",
        "add  r8, r6, r2",
        "lf   f5, 0(r8)",                       # 1st read: RAW invisible (store evicted)
        "fmul.d f6, f5, f5",
        "lf   f7, 0(r8)",                       # 2nd read: RAR with 1st
        "fli  f8, 0.5",
        "fmul.d f9, f7, f8",
        "fadd.d f6, f6, f9",
        "lf   f10, 0(r8)",                      # 3rd read: RAR with 1st
        "fsub.d f11, f10, f8",
        "fmul.d f6, f6, f11",
        "fadd.d f4, f4, f6",
        "addi r4, r4, 1",
        "blt  r4, r5, consume",
    )
    asm.ins(
        "sf   f4, 0(r3)",
        "addi r20, r20, -1",
        "bgtz r20, block",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="fp*",
    spec_name="145.fpppp",
    category="fp",
    description="distant-store temporaries; RAW invisible to the DDT, RAR visible",
    builder=build,
    sampling="1:2",
)
