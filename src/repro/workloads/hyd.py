"""``104.hydro2d`` stand-in: in-place relaxation on a near-flat field.

Hydro2d is one of the few programs where last-value prediction beats
cloaking in the paper (Table 5.2: 49.9% VP-only).  The kernel reproduces
why: the field relaxes toward a flat solution, so the same static load
returns the same value execution after execution (high value locality),
while the in-place update (``A[i][j]`` written, then read as the left/up
neighbour of later points) creates genuine RAW traffic that keeps the
dependence mix balanced.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_N = 20
_BASE_STEPS = 60


def build(scale: float = 1.0) -> str:
    steps = scaled(_BASE_STEPS, scale)
    cells = _N * _N
    # Mostly-flat initial field: large constant plateau with a few bumps.
    noise = lcg_sequence(0x4D, cells, 1 << 20)
    field = [2.0 if v % 17 else 2.0 + (v % 5) * 0.25 for v in noise]

    asm = AsmBuilder()
    asm.floats("grid", field)
    asm.floats("quarter", [0.25])
    asm.floats("residual", [0.0])

    row = 4 * _N
    asm.ins(
        f"li   r20, {steps}",
        "la   r1, grid",
        "la   r2, quarter",
    )
    asm.label("step")
    asm.ins("li   r3, 1")
    asm.label("irow")
    asm.ins(
        "li   r4, 1",
        f"li   r5, {_N}",
        "mul  r6, r3, r5",
        "sll  r6, r6, 2",
    )
    asm.label("jcol")
    asm.ins(
        "sll  r7, r4, 2",
        "add  r8, r6, r7",
        "add  r8, r8, r1",                      # &A[i][j]
        "lf   f1, -4(r8)",                      # left (RAW: written at j-1)
        "lf   f2, 4(r8)",                       # right
        f"lf   f3, {-row}(r8)",                 # up (RAW: written in row i-1)
        f"lf   f4, {row}(r8)",                  # down
        "lf   f5, 0(r2)",                       # 0.25 (read-only scalar: RAR)
        "fadd.d f6, f1, f2",
        "fadd.d f7, f3, f4",
        "fadd.d f6, f6, f7",
        "fmul.d f6, f6, f5",
        "lf   f8, 0(r8)",                       # old centre (value-stable)
        "sf   f6, 0(r8)",                       # in-place update (RAW source)
        "fsub.d f9, f6, f8",
        "la   r9, residual",
        "lf   f10, 0(r9)",
        "fabs f11, f9",
        "fadd.d f10, f10, f11",
        "sf   f10, 0(r9)",
        "addi r4, r4, 1",
        f"li   r10, {_N - 1}",
        "blt  r4, r10, jcol",
        "addi r3, r3, 1",
        "blt  r3, r10, irow",
        "addi r20, r20, -1",
        "bgtz r20, step",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="hyd",
    spec_name="104.hydro2d",
    category="fp",
    description="in-place relaxation; flat field gives VP-friendly value locality",
    builder=build,
    sampling="1:10",
)
