"""``129.compress`` stand-in: LZW-style hash-table compression.

Compress is the most RAW-dominated SPECint program in the paper (Table 5.2
shows 41% RAW vs 1% RAR): it writes hash-table entries and promptly reads
them back while probing, and it keeps its coder state (prefix code, free
code counter, checksums) in memory, loading and storing it every symbol,
and it streams its input bytes from an in-memory buffer (like a file
read into memory).
The kernel mirrors exactly that structure and deliberately avoids
data-sharing idioms.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_TABLE = 1024         # hash table entries (words)
_INPUT = 2048         # input buffer (words, cycled)
_BASE_SYMBOLS = 12500


def build(scale: float = 1.0, input_seed: int = 0) -> str:
    """``input_seed`` selects an alternative input byte stream."""
    symbols = scaled(_BASE_SYMBOLS, scale)

    input_bytes = [v % 256 for v in lcg_sequence(0xC0 ^ input_seed, _INPUT, 1 << 20)]

    asm = AsmBuilder()
    asm.space("htab", _TABLE)
    asm.space("codetab", _TABLE)
    asm.words("input_buf", input_bytes)
    asm.word("prefix", 0)
    asm.word("free_code", 256)
    asm.word("checksum", 0)
    asm.word("out_count", 0)

    asm.ins(
        f"li   r20, {symbols}",
        "li   r21, 0",              # input buffer cursor
        "la   r1, htab",
        "la   r2, codetab",
        "la   r22, input_buf",
    )
    asm.label("symbol")
    asm.comment("next input byte from the in-memory buffer")
    asm.ins(
        "sll  r3, r21, 2",
        "add  r3, r3, r22",
        "lw   r4, 0(r3)",           # input symbol (streamed)
        "addi r21, r21, 1",
        f"slti r23, r21, {_INPUT}",
        "bne  r23, r0, com_nowrap",
        "li   r21, 0",
    )
    asm.label("com_nowrap")
    asm.comment("load coder state (memory-resident: RAW every iteration)")
    asm.ins(
        "la   r5, prefix",
        "lw   r6, 0(r5)",           # prefix code
        "sll  r7, r6, 8",
        "or   r7, r7, r4",          # fcode = prefix<<8 | symbol
        f"li   r8, {_TABLE - 1}",
        "and  r9, r7, r8",          # hash index
        "sll  r9, r9, 2",
        "add  r10, r9, r1",
        "lw   r11, 0(r10)",         # probe htab (RAW with insertions)
        "beq  r11, r7, hit",
    )
    asm.comment("miss: insert new code (store -> later probe loads = RAW)")
    asm.ins(
        "sw   r7, 0(r10)",
        "la   r12, free_code",
        "lw   r13, 0(r12)",
        "addi r13, r13, 1",
        "sw   r13, 0(r12)",
        "add  r14, r9, r2",
        "sw   r13, 0(r14)",         # codetab[h] = new code
        "mov  r15, r4",             # restart prefix at symbol
        "j    advance",
    )
    asm.label("hit")
    asm.ins(
        "add  r14, r9, r2",
        "lw   r15, 0(r14)",         # matched code becomes the prefix
        "la   r16, out_count",
        "lw   r17, 0(r16)",
        "addi r17, r17, 1",
        "sw   r17, 0(r16)",
    )
    asm.label("advance")
    asm.ins(
        "la   r5, prefix",
        "sw   r15, 0(r5)",          # store coder state back
        "la   r18, checksum",
        "lw   r19, 0(r18)",
        "add  r19, r19, r4",
        "sw   r19, 0(r18)",
        "addi r20, r20, -1",
        "bgtz r20, symbol",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="com",
    spec_name="129.compress",
    category="int",
    description="LZW hash coder; write-then-probe RAW traffic, minimal sharing",
    builder=build,
    sampling="1:2",
)
