"""``146.wave5`` stand-in: particle-in-cell field interpolation.

Wave5 pushes particles through electromagnetic fields on a grid.
Particles are processed in cell order, so consecutive particles
interpolate from the *same* grid cells — the grid loads of particle ``p``
RAR-depend on those of particle ``p-1`` — while each particle's position
and velocity are read-modify-written (RAW at one-timestep distance, too
far for the DDT, plus short-distance RAW inside the update).
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_GRID = 64
_PARTICLES = 96
_BASE_STEPS = 140


def build(scale: float = 1.0, input_seed: int = 0) -> str:
    """``input_seed`` selects an alternative field and particle placement."""
    steps = scaled(_BASE_STEPS, scale)
    field = [round(0.1 + v / (1 << 22), 6)
             for v in lcg_sequence(0xE5 ^ input_seed, _GRID, 1 << 20)]
    # Positions clustered so consecutive particles share cells.
    raw = lcg_sequence(0xE6 ^ input_seed, _PARTICLES, 1 << 20)
    positions = sorted(float(v % (_GRID * 100)) / 100.0 for v in raw)
    velocities = [round((v % 100) / 1000.0 - 0.05, 6)
                  for v in lcg_sequence(0xE7, _PARTICLES, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("efield", field)
    asm.floats("pos", [round(p, 6) for p in positions])
    asm.floats("vel", velocities)
    asm.floats("kinetic", [0.0])
    # Fortran common-block physics constants, re-read per particle.
    asm.floats("dt_step", [0.01])
    asm.floats("charge_mass", [0.85])

    asm.ins(
        f"li   r20, {steps}",
        "la   r1, efield",
        "la   r2, pos",
        "la   r3, vel",
    )
    asm.label("step")
    asm.ins("li   r4, 0", f"li   r5, {_PARTICLES}")
    asm.label("particle")
    asm.ins(
        "sll  r6, r4, 2",
        "add  r7, r6, r2",
        "add  r8, r6, r3",
        "lf   f1, 0(r7)",                       # position
        "ftoi r9, f1",                          # cell index
        f"li   r10, {_GRID - 2}",
        "rem  r9, r9, r10",
        "sll  r11, r9, 2",
        "add  r11, r11, r1",
        "lf   f2, 0(r11)",                      # field[cell]   (shared: RAR)
        "lf   f3, 4(r11)",                      # field[cell+1] (shared: RAR)
        "itof f4, r9",
        "fsub.d f5, f1, f4",                    # fractional offset
        "fsub.d f6, f3, f2",
        "fmul.d f6, f6, f5",
        "fadd.d f7, f2, f6",                    # interpolated field
        "lf   f8, 0(r8)",                       # velocity
        "la   r13, dt_step",
        "lf   f9, 0(r13)",                      # dt (self-RAR, always correct)
        "la   r14, charge_mass",
        "lf   f14, 0(r14)",                     # q/m (self-RAR)
        "fmul.d f9, f9, f14",
        "fmul.d f10, f7, f9",
        "fadd.d f8, f8, f10",
        "sf   f8, 0(r8)",                       # velocity update (RAW source)
        "fadd.d f11, f1, f8",
        "fabs f11, f11",
        "sf   f11, 0(r7)",                      # position update
        "la   r12, kinetic",
        "lf   f12, 0(r12)",
        "fmul.d f13, f8, f8",
        "fadd.d f12, f12, f13",
        "sf   f12, 0(r12)",                     # accumulator (RAW)
        "addi r4, r4, 1",
        "blt  r4, r5, particle",
        "addi r20, r20, -1",
        "bgtz r20, step",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="wav",
    spec_name="146.wave5",
    category="fp",
    description="particle push; neighbouring particles re-read field cells",
    builder=build,
    sampling="1:2",
)
