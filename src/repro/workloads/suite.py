"""The workload registry, ordered as in the paper's tables."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import (
    apl, aps, com, fpp, gcc, go, hyd, ijp, li, m88, mgd, per, su2, swm, tom,
    trb, vor, wav,
)
from repro.workloads.base import Workload

# Paper order: SPECint'95 block first, then SPECfp'95 (Table 5.1).
_ORDERED = [
    go.WORKLOAD,
    m88.WORKLOAD,
    gcc.WORKLOAD,
    com.WORKLOAD,
    li.WORKLOAD,
    ijp.WORKLOAD,
    per.WORKLOAD,
    vor.WORKLOAD,
    tom.WORKLOAD,
    swm.WORKLOAD,
    su2.WORKLOAD,
    hyd.WORKLOAD,
    mgd.WORKLOAD,
    apl.WORKLOAD,
    trb.WORKLOAD,
    aps.WORKLOAD,
    fpp.WORKLOAD,
    wav.WORKLOAD,
]

_BY_ABBREV: Dict[str, Workload] = {w.abbrev: w for w in _ORDERED}


def all_workloads() -> List[Workload]:
    """Every workload, integer codes first (paper table order)."""
    return list(_ORDERED)


def integer_workloads() -> List[Workload]:
    """The eight SPECint'95-like workloads."""
    return [w for w in _ORDERED if w.category == "int"]


def fp_workloads() -> List[Workload]:
    """The ten SPECfp'95-like workloads."""
    return [w for w in _ORDERED if w.category == "fp"]


def get_workload(abbrev: str) -> Workload:
    """Look a workload up by its paper abbreviation (e.g. ``"li"``)."""
    try:
        return _BY_ABBREV[abbrev]
    except KeyError:
        known = ", ".join(sorted(_BY_ABBREV))
        raise KeyError(f"unknown workload {abbrev!r}; known: {known}") from None
