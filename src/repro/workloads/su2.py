"""``103.su2cor`` stand-in: matrix-vector kernels over a reused vector.

Su2cor's propagator computation multiplies gauge matrices against vectors.
The source vector is re-read for every matrix row: each element of ``V``
is read once per row by the same static load, so successive executions of
that load revisit the same small address set (RAR at a distance of one row,
well within the detection window).  Matrix elements stream through once
(no dependence), and the result vector is written then read back by the
next multiply (long-distance RAW).
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_DIM = 24
_BASE_MULTIPLIES = 90


def build(scale: float = 1.0) -> str:
    multiplies = scaled(_BASE_MULTIPLIES, scale)

    def vals(seed: int, count: int):
        return [0.5 + round(v / (1 << 21), 6)
                for v in lcg_sequence(seed, count, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("matrix", vals(0x30, _DIM * _DIM))
    asm.floats("vec_in", vals(0x31, _DIM))
    asm.space("vec_out", _DIM)
    asm.floats("norm", [0.0])
    # f2c keeps loop scalars in memory: re-loaded every inner iteration.
    asm.floats("scale", [0.997])
    asm.floats("rowacc", [0.0])

    asm.ins(
        f"li   r20, {multiplies}",
        "la   r1, matrix",
        "la   r2, vec_in",
        "la   r3, vec_out",
    )
    asm.label("multiply")
    asm.ins("li   r4, 0")                       # row
    asm.label("row")
    asm.ins(
        f"li   r5, {_DIM}",
        "mul  r6, r4, r5",
        "sll  r6, r6, 2",
        "add  r6, r6, r1",                      # row base
        "li   r7, 0",                           # col
        "fli  f1, 0.0",                         # accumulator
    )
    asm.label("col")
    asm.ins(
        "sll  r8, r7, 2",
        "add  r9, r8, r6",
        "lf   f2, 0(r9)",                       # matrix element (streamed)
        "add  r10, r8, r2",
        "lf   f3, 0(r10)",                      # vector element (RAR per row)
        "la   r17, scale",
        "lf   f11, 0(r17)",                     # memory-resident scalar (self-RAR)
        "fmul.d f4, f2, f3",
        "fmul.d f4, f4, f11",
        "fadd.d f1, f1, f4",
        "addi r7, r7, 1",
        "blt  r7, r5, col",
    )
    asm.ins(
        "sll  r11, r4, 2",
        "add  r11, r11, r3",
        "sf   f1, 0(r11)",                      # result element
        # memory-resident row accumulator (store->load RAW chain)
        "la   r18, rowacc",
        "lf   f12, 0(r18)",
        "fadd.d f12, f12, f1",
        "sf   f12, 0(r18)",
        "addi r4, r4, 1",
        "blt  r4, r5, row",
    )
    asm.comment("norm of the output; feeds back into vec_in (RAW)")
    asm.ins(
        "li   r4, 0",
        "la   r12, norm",
        "lf   f5, 0(r12)",
    )
    asm.label("normloop")
    asm.ins(
        "sll  r13, r4, 2",
        "add  r14, r13, r3",
        "lf   f6, 0(r14)",                      # RAW with the multiply's store
        "fabs f7, f6",
        "fadd.d f5, f5, f7",
        # nudge a single vec_in element per multiply so values stay live
        # without turning the vector's re-reads into RAW dependences
        "rem  r16, r20, r5",
        "bne  r4, r16, no_nudge",
        "add  r15, r13, r2",
        "fli  f8, 0.001",
        "fmul.d f9, f6, f8",
        "lf   f10, 0(r15)",
        "fadd.d f10, f10, f9",
        "sf   f10, 0(r15)",
    )
    asm.label("no_nudge")
    asm.ins(
        "addi r4, r4, 1",
        "blt  r4, r5, normloop",
    )
    asm.ins(
        "sf   f5, 0(r12)",
        "addi r20, r20, -1",
        "bgtz r20, multiply",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="su2",
    spec_name="103.su2cor",
    category="fp",
    description="matrix-vector products; source vector re-read every row",
    builder=build,
    sampling="1:3",
)
