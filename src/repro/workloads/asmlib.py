"""Assembly source construction helpers shared by the workload kernels."""

from __future__ import annotations

from typing import Iterable, List, Sequence


class AsmBuilder:
    """Accumulates ``.data`` and ``.text`` sections and renders source.

    Kernels are built programmatically (array sizes and iteration counts
    depend on the workload scale), so string concatenation through this
    builder keeps them readable while staying plain assembly underneath.
    """

    def __init__(self) -> None:
        self._data: List[str] = []
        self._text: List[str] = []

    # -- data section -------------------------------------------------

    def words(self, label: str, values: Iterable[int]) -> None:
        """Emit ``label: .word v0, v1, ...`` (chunked for readability)."""
        values = list(values)
        if not values:
            raise ValueError(f"words({label!r}) needs at least one value")
        first, rest = values[:16], values[16:]
        self._data.append(f"{label}: .word " + ", ".join(str(v) for v in first))
        for i in range(0, len(rest), 16):
            chunk = rest[i:i + 16]
            self._data.append("    .word " + ", ".join(str(v) for v in chunk))

    def floats(self, label: str, values: Iterable[float]) -> None:
        """Emit ``label: .float v0, v1, ...``."""
        values = list(values)
        if not values:
            raise ValueError(f"floats({label!r}) needs at least one value")
        first, rest = values[:8], values[8:]
        self._data.append(f"{label}: .float " + ", ".join(repr(v) for v in first))
        for i in range(0, len(rest), 8):
            chunk = rest[i:i + 8]
            self._data.append("    .float " + ", ".join(repr(v) for v in chunk))

    def space(self, label: str, nwords: int) -> None:
        """Emit ``label: .space nwords`` (zero-initialized words)."""
        self._data.append(f"{label}: .space {nwords}")

    def word(self, label: str, value: int = 0) -> None:
        """Emit a single labelled word."""
        self._data.append(f"{label}: .word {value}")

    # -- text section ---------------------------------------------------

    def label(self, name: str) -> None:
        self._text.append(f"{name}:")

    def ins(self, *lines: str) -> None:
        """Append instruction lines (each a full statement)."""
        for line in lines:
            self._text.append(f"    {line}")

    def comment(self, text: str) -> None:
        self._text.append(f"    # {text}")

    def source(self) -> str:
        parts = []
        if self._data:
            parts.append(".data")
            parts.extend(self._data)
            parts.append("")
        parts.append(".text")
        parts.extend(self._text)
        return "\n".join(parts) + "\n"


def linked_list_words(
    node_order: Sequence[int], payloads: Sequence[int], base_label_addr_step: int = 8
) -> List[int]:
    """Lay out a singly linked list as ``[data, next] ...`` node pairs.

    ``node_order[i]`` gives the slot index of the i-th list element, so a
    shuffled order produces pointer chasing over non-contiguous memory, the
    idiom of heap-allocated cons cells.  The returned flat word list is
    relative: ``next`` fields hold the *slot index* of the successor times
    ``base_label_addr_step`` and must be relocated by the kernel at startup,
    or kernels can emit absolute addresses by adding the array base.
    """
    num_slots = len(node_order)
    words = [0] * (2 * num_slots)
    for position, slot in enumerate(node_order):
        words[2 * slot] = payloads[position % len(payloads)]
        if position + 1 < num_slots:
            next_slot = node_order[position + 1]
            words[2 * slot + 1] = next_slot * base_label_addr_step
        else:
            words[2 * slot + 1] = -1  # end-of-list marker (relocated to 0)
    return words
