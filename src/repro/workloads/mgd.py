"""``107.mgrid`` stand-in: 3D multigrid smoothing stencil.

Mgrid is the most read-dominated program in the suite (Table 5.1: 46.6%
loads, 3.0% stores).  The kernel applies a 7-point 3D stencil reading
seven field elements per output point and writing one element of a
separate output array.  Every interior element is read by seven different
static loads as the sweep passes by, producing pervasive short-distance
RAR dependences and almost no RAW traffic.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_N = 10               # field is _N^3
_BASE_SWEEPS = 26


def build(scale: float = 1.0, n: int = _N) -> str:
    """Build at field size ``n`` (``n >= 21`` exceeds the 32K L1 data
    cache, for cache-pressure studies)."""
    sweeps = scaled(_BASE_SWEEPS, scale)
    cells = n * n * n
    field = [1.0 + round(v / (1 << 21), 6)
             for v in lcg_sequence(0x3D, cells, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("u_field", field)
    asm.space("r_field", cells)
    asm.floats("c0", [-0.25])
    asm.floats("c1", [0.125])

    plane = 4 * n * n
    row = 4 * n
    asm.ins(
        f"li   r20, {sweeps}",
        "la   r1, u_field",
        "la   r2, r_field",
        "la   r3, c0",
        "la   r4, c1",
    )
    asm.label("sweep")
    asm.ins("li   r5, 1")                       # k (plane)
    asm.label("kplane")
    asm.ins("li   r6, 1")                       # i (row)
    asm.label("irow")
    asm.ins(
        "li   r7, 1",                           # j (col)
        f"li   r8, {n}",
        "mul  r9, r5, r8",
        "add  r9, r9, r6",
        "mul  r9, r9, r8",
        "sll  r9, r9, 2",                       # (k*N + i)*N words
    )
    asm.label("jcol")
    asm.ins(
        "sll  r10, r7, 2",
        "add  r11, r9, r10",
        "add  r12, r11, r1",                    # &U[k][i][j]
        "lf   f1, 0(r12)",                      # centre
        "lf   f2, -4(r12)",                     # j-1
        "lf   f3, 4(r12)",                      # j+1
        f"lf   f4, {-row}(r12)",                # i-1
        f"lf   f5, {row}(r12)",                 # i+1
        f"lf   f6, {-plane}(r12)",              # k-1
        f"lf   f7, {plane}(r12)",               # k+1
        "lf   f8, 0(r3)",                       # c0 (read-only scalar)
        "lf   f9, 0(r4)",                       # c1
        "fadd.d f10, f2, f3",
        "fadd.d f11, f4, f5",
        "fadd.d f12, f6, f7",
        "fadd.d f10, f10, f11",
        "fadd.d f10, f10, f12",
        "fmul.d f10, f10, f9",
        "fmul.d f13, f1, f8",
        "fadd.d f10, f10, f13",
        "add  r13, r11, r2",
        "sf   f10, 0(r13)",                     # single store per point
        "addi r7, r7, 1",
        f"li   r14, {n - 1}",
        "blt  r7, r14, jcol",
        "addi r6, r6, 1",
        "blt  r6, r14, irow",
        "addi r5, r5, 1",
        "blt  r5, r14, kplane",
        "addi r20, r20, -1",
        "bgtz r20, sweep",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="mgd",
    spec_name="107.mgrid",
    category="fp",
    description="3D 7-point stencil; seven readers per element, one store",
    builder=build,
    sampling="N/A",
)
