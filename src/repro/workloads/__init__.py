"""The synthetic SPEC'95-like workload suite.

The paper evaluates eighteen SPEC'95 programs.  Those binaries (and the
MIPS-I toolchain that produced them) are not available here, so each
program is replaced by a synthetic kernel — written in the repository's
mini ISA — that exercises the *memory dependence idioms* the paper
attributes to it: pointer chasing and interpreted structures for the
integer codes, stencil sweeps and long-lived memory-resident scalars for
the Fortran floating-point codes.  See DESIGN.md §1 for the substitution
argument and each kernel module's docstring for its specific idiom mapping.

Every workload is registered in :mod:`repro.workloads.suite`; experiments
iterate ``suite.all_workloads()`` and stream traces via
:meth:`Workload.trace`.
"""

from repro.workloads.base import Workload
from repro.workloads.suite import (
    all_workloads,
    fp_workloads,
    get_workload,
    integer_workloads,
)

__all__ = [
    "Workload",
    "all_workloads",
    "fp_workloads",
    "integer_workloads",
    "get_workload",
]
