"""``132.ijpeg`` stand-in: block image transform.

Image compression streams pixels through register-held butterflies: each
input pixel is loaded once, transformed entirely in registers, and the
output stored to a different buffer — little memory-level reuse.  Only the
small quantization table is re-read per block (RAR).  This gives ijpeg the
lowest cloaking coverage of the integer suite, matching the paper
(13.9% combined in Table 5.2).
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_DIM = 32             # image is _DIM x _DIM, processed in 4x4 blocks
_BASE_FRAMES = 70


def build(scale: float = 1.0) -> str:
    frames = scaled(_BASE_FRAMES, scale)
    pixels = [v % 256 for v in lcg_sequence(seed=0x1B, count=_DIM * _DIM,
                                            modulus=1 << 20)]
    quant = [1 + (v % 15) for v in lcg_sequence(seed=0x1C, count=16, modulus=1 << 8)]

    asm = AsmBuilder()
    asm.words("image", pixels)
    asm.space("output", _DIM * _DIM)
    asm.words("quant", quant)
    asm.word("bits_used", 0)

    blocks_per_side = _DIM // 4
    asm.ins(
        f"li   r20, {frames}",
        "la   r1, image",
        "la   r2, output",
        "la   r3, quant",
    )
    asm.label("frame")
    asm.ins("li   r4, 0")                    # block row
    asm.label("brow")
    asm.ins("li   r5, 0")                    # block col
    asm.label("bcol")
    asm.comment("load one 4x4 block row-pair, transform in registers")
    asm.ins(
        "sll  r6, r4, 2",                    # pixel row = brow*4
        f"li   r7, {_DIM}",
        "mul  r8, r6, r7",
        "sll  r9, r5, 2",
        "add  r8, r8, r9",                   # pixel index
        "sll  r8, r8, 2",
        "add  r10, r8, r1",                  # block base in image
        "add  r11, r8, r2",                  # block base in output
    )
    for row in range(4):
        offs = row * _DIM * 4
        asm.ins(
            f"lw   r12, {offs}(r10)",
            f"lw   r13, {offs + 4}(r10)",
            f"lw   r14, {offs + 8}(r10)",
            f"lw   r15, {offs + 12}(r10)",
            # butterfly (registers only)
            "add  r16, r12, r15",
            "sub  r17, r12, r15",
            "add  r18, r13, r14",
            "sub  r19, r13, r14",
            "add  r22, r16, r18",
            "sub  r23, r16, r18",
            # quantize: divide by table entries (table re-read: RAR)
            f"lw   r24, {row * 16}(r3)",
            f"lw   r25, {row * 16 + 4}(r3)",
            "div  r22, r22, r24",
            "div  r23, r23, r25",
            f"sw   r22, {offs}(r11)",
            f"sw   r23, {offs + 4}(r11)",
            f"sw   r17, {offs + 8}(r11)",
            f"sw   r19, {offs + 12}(r11)",
        )
    asm.comment("entropy stage: read back the block's coefficients (RAW)")
    asm.ins("li   r29, 0", "li   r30, 0")
    asm.label("entropy")
    asm.ins(
        f"li   r7, {_DIM}",
        "mul  r27, r29, r7",
        "sll  r27, r27, 2",
        "add  r27, r27, r11",
        "lw   r24, 0(r27)",                  # coefficient just stored (RAW)
        "lw   r25, 4(r27)",
        "add  r30, r30, r24",
        "add  r30, r30, r25",
        "addi r29, r29, 1",
        "li   r7, 4",
        "blt  r29, r7, entropy",
    )
    asm.ins(
        "la   r26, bits_used",
        "lw   r27, 0(r26)",
        "add  r27, r27, r30",
        "sw   r27, 0(r26)",
        "addi r5, r5, 1",
        f"li   r28, {blocks_per_side}",
        "blt  r5, r28, bcol",
        "addi r4, r4, 1",
        "blt  r4, r28, brow",
        "addi r20, r20, -1",
        "bgtz r20, frame",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="ijp",
    spec_name="132.ijpeg",
    category="int",
    description="block transform; register-resident butterflies, table RAR only",
    builder=build,
    sampling="N/A",
)
