"""``147.vortex`` stand-in: an object database.

Vortex manipulates persistent object records through layers of accessor
routines.  Each transaction looks an object up through an index (pointer
load), has several "methods" validate and summarize it — re-reading the
same fields (RAR) — and commits an update to a subset of fields (RAW for
the next transaction touching the object).  A hot subset of objects gives
the dependence working set the temporal locality the paper measures.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_OBJECTS = 64
_TXNBUF = 1024
_FIELDS = 8
_BASE_TRANSACTIONS = 12000


def build(scale: float = 1.0) -> str:
    transactions = scaled(_BASE_TRANSACTIONS, scale)
    fields = lcg_sequence(seed=0x40, count=_OBJECTS * _FIELDS, modulus=1 << 16)

    asm = AsmBuilder()
    asm.words("objects", [v % 5000 for v in fields])
    # Index maps logical ids to slot numbers (shuffled, like a B-tree leaf).
    keys = lcg_sequence(seed=0x41, count=_OBJECTS, modulus=1 << 30)
    index = sorted(range(_OBJECTS), key=lambda i: keys[i])
    asm.words("obj_index", [slot * _FIELDS * 4 for slot in index])
    asm.word("commit_count", 0)
    asm.word("total_value", 0)
    asm.space("journal", 32)

    # Precompute the transaction request stream: 75% of requests hit a hot
    # set of 8 objects, the rest are uniform (a typical OLTP skew).
    picks = []
    raw = lcg_sequence(seed=0x42, count=_TXNBUF, modulus=1 << 24)
    for v in raw:
        if v & 3:
            picks.append(v >> 2 & 7)             # hot set: ids 0..7
        else:
            picks.append((v >> 3) % _OBJECTS)

    asm.words("txn_stream", picks)

    asm.ins(
        f"li   r20, {transactions}",
        "la   r21, txn_stream",
        "li   r31, 0",               # request-stream cursor
        "la   r1, objects",
        "la   r2, obj_index",
    )
    asm.label("txn")
    asm.comment("next request from the in-memory transaction stream")
    asm.ins(
        "sll  r3, r31, 2",
        "add  r3, r3, r21",
        "lw   r6, 0(r3)",            # object id (streamed)
        "addi r31, r31, 1",
        f"slti r4, r31, {_TXNBUF}",
        "bne  r4, r0, lookup",
        "li   r31, 0",
    )
    asm.label("lookup")
    asm.ins(
        "sll  r8, r6, 2",
        "add  r8, r8, r2",
        "lw   r9, 0(r8)",            # index entry (RAR: index is read-only)
        "add  r9, r9, r1",           # object base address
    )
    asm.comment("method 1: validate() reads fields 0,1,2")
    asm.ins(
        "lw   r10, 0(r9)",
        "lw   r11, 4(r9)",
        "lw   r12, 8(r9)",
        "add  r13, r10, r11",
        "add  r13, r13, r12",
    )
    asm.comment("method 2: summarize() re-reads fields 0,1 and reads 3,4 (RAR)")
    asm.ins(
        "lw   r14, 0(r9)",           # RAR with validate's load
        "lw   r15, 4(r9)",           # RAR
        "lw   r16, 12(r9)",
        "lw   r17, 16(r9)",
        "add  r18, r14, r15",
        "add  r18, r18, r16",
        "add  r18, r18, r17",
        "la   r19, total_value",
        "lw   r22, 0(r19)",
        "add  r22, r22, r18",
        "sw   r22, 0(r19)",
    )
    asm.comment("commit: version bump always; fields 2 and 5 when checksum odd")
    asm.ins(
        "lw   r27, 0(r9)",           # version field 0 (RAW with last commit)
        "addi r27, r27, 1",
        "sw   r27, 0(r9)",
        "andi r23, r13, 1",
        "beq  r23, r0, no_commit",
        "addi r12, r12, 1",
        "sw   r12, 8(r9)",
        "lw   r24, 20(r9)",
        "add  r24, r24, r18",
        "sw   r24, 20(r9)",
        "la   r25, commit_count",
        "lw   r26, 0(r25)",
        "addi r26, r26, 1",
        "sw   r26, 0(r25)",
    )
    asm.label("no_commit")
    asm.comment("write-ahead journal: log this txn, re-read the previous entry")
    asm.ins(
        "la   r28, commit_count",
        "lw   r29, 0(r28)",          # RAW
        "la   r30, journal",
        "andi r23, r29, 31",
        "sll  r23, r23, 2",
        "add  r23, r23, r30",
        "sw   r18, 0(r23)",          # journal append
        "addi r24, r29, 31",
        "andi r24, r24, 31",
        "sll  r24, r24, 2",
        "add  r24, r24, r30",
        "lw   r24, 0(r24)",          # previous journal entry (RAW)
        "add  r22, r22, r24",
    )
    asm.ins(
        "addi r20, r20, -1",
        "bgtz r20, txn",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="vor",
    spec_name="147.vortex",
    category="int",
    description="object database; accessor methods re-read hot object fields",
    builder=build,
    sampling="N/A",
)
