"""``099.go`` stand-in: board-position evaluation.

Game-playing codes repeatedly evaluate the same board region from several
analysis routines.  A precomputed move stream (the "game record", streamed
from memory like real input data) picks board positions; two evaluation
functions (``influence`` and ``liberties``) each read the chosen cell and
its four neighbours, so every neighbourhood word is read by two static
loads in close succession (RAR), while cell updates, the score and a
move-history journal produce store→load (RAW) traffic.  Control flow
branches on cell contents, mimicking go's data-dependent branching.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_SIZE = 19  # 19x19 board
_MOVEBUF = 1024
_BASE_MOVES = 8500


def build(scale: float = 1.0, input_seed: int = 0) -> str:
    """``input_seed`` selects an alternative input data set (board and
    game record), like running a different SPEC input."""
    moves = scaled(_BASE_MOVES, scale)
    cells = _SIZE * _SIZE
    board = [v % 3 for v in lcg_sequence(seed=0x60 ^ input_seed, count=cells, modulus=1 << 20)]

    # Precompute the move stream (the game record / search order): each
    # entry packs a cell byte offset with pseudo-random decision bits.
    interior = []
    raw = lcg_sequence(seed=0x61 ^ input_seed, count=2 * _MOVEBUF, modulus=1 << 24)
    for i in range(_MOVEBUF):
        row = 1 + raw[2 * i] % (_SIZE - 2)
        col = 1 + raw[2 * i + 1] % (_SIZE - 2)
        offset = (row * _SIZE + col) * 4
        rand_bits = raw[2 * i] >> 8 & 0xFFFF
        interior.append((rand_bits << 16) | offset)

    asm = AsmBuilder()
    asm.words("board", board)
    asm.words("move_stream", interior)
    asm.word("score", 0)
    asm.word("captures", 0)
    asm.space("history", 64)
    asm.word("move_no", 0)

    asm.ins(
        f"li   r20, {moves}",
        "la   r1, board",
        "la   r5, move_stream",
        "li   r6, 0",               # move-stream cursor
    )
    asm.label("move")
    asm.comment("next move from the precomputed game record")
    asm.ins(
        "sll  r2, r6, 2",
        "add  r2, r2, r5",
        "lw   r3, 0(r2)",           # move entry (streamed)
        "addi r6, r6, 1",
        f"slti r4, r6, {_MOVEBUF}",
        "bne  r4, r0, go_nowrap",
        "li   r6, 0",
    )
    asm.label("go_nowrap")
    asm.ins(
        f"li   r7, {0xFFFF}",
        "and  r9, r3, r7",          # cell byte offset
        "add  r9, r9, r1",          # cell address
        "srl  r21, r3, 16",         # decision bits
    )
    asm.comment("influence(): read cell + 4 neighbours")
    asm.ins(
        "lw   r10, 0(r9)",
        f"lw   r11, {-4 * _SIZE}(r9)",
        f"lw   r12, {4 * _SIZE}(r9)",
        "lw   r13, -4(r9)",
        "lw   r14, 4(r9)",
        "add  r15, r10, r11",
        "add  r15, r15, r12",
        "add  r15, r15, r13",
        "add  r15, r15, r14",
    )
    asm.comment("liberties(): re-read the same neighbourhood (RAR sinks)")
    asm.ins(
        "lw   r16, 0(r9)",
        "li   r17, 0",
        f"lw   r11, {-4 * _SIZE}(r9)",
        "bne  r11, r0, go_l1",
        "addi r17, r17, 1",
    )
    asm.label("go_l1")
    asm.ins(
        f"lw   r12, {4 * _SIZE}(r9)",
        "bne  r12, r0, go_l2",
        "addi r17, r17, 1",
    )
    asm.label("go_l2")
    asm.ins(
        "lw   r13, -4(r9)",
        "bne  r13, r0, go_l3",
        "addi r17, r17, 1",
    )
    asm.label("go_l3")
    asm.ins(
        "lw   r14, 4(r9)",
        "bne  r14, r0, go_l4",
        "addi r17, r17, 1",
    )
    asm.label("go_l4")
    asm.comment("update running score in memory (RAW)")
    asm.ins(
        "la   r18, score",
        "lw   r19, 0(r18)",
        "mul  r15, r15, r17",
        "add  r19, r19, r15",
        "sw   r19, 0(r18)",
    )
    asm.comment("update the cell: evaluations write back status (RAW source)")
    asm.ins(
        "andi r22, r21, 1",
        "addi r22, r22, 1",
        "bne  r16, r0, flip_cell",
        "blez r17, flip_cell",
        "sw   r22, 0(r9)",          # place a stone
        "j    placed",
    )
    asm.label("flip_cell")
    asm.ins(
        "add  r26, r16, r22",
        "li   r27, 3",
        "rem  r26, r26, r27",
        "sw   r26, 0(r9)",          # rotate cell status (RAW for future readers)
    )
    asm.label("placed")
    asm.comment("move history journal: push this move, ko-check the last two")
    asm.ins(
        "la   r28, move_no",
        "lw   r29, 0(r28)",          # RAW (per-move counter)
        "la   r26, history",
        "andi r27, r29, 63",
        "sll  r27, r27, 2",
        "add  r27, r27, r26",
        "sw   r9, 0(r27)",           # journal write
        "addi r30, r29, 63",
        "andi r30, r30, 63",
        "sll  r30, r30, 2",
        "add  r30, r30, r26",
        "lw   r30, 0(r30)",          # previous move (RAW with last iteration)
        "beq  r30, r9, ko_skip",
        "addi r29, r29, 1",
        "sw   r29, 0(r28)",
    )
    asm.label("ko_skip")
    asm.comment("occasionally capture: clear a neighbour")
    asm.ins(
        "andi r23, r21, 63",
        "bne  r23, r0, no_capture",
        "sw   r0, 4(r9)",
        "la   r24, captures",
        "lw   r25, 0(r24)",
        "addi r25, r25, 1",
        "sw   r25, 0(r24)",
    )
    asm.label("no_capture")
    asm.ins(
        "addi r20, r20, -1",
        "bgtz r20, move",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="go",
    spec_name="099.go",
    category="int",
    description="board evaluation; two analyses re-read each neighbourhood",
    builder=build,
    sampling="N/A",
)
