"""Workload definition and trace generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.trace.records import DynInst
from repro.trace.sampling import SamplingPlan


@dataclass(frozen=True)
class Workload:
    """One benchmark of the suite.

    ``builder`` returns assembly source for a given scale; ``scale=1.0`` is
    the standard experiment size (a few hundred thousand dynamic
    instructions), tests and micro-benchmarks use smaller scales.  The
    ``sampling`` ratio string mirrors the paper's Table 5.1 "SR" column and
    drives the timing experiments of Figures 9/10.
    """

    abbrev: str
    spec_name: str
    category: str  # "int" or "fp"
    description: str
    builder: Callable[[float], str]
    sampling: str = "N/A"
    _program_cache: Dict[float, Program] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )
    _analysis_cache: Dict[float, object] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.category not in ("int", "fp"):
            raise ValueError(f"category must be 'int' or 'fp', got {self.category!r}")

    def program(self, scale: float = 1.0, verify: bool = False) -> Program:
        """Assemble (and cache) the kernel at the given scale.

        The cache key is the scale rounded to 9 decimal places: scales
        that differ only by float-parsing noise (``0.1`` vs
        ``0.1 + 1e-12`` from CLI arithmetic) must hit the same entry
        instead of double-assembling.  With ``verify=True`` the assembled
        program must additionally pass the static analyzer
        (:func:`repro.analysis.verify_program`); the analysis report is
        cached alongside the program, so repeated verified calls analyze
        once.
        """
        key = round(float(scale), 9)
        program = self._program_cache.get(key)
        if program is None:
            source = self.builder(scale)
            program = assemble(source, name=self.abbrev)
            self._program_cache[key] = program
        if verify:
            from repro.analysis import analyze_program, verify_program

            report = self._analysis_cache.get(key)
            if report is None:
                report = analyze_program(program)
                self._analysis_cache[key] = report
            verify_program(program, report=report)
        return program

    def trace(
        self, scale: float = 1.0, max_instructions: Optional[int] = None
    ) -> Iterator[DynInst]:
        """Stream the committed dynamic instruction trace."""
        interp = Interpreter(self.program(scale), max_instructions=max_instructions)
        return interp.run()

    def sampling_plan(self) -> SamplingPlan:
        """The timing:functional sampling plan for this program."""
        return SamplingPlan.parse(self.sampling)

    @property
    def is_integer(self) -> bool:
        return self.category == "int"


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration count, never below ``minimum``."""
    return max(minimum, int(round(base * scale)))


def lcg_sequence(seed: int, count: int, modulus: int) -> Tuple[int, ...]:
    """A deterministic pseudo-random sequence for data initialization.

    Workload data layouts must be reproducible across runs and Python
    versions, so kernels use this LCG instead of :mod:`random`.
    """
    state = seed & 0x7FFFFFFF
    values = []
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        values.append(state % modulus)
    return tuple(values)
