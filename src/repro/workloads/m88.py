"""``124.m88ksim`` stand-in: an instruction-set simulator.

The simulated "guest" machine keeps its register file and program in
memory.  Every simulated instruction fetch re-reads the same guest code
words pass after pass (RAR on the code array), guest register reads follow
recent guest register writes (RAW through the memory-resident register
file), and reads of the same guest register by consecutive guest
instructions form RAR pairs.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_GUEST_REGS = 16
_GUEST_PROG = 40  # guest instructions per pass
_BASE_PASSES = 330


def build(scale: float = 1.0) -> str:
    passes = scaled(_BASE_PASSES, scale)
    # Guest instruction encoding: op*4096 + rd*256 + rs*16 + rt
    raw = lcg_sequence(seed=0x88, count=3 * _GUEST_PROG, modulus=1 << 24)
    guest_code = []
    for i in range(_GUEST_PROG):
        op = raw[3 * i] % 4          # 0=add 1=sub 2=mul 3=mov
        rd = 1 + raw[3 * i + 1] % (_GUEST_REGS - 1)
        rs = raw[3 * i + 1] % _GUEST_REGS
        rt = raw[3 * i + 2] % _GUEST_REGS
        guest_code.append(op * 4096 + rd * 256 + rs * 16 + rt)
    regfile_init = [v % 1000 for v in lcg_sequence(seed=0x89, count=_GUEST_REGS,
                                                   modulus=1 << 16)]

    asm = AsmBuilder()
    asm.words("guest_code", guest_code)
    asm.words("guest_regs", regfile_init)
    asm.word("cycle_count", 0)
    asm.word("guest_mode", 3)  # read-only machine state consulted per instr
    asm.word("guest_psw", 0)

    asm.ins(
        f"li   r20, {passes}",
        "la   r1, guest_code",
        "la   r2, guest_regs",
    )
    asm.label("pass_top")
    asm.ins("li   r3, 0")            # guest pc (word index)
    asm.label("fetch")
    asm.ins(
        "sll  r4, r3, 2",
        "add  r4, r4, r1",
        "lw   r5, 0(r4)",            # instruction fetch (RAR across passes)
        "srl  r6, r5, 12",
        "andi r6, r6, 15",           # op
        "srl  r7, r5, 8",
        "andi r7, r7, 15",           # rd
        "srl  r8, r5, 4",
        "andi r8, r8, 15",           # rs
        "andi r9, r5, 15",           # rt
    )
    asm.comment("read guest source registers from the memory register file")
    asm.ins(
        "sll  r10, r8, 2",
        "add  r10, r10, r2",
        "lw   r11, 0(r10)",          # guest rs read
        "sll  r12, r9, 2",
        "add  r12, r12, r2",
        "lw   r13, 0(r12)",          # guest rt read
    )
    asm.comment("execute")
    asm.ins(
        "li   r14, 1",
        "beq  r6, r0, g_add",
        "beq  r6, r14, g_sub",
        "li   r14, 2",
        "beq  r6, r14, g_mul",
        "mov  r15, r11",             # mov
        "j    writeback",
    )
    asm.label("g_add")
    asm.ins("add  r15, r11, r13", "j    writeback")
    asm.label("g_sub")
    asm.ins("sub  r15, r11, r13", "j    writeback")
    asm.label("g_mul")
    asm.ins("mul  r15, r11, r13")
    asm.label("writeback")
    asm.ins(
        # privilege check reads the (read-only) machine mode: self-RAR
        "la   r21, guest_mode",
        "lw   r22, 0(r21)",
        "add  r15, r15, r22",
        "sub  r15, r15, r22",
        "sll  r16, r7, 2",
        "add  r16, r16, r2",
        "sw   r15, 0(r16)",          # guest rd write (RAW source)
        # condition codes live in memory: read-modify-write every instr
        "la   r23, guest_psw",
        "lw   r24, 0(r23)",
        "xor  r24, r24, r15",
        "sw   r24, 0(r23)",
    )
    asm.comment("statistics update (memory-resident counter: RAW)")
    asm.ins(
        "la   r17, cycle_count",
        "lw   r18, 0(r17)",
        "addi r18, r18, 1",
        "sw   r18, 0(r17)",
        "addi r3, r3, 1",
        f"li   r19, {_GUEST_PROG}",
        "blt  r3, r19, fetch",
        "addi r20, r20, -1",
        "bgtz r20, pass_top",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="m88",
    spec_name="124.m88ksim",
    category="int",
    description="ISA simulator; memory-resident guest register file and code",
    builder=build,
    sampling="1:1",
)
