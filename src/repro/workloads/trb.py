"""``125.turb3d`` stand-in: FFT butterfly passes with a twiddle table.

Turbulence codes spend their time in FFTs.  Every butterfly stage re-reads
the small twiddle-factor table (RAR: the same table words are read by the
same loads stage after stage) and updates the signal array in place
(store→load RAW between stages at butterfly-span distances).
"""

from __future__ import annotations

import math

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_LOG2N = 6            # 64-point transforms
_N = 1 << _LOG2N
_BASE_TRANSFORMS = 80


def build(scale: float = 1.0) -> str:
    transforms = scaled(_BASE_TRANSFORMS, scale)
    signal = [round(math.sin(0.37 * i) + v / (1 << 22), 6)
              for i, v in enumerate(lcg_sequence(0x7B, _N, 1 << 20))]
    twiddle = [round(math.cos(math.pi * i / _N), 6) for i in range(_N // 2)]

    twiddle_sin = [round(math.sin(math.pi * i / _N), 6) for i in range(_N // 2)]

    asm = AsmBuilder()
    asm.floats("signal_re", signal)
    asm.floats("twiddle_cos", twiddle)
    asm.floats("twiddle_sin", twiddle_sin)
    asm.floats("energy", [0.0])

    asm.ins(
        f"li   r20, {transforms}",
        "la   r1, signal_re",
        "la   r2, twiddle_cos",
        "la   r16, twiddle_sin",
    )
    asm.label("transform")
    asm.ins("li   r3, 1")                       # span = 1, 2, 4, ... N/2
    asm.label("stage")
    asm.ins("li   r4, 0")                       # group start
    asm.label("group")
    asm.ins("li   r5, 0")                       # offset within group
    asm.label("butterfly")
    asm.ins(
        "add  r6, r4, r5",                      # top index
        "add  r7, r6, r3",                      # bottom index
        "sll  r8, r6, 2",
        "add  r8, r8, r1",
        "sll  r9, r7, 2",
        "add  r9, r9, r1",
        "lf   f1, 0(r8)",                       # top (RAW with prior stage)
        "lf   f2, 0(r9)",                       # bottom
        # twiddle index = offset * (N/2 / span)
        f"li   r10, {_N // 2}",
        "div  r11, r10, r3",
        "mul  r11, r11, r5",
        "sll  r11, r11, 2",
        "add  r17, r11, r16",
        "add  r11, r11, r2",
        "lf   f3, 0(r11)",                      # cos twiddle (RAR)
        "lf   f12, 0(r17)",                     # sin twiddle (RAR)
        "fmul.d f4, f2, f3",
        "fmul.d f13, f2, f12",
        "fadd.d f4, f4, f13",
        "fadd.d f5, f1, f4",
        # the bottom leg re-reads both twiddles (RAR with the loads above)
        "lf   f14, 0(r11)",
        "lf   f15, 0(r17)",
        "fmul.d f16, f2, f14",
        "fmul.d f17, f2, f15",
        "fadd.d f16, f16, f17",
        "fsub.d f6, f1, f16",
        "sf   f5, 0(r8)",                       # in-place update
        "sf   f6, 0(r9)",
        "addi r5, r5, 1",
        "blt  r5, r3, butterfly",
        "sll  r12, r3, 1",
        "add  r4, r4, r12",
        f"li   r13, {_N}",
        "blt  r4, r13, group",
        "sll  r3, r3, 1",
        f"li   r14, {_N // 2}",
        "blt  r3, r13, stage",
    )
    asm.comment("energy check re-reads a sample of the signal")
    asm.ins(
        "la   r15, energy",
        "lf   f7, 0(r15)",
        "lf   f8, 0(r1)",
        "lf   f9, 4(r1)",
        "fmul.d f10, f8, f8",
        "fmul.d f11, f9, f9",
        "fadd.d f10, f10, f11",
        "fadd.d f7, f7, f10",
        "sf   f7, 0(r15)",
        "addi r20, r20, -1",
        "bgtz r20, transform",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="trb",
    spec_name="125.turb3d",
    category="fp",
    description="FFT butterflies; twiddle table re-read every stage (RAR)",
    builder=build,
    sampling="1:10",
)
