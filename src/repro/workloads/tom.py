"""``101.tomcatv`` stand-in: 2D mesh-generation stencil.

Tomcatv sweeps coordinate arrays with 5-point stencils.  Adjacent output
points re-read each other's neighbours: ``X[i][j+1]`` loaded as the right
neighbour at column ``j`` is loaded again as the centre at column ``j+1``
and as the left neighbour at ``j+2`` — three static loads covering one
address within a few dozen instructions.  That is the dominant RAR idiom
of the Fortran codes.  Residual arrays are written but rarely re-read, so
RAW traffic stays low, and Fortran-style memory-resident scalars (the
relaxation factor) are re-loaded every point.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_N = 20               # mesh is _N x _N
_BASE_SWEEPS = 39


def build(scale: float = 1.0, input_seed: int = 0) -> str:
    """``input_seed`` selects an alternative initial mesh."""
    sweeps = scaled(_BASE_SWEEPS, scale)
    cells = _N * _N
    xs = [round(v / (1 << 20), 6) for v in lcg_sequence(0x70 ^ input_seed, cells, 1 << 20)]
    ys = [round(v / (1 << 20), 6) for v in lcg_sequence(0x71 ^ input_seed, cells, 1 << 20)]

    asm = AsmBuilder()
    asm.floats("mesh_x", xs)
    asm.floats("mesh_y", ys)
    asm.space("res_x", cells)
    asm.space("res_y", cells)
    asm.floats("relax", [0.3])
    asm.floats("errsum", [0.0])

    row_bytes = 4 * _N
    asm.ins(
        f"li   r20, {sweeps}",
        "la   r1, mesh_x",
        "la   r2, mesh_y",
        "la   r3, res_x",
        "la   r4, res_y",
    )
    asm.label("sweep")
    asm.ins("li   r5, 1")                       # i (row)
    asm.label("irow")
    asm.ins(
        "li   r6, 1",                           # j (col)
        f"li   r7, {_N}",
        "mul  r8, r5, r7",
        "sll  r8, r8, 2",                       # row byte offset
    )
    asm.label("jcol")
    asm.ins(
        "sll  r9, r6, 2",
        "add  r10, r8, r9",                     # element byte offset
        "add  r11, r10, r1",                    # &X[i][j]
        "add  r12, r10, r2",                    # &Y[i][j]
        # X stencil: centre, left, right, up, down
        "lf   f1, 0(r11)",
        "lf   f2, -4(r11)",
        "lf   f3, 4(r11)",
        f"lf   f4, {-row_bytes}(r11)",
        f"lf   f5, {row_bytes}(r11)",
        "fadd.d f6, f2, f3",
        "fadd.d f7, f4, f5",
        "fadd.d f6, f6, f7",
        "la   r13, relax",
        "lf   f8, 0(r13)",                      # memory-resident scalar (RAR)
        "fmul.d f6, f6, f8",
        "fsub.d f9, f6, f1",
        # Y stencil: same pattern on the Y array
        "lf   f10, 0(r12)",
        "lf   f11, -4(r12)",
        "lf   f12, 4(r12)",
        f"lf   f13, {-row_bytes}(r12)",
        f"lf   f14, {row_bytes}(r12)",
        "fadd.d f15, f11, f12",
        "fadd.d f16, f13, f14",
        "fadd.d f15, f15, f16",
        "fmul.d f15, f15, f8",
        "fsub.d f17, f15, f10",
        # residuals to separate arrays (writes, little reuse)
        "add  r14, r10, r3",
        "add  r15, r10, r4",
        "sf   f9, 0(r14)",
        "sf   f17, 0(r15)",
        "addi r6, r6, 1",
        f"li   r16, {_N - 1}",
        "blt  r6, r16, jcol",
        "addi r5, r5, 1",
        "blt  r5, r16, irow",
    )
    asm.comment("accumulate the error norm (memory-resident accumulator)")
    asm.ins(
        "la   r17, errsum",
        "lf   f18, 0(r17)",
        "fabs f19, f9",
        "fadd.d f18, f18, f19",
        "sf   f18, 0(r17)",
        "addi r20, r20, -1",
        "bgtz r20, sweep",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="tom",
    spec_name="101.tomcatv",
    category="fp",
    description="5-point mesh stencils; neighbour re-reads dominate (RAR)",
    builder=build,
    sampling="1:2",
)
