"""``126.gcc`` stand-in: multi-pass IR traversal.

Compilers run many passes over the same in-memory IR.  Each expression
node holds ``(op, left, right, value)``; a folding pass reads operand
fields and writes ``value`` (RAW for downstream readers), then an emission
pass re-reads the very same fields (RAR with the folding pass's loads when
the node set fits the detection window, and RAW on ``value``).  Opcode
dispatch branches heavily, like gcc's tree walks.
"""

from __future__ import annotations

from repro.workloads.asmlib import AsmBuilder
from repro.workloads.base import Workload, lcg_sequence, scaled

_NODES = 24           # small function body: fits the 128-entry DDT window
_FIELDS = 4           # op, left, right, value
_BASE_FUNCTIONS = 550


def build(scale: float = 1.0) -> str:
    functions = scaled(_BASE_FUNCTIONS, scale)
    raw = lcg_sequence(seed=0xCC, count=3 * _NODES, modulus=1 << 24)
    node_words = []
    for i in range(_NODES):
        node_words.extend([
            raw[3 * i] % 3,              # op: 0=const 1=add 2=mul
            raw[3 * i + 1] % 100,        # left operand
            raw[3 * i + 2] % 100,        # right operand
            0,                           # value (filled by fold pass)
        ])

    asm = AsmBuilder()
    asm.words("ir_nodes", node_words)
    asm.word("emitted", 0)
    asm.word("folded", 0)
    # Compiler-wide settings: read-only globals consulted at every node.
    asm.word("opt_level", 2)
    asm.word("target_flags", 9)

    asm.ins(f"li   r20, {functions}", "la   r1, ir_nodes")
    asm.label("function")

    asm.comment("pass 1: constant folding - read operands, write value")
    asm.ins("li   r2, 0", f"li   r3, {_NODES}")
    asm.label("fold")
    asm.ins(
        "sll  r4, r2, 4",           # node byte offset (4 words)
        "add  r4, r4, r1",
        "lw   r5, 0(r4)",           # op
        "lw   r6, 4(r4)",           # left
        "lw   r7, 8(r4)",           # right
        "li   r8, 1",
        "beq  r5, r0, f_const",
        "beq  r5, r8, f_add",
        "mul  r9, r6, r7",
        "j    f_store",
    )
    asm.label("f_const")
    asm.ins("mov  r9, r6", "j    f_store")
    asm.label("f_add")
    asm.ins("add  r9, r6, r7")
    asm.label("f_store")
    asm.ins(
        "sw   r9, 12(r4)",          # write folded value (RAW source)
        "la   r10, folded",
        "lw   r11, 0(r10)",
        "addi r11, r11, 1",
        "sw   r11, 0(r10)",
        "addi r2, r2, 1",
        "blt  r2, r3, fold",
    )

    asm.comment("pass 2: emission - re-read op/operands (RAR) and value (RAW)")
    asm.ins("li   r2, 0")
    asm.label("emit")
    asm.ins(
        "sll  r4, r2, 4",
        "add  r4, r4, r1",
        "lw   r12, 0(r4)",          # op again: RAR with fold's load
        "lw   r13, 12(r4)",         # folded value: RAW with fold's store
        "li   r8, 2",
        "bne  r12, r8, e_cheap",
        "lw   r14, 4(r4)",          # mul needs operands again: RAR
        "lw   r15, 8(r4)",
        "add  r13, r13, r14",
        "sub  r13, r13, r15",
    )
    asm.label("e_cheap")
    asm.ins(
        # every node consults the compiler-wide settings (self-RAR loads)
        "la   r24, opt_level",
        "lw   r25, 0(r24)",
        "la   r26, target_flags",
        "lw   r27, 0(r26)",
        "add  r13, r13, r25",
        "add  r13, r13, r27",
        "la   r16, emitted",
        "lw   r17, 0(r16)",
        "add  r17, r17, r13",
        "sw   r17, 0(r16)",
        "addi r2, r2, 1",
        "blt  r2, r3, emit",
    )

    asm.comment("mutate one node per function (fresh IR between compilations)")
    asm.ins(
        "la   r18, emitted",
        "lw   r19, 0(r18)",
        f"li   r21, {_NODES}",
        "rem  r22, r19, r21",
        "sll  r22, r22, 4",
        "add  r22, r22, r1",
        "andi r23, r19, 1",
        "addi r23, r23, 1",
        "sw   r23, 0(r22)",         # rewrite its op
        "addi r20, r20, -1",
        "bgtz r20, function",
        "halt",
    )
    return asm.source()


WORKLOAD = Workload(
    abbrev="gcc",
    spec_name="126.gcc",
    category="int",
    description="two compiler passes re-reading the same IR nodes",
    builder=build,
    sampling="N/A",
)
