"""The composed two-level memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsys.cache import Cache, CacheConfig
from repro.memsys.write_buffer import WriteBuffer


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Paper Section 5.1 defaults."""

    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, block_bytes=16, ways=2, hit_latency=2, name="L1D"))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, block_bytes=16, ways=2, hit_latency=2, name="L1I"))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=4 * 1024 * 1024, block_bytes=128, ways=8, hit_latency=10,
        name="L2"))
    memory_latency: int = 50
    write_buffer_blocks: int = 32


class MemoryHierarchy:
    """Latency oracle for instruction fetches, loads and stores.

    ``load``/``store``/``fetch`` return the access latency in cycles and
    update all cache state.  Stores complete into the L1-L2 write buffer,
    so a store's latency is the L1 access time unless the buffer stalls.
    """

    def __init__(self, config: MemoryHierarchyConfig = MemoryHierarchyConfig()):
        self.config = config
        self.l1d = Cache(config.l1d)
        self.l1i = Cache(config.l1i)
        self.l2 = Cache(config.l2)
        self.wb_l1_l2 = WriteBuffer(config.write_buffer_blocks,
                                    config.l1d.block_bytes,
                                    drain_latency=config.l2.hit_latency)
        self.wb_l2_mem = WriteBuffer(config.write_buffer_blocks,
                                     config.l2.block_bytes,
                                     drain_latency=config.memory_latency)

    def load(self, addr: int, now: int = 0) -> int:
        """Data load latency at byte address ``addr`` issued at cycle ``now``."""
        latency = self.config.l1d.hit_latency
        if self.l1d.access(addr):
            return latency
        if self.wb_l1_l2.probe(addr, now):
            # Hit on a block still sitting in the write buffer.
            return latency
        latency += self.config.l2.hit_latency
        if self.l2.access(addr):
            return latency
        if self.wb_l2_mem.probe(addr, now):
            return latency
        return latency + self.config.memory_latency

    def store(self, addr: int, now: int = 0) -> int:
        """Data store latency (write-allocate into L1, buffered below)."""
        latency = self.config.l1d.hit_latency
        if not self.l1d.access(addr, is_write=True):
            # The line is allocated; the old block (if dirty) and the miss
            # fill traffic are absorbed by the write buffer.
            done = self.wb_l1_l2.push(addr, now)
            latency += max(0, done - now)
            if not self.l2.access(addr, is_write=True):
                self.wb_l2_mem.push(addr, now)
        return latency

    def fetch(self, pc: int, now: int = 0) -> int:
        """Instruction fetch latency."""
        latency = self.config.l1i.hit_latency
        if self.l1i.access(pc):
            return latency
        latency += self.config.l2.hit_latency
        if self.l2.access(pc):
            return latency
        return latency + self.config.memory_latency
