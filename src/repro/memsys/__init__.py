"""The base processor's memory hierarchy (paper Section 5.1).

Two-level cache hierarchy with write-combining write buffers and an
infinite main memory: a 32K/16B-block/2-way L1 data cache (2-cycle hits),
a 64K/16B/2-way L1 instruction cache (2-cycle hits), a unified 4M/128B/
8-way L2 (10-cycle hits) and 50-cycle main memory (first-word latencies).
"""

from repro.memsys.cache import Cache, CacheConfig
from repro.memsys.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.memsys.write_buffer import WriteBuffer

__all__ = [
    "Cache",
    "CacheConfig",
    "WriteBuffer",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
]
