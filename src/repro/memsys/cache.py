"""Set-associative cache model with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    block_bytes: int
    ways: int
    hit_latency: int
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.block_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.block_bytes * self.ways):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"block*ways ({self.block_bytes}*{self.ways})"
            )
        num_sets = self.size_bytes // (self.block_bytes * self.ways)
        if num_sets & (num_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError(f"{self.name}: block size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.ways)


class Cache:
    """One cache level; tracks tags only (data values live in the trace)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._block_shift = config.block_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access a byte address; returns True on hit.  Allocates on miss.

        Both reads and writes allocate (write-allocate, write-back).  Dirty
        evictions are counted as writebacks for statistics.
        """
        block = addr >> self._block_shift
        entries = self._sets[block & self._set_mask]
        self.accesses += 1
        if block in entries:
            entries.move_to_end(block)
            if is_write:
                entries[block] = True
            return True
        self.misses += 1
        if len(entries) >= self.config.ways:
            _, dirty = entries.popitem(last=False)
            if dirty:
                self.writebacks += 1
        entries[block] = is_write
        return False

    def contains(self, addr: int) -> bool:
        """Tag probe without LRU update or allocation."""
        block = addr >> self._block_shift
        return block in self._sets[block & self._set_mask]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def clear(self) -> None:
        for entries in self._sets:
            entries.clear()
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0
