"""Write-combining write buffers (paper Section 5.1).

"Write buffers of 32 blocks each are included between L1 and L2, and
between L2 and main memory.  All write buffers perform write combining and
hits on miss are simulated for loads and stores."

The buffer holds block addresses with their drain deadline.  Stores merge
into an existing entry for the same block (write combining).  A load that
hits a buffered block ("hit on miss") is serviced at the buffer, i.e. no
lower-level access is needed.
"""

from __future__ import annotations

from collections import OrderedDict


class WriteBuffer:
    """A bounded buffer of dirty blocks awaiting drain to the next level."""

    def __init__(self, blocks: int = 32, block_bytes: int = 16,
                 drain_latency: int = 10) -> None:
        if blocks <= 0:
            raise ValueError("blocks must be positive")
        if block_bytes & (block_bytes - 1):
            raise ValueError("block size must be a power of two")
        self.blocks = blocks
        self.drain_latency = drain_latency
        self._block_shift = block_bytes.bit_length() - 1
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # block -> ready time
        self.combines = 0
        self.load_hits = 0
        self.stalls = 0

    def _drain(self, now: int) -> None:
        while self._entries:
            block, ready = next(iter(self._entries.items()))
            if ready > now:
                break
            del self._entries[block]

    def push(self, addr: int, now: int) -> int:
        """Insert (or combine) a store; returns the cycle the store completes.

        When the buffer is full, the store stalls until the oldest entry
        drains.
        """
        self._drain(now)
        block = addr >> self._block_shift
        if block in self._entries:
            self.combines += 1
            return now
        if len(self._entries) >= self.blocks:
            self.stalls += 1
            _, oldest_ready = self._entries.popitem(last=False)
            now = max(now, oldest_ready)
        self._entries[block] = now + self.drain_latency
        return now

    def probe(self, addr: int, now: int) -> bool:
        """Does a load hit a buffered block ("hit on miss")?"""
        self._drain(now)
        hit = (addr >> self._block_shift) in self._entries
        if hit:
            self.load_hits += 1
        return hit

    def __len__(self) -> int:
        return len(self._entries)
