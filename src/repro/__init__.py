"""Reproduction of "Read-After-Read Memory Dependence Prediction"
(Moshovos & Sohi, MICRO 1999).

The package implements, from scratch:

* history-based RAR memory dependence prediction and the two latency
  reduction techniques built on it -- RAR-based speculative memory
  **cloaking** and **bypassing** -- as surgical extensions of the original
  RAW-based mechanisms (:mod:`repro.core`);
* every substrate the paper's evaluation depends on: the dependence
  detection table and locality analyses (:mod:`repro.dependence`), a
  last-value load value predictor and branch predictors
  (:mod:`repro.predictors`), a two-level memory hierarchy
  (:mod:`repro.memsys`), a cycle-level 8-wide out-of-order processor
  (:mod:`repro.pipeline`), and an 18-program SPEC'95-like workload suite
  over a small MIPS-like ISA (:mod:`repro.workloads`, :mod:`repro.isa`);
* one experiment harness per table/figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro import CloakingEngine, CloakingConfig, get_workload

    engine = CloakingEngine(CloakingConfig.paper_accuracy())
    stats = engine.run(get_workload("li").trace(scale=0.1))
    print(f"coverage {stats.coverage:.1%}, "
          f"misspeculation {stats.misspeculation_rate:.2%}")
"""

from repro.core import (
    CloakingConfig,
    CloakingEngine,
    CloakingMode,
    CloakingStats,
    LoadOutcome,
)
from repro.dependence import DDT, DDTConfig, Dependence, DependenceKind
from repro.pipeline import (
    CloakedProcessor,
    Processor,
    ProcessorConfig,
    RecoveryPolicy,
    SimResult,
)
from repro.predictors import ConfidenceKind, LastValuePredictor
from repro.workloads import all_workloads, fp_workloads, get_workload, integer_workloads

__version__ = "1.0.0"

__all__ = [
    "CloakingConfig",
    "CloakingEngine",
    "CloakingMode",
    "CloakingStats",
    "LoadOutcome",
    "DDT",
    "DDTConfig",
    "Dependence",
    "DependenceKind",
    "Processor",
    "CloakedProcessor",
    "ProcessorConfig",
    "RecoveryPolicy",
    "SimResult",
    "ConfidenceKind",
    "LastValuePredictor",
    "all_workloads",
    "integer_workloads",
    "fp_workloads",
    "get_workload",
    "__version__",
]
