"""The wire protocol: newline-delimited JSON over a byte stream.

One JSON object per line, UTF-8, every object carrying a ``t`` (type)
field.  The client speaks first::

    {"t": "hello", "proto": 1, "session": "client-a"}

and the server answers ``welcome`` (session accepted) or ``busy`` (typed
rejection: ``sessions-full`` / ``name-taken`` / ``draining``).  After
that the client streams:

* ``rec`` — one trace record: ``{"t": "rec", "i": 7, "r": "R 7 ..."}``
  where ``r`` is a :func:`repro.trace.serialize.format_record` line and
  ``i`` is the client's request id, echoed back so responses can be
  matched even when degraded responses overtake queued predictions.
* ``chaos`` — inject a fault into *this session's* predictor shard
  (only honoured when the server runs with ``allow_chaos``).
* ``stats`` — ask for a mid-stream session stats snapshot.
* ``bye`` — flush and close; the server answers ``goodbye`` with final
  session statistics.

Every ``rec`` gets exactly one ``pred`` response.  A ``pred`` with
``degraded: true`` means the predictor was bypassed — the record was
**not** observed, coverage is flagged, and ``reason`` names why with one
of :data:`DEGRADED_REASONS`.  A non-degraded ``pred`` for a load carries
``committed``: the value-token (:func:`repro.trace.serialize.encode_value`)
of the value that reached architectural state, which clients — and the
soak drill's differential oracle — can compare against ground truth.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

PROTO_VERSION = 1

#: longest accepted wire line; a longer one is a protocol error (the
#: asyncio stream reader is opened with this limit so a hostile client
#: cannot balloon server memory with one unterminated line)
MAX_LINE = 1 << 16

# client -> server message types
MSG_HELLO = "hello"
MSG_RECORD = "rec"
MSG_CHAOS = "chaos"
MSG_STATS = "stats"
MSG_BYE = "bye"

# server -> client message types
MSG_WELCOME = "welcome"
MSG_BUSY = "busy"
MSG_PRED = "pred"
MSG_CHAOS_ACK = "chaos-ack"
MSG_STATS_REPLY = "stats-reply"
MSG_GOODBYE = "goodbye"
MSG_ERROR = "error"

#: why a record was answered degraded instead of predicted
REASON_QUEUE_FULL = "queue-full"      # bounded session queue was full
REASON_DEADLINE = "deadline"          # waited past its deadline in queue
REASON_BREAKER = "breaker-open"       # backend circuit breaker is open
REASON_BACKEND = "backend-error"      # the backend failed on this record
REASON_DRAINING = "draining"          # server is draining (SIGTERM)

DEGRADED_REASONS = (REASON_QUEUE_FULL, REASON_DEADLINE, REASON_BREAKER,
                    REASON_BACKEND, REASON_DRAINING)

#: typed ``busy`` rejections at admission
BUSY_REASONS = ("sessions-full", "name-taken", "draining")

#: the serve-layer chaos model (on top of the predictor-layer models in
#: :data:`repro.chaos.inject.PREDICTOR_FAULTS`): poison the simulation
#: backend so its next ``count`` calls raise, exercising the breaker
CHAOS_BACKEND_ERROR = "backend-error"


class ProtocolError(ValueError):
    """A malformed wire message (bad JSON, missing type, oversized)."""


def encode(message: dict) -> bytes:
    """One message object → one wire line (newline-terminated bytes)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict:
    """One wire line → the message object; raises :class:`ProtocolError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad wire line: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("t"), str):
        raise ProtocolError(f"message is not an object with a 't' field: "
                            f"{line[:60]!r}")
    return message


async def recv(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` on EOF; :class:`ProtocolError` on junk."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(f"wire line over the {MAX_LINE}-byte limit"
                            ) from None
    if not line:
        return None
    return decode(line)


async def send(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one message and drain (await the socket's backpressure)."""
    writer.write(encode(message))
    await writer.drain()


def prediction_response(index: int, outcome: str,
                        committed: Optional[str]) -> dict:
    """A non-degraded ``pred``: the record went through the predictor."""
    return {"t": MSG_PRED, "i": index, "degraded": False,
            "outcome": outcome, "committed": committed}


def degraded_response(index: int, reason: str) -> dict:
    """A typed degraded ``pred``: predictor bypassed, coverage flagged."""
    if reason not in DEGRADED_REASONS:
        raise ValueError(f"unknown degraded reason {reason!r}; "
                         f"known: {', '.join(DEGRADED_REASONS)}")
    return {"t": MSG_PRED, "i": index, "degraded": True, "reason": reason,
            "outcome": "none", "committed": None}


def error_response(detail: str, index: Optional[int] = None) -> dict:
    """A typed per-message error (the connection stays up)."""
    message = {"t": MSG_ERROR, "detail": detail}
    if index is not None:
        message["i"] = index
    return message
