"""A circuit breaker around the per-session simulation backend.

Closed → open after ``fail_threshold`` consecutive backend failures;
while open, records are answered ``degraded: breaker-open`` without
touching the backend.  After a cooldown the breaker goes half-open and
admits one trial record: success closes it, failure re-opens it with a
longer cooldown.

Cooldowns reuse :func:`repro.harness.backends.base.retry_backoff_delay` —
exponential in the number of times this breaker has opened, with
deterministic jitter hashed from a per-session :class:`JobSpec` identity.
Two sessions tripping together therefore *de-synchronize* their retry
probes (no thundering herd on a struggling backend), yet any given
session's backoff schedule is exactly reproducible from its name.
"""

from __future__ import annotations

from repro.harness.backends.base import retry_backoff_delay
from repro.harness.jobs import JobSpec

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with deterministic backoff.

    Time is passed in by the caller (the session worker reads the
    package clock once per record), which keeps the breaker a pure state
    machine — trivially testable with a fake clock.
    """

    def __init__(self, name: str, *, fail_threshold: int = 3,
                 base_delay: float = 0.05, max_delay: float = 2.0) -> None:
        if fail_threshold < 1:
            raise ValueError(f"fail_threshold must be >= 1, "
                             f"got {fail_threshold}")
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError(f"need 0 < base_delay <= max_delay, "
                             f"got {base_delay} / {max_delay}")
        # the breaker is not a grid job; the spec exists purely so the
        # backoff jitter is hashed from the same serialized identity the
        # harness uses, making per-session schedules stable and distinct
        self._spec = JobSpec(artefact="serve.breaker", workload=name,
                             scale=1.0)
        self.fail_threshold = fail_threshold
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.state = STATE_CLOSED
        self.failures = 0       # consecutive failures while closed
        self.opens = 0          # times tripped (drives the backoff exponent)
        self.open_until = 0.0

    def allow(self, now: float) -> bool:
        """May the next record hit the backend at time ``now``?"""
        if self.state == STATE_CLOSED:
            return True
        if now >= self.open_until:
            self.state = STATE_HALF_OPEN  # admit one trial record
            return True
        return False

    def record_success(self) -> None:
        """The backend served a record; close (and reset the streak)."""
        self.failures = 0
        self.opens = 0
        self.state = STATE_CLOSED

    def record_failure(self, now: float) -> float:
        """The backend failed a record; returns the new cooldown (0 if
        the breaker stayed closed)."""
        if self.state == STATE_HALF_OPEN:
            return self._trip(now)  # the trial failed: straight back open
        self.failures += 1
        if self.failures >= self.fail_threshold:
            return self._trip(now)
        return 0.0

    def _trip(self, now: float) -> float:
        self.opens += 1
        delay = min(self.max_delay,
                    retry_backoff_delay(self._spec, self.opens,
                                        self.base_delay))
        self.state = STATE_OPEN
        self.open_until = now + delay
        self.failures = 0
        return delay
