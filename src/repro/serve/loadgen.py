"""The load generator: realistic traffic shapes plus a verifying client.

Traffic shapes (constant / burst / wave / random-walk) are compiled into
a deterministic *send plan* — a list of (time offset, phase label)
slots — from a seed, so a load run is exactly reproducible.  The client
is also an oracle: every record it streams carries its ground-truth
value (the trace comes from the functional interpreter), so for every
non-degraded load response it checks the server's committed value-token
against truth.  Any mismatch is a committed-state violation — the wire
form of the differential oracle in :mod:`repro.chaos.oracle`.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve import protocol
from repro.serve.clock import now
from repro.serve.protocol import (
    DEGRADED_REASONS,
    MSG_BUSY,
    MSG_CHAOS_ACK,
    MSG_ERROR,
    MSG_GOODBYE,
    MSG_PRED,
    MSG_WELCOME,
    PROTO_VERSION,
)
from repro.trace.serialize import encode_value, format_record
from repro.workloads import get_workload

TRAFFIC_SHAPES = ("constant", "burst", "wave", "random-walk")

#: seconds per rate slot when compiling shapes into send plans
SLOT = 0.02


@dataclass(frozen=True)
class SendSlot:
    """One planned send: offset from session start, phase label."""

    offset: float
    phase: str


def plan_from_phases(phases: Sequence[Tuple[str, float, float]],
                     slot: float = SLOT) -> List[SendSlot]:
    """Compile explicit ``(phase, rate, duration)`` windows into sends.

    Records are spaced evenly inside each slot with fractional-rate
    carry, so a rate of 150/s at a 20 ms slot emits exactly 3 records per
    slot — no aliasing, no randomness.
    """
    sends: List[SendSlot] = []
    start = 0.0
    for phase, rate, duration in phases:
        if rate < 0 or duration < 0:
            raise ValueError(f"negative rate/duration in phase {phase!r}")
        carry = 0.0
        slots = max(1, int(round(duration / slot)))
        for k in range(slots):
            carry += rate * slot
            emit = int(carry)
            carry -= emit
            for j in range(emit):
                sends.append(SendSlot(start + k * slot + j * slot / emit,
                                      phase))
        start += slots * slot
    return sends


def shape_phases(shape: str, *, base_rate: float, peak_rate: float,
                 duration: float, seed: int = 0,
                 slot: float = SLOT) -> List[Tuple[str, float, float]]:
    """One named traffic shape → explicit phase windows.

    ``burst`` is the canonical soak shape: a baseline third, a burst
    third at ``peak_rate``, and a recovery third back at ``base_rate`` —
    the three windows the p99-recovery criterion compares.  ``wave``
    modulates sinusoidally between base and peak; ``random-walk`` walks
    the rate between them under a seeded :class:`random.Random`.
    """
    if shape == "constant":
        return [("steady", base_rate, duration)]
    if shape == "burst":
        third = duration / 3.0
        return [("baseline", base_rate, third),
                ("burst", peak_rate, third),
                ("recovery", base_rate, third)]
    if shape == "wave":
        mid = (base_rate + peak_rate) / 2.0
        amplitude = (peak_rate - base_rate) / 2.0
        slots = max(1, int(round(duration / slot)))
        return [("wave",
                 mid + amplitude * math.sin(2.0 * math.pi * k / slots),
                 slot)
                for k in range(slots)]
    if shape == "random-walk":
        rng = random.Random(seed)
        step = (peak_rate - base_rate) / 4.0
        rate = base_rate
        phases = []
        slots = max(1, int(round(duration / slot)))
        for _ in range(slots):
            rate = min(peak_rate, max(base_rate,
                                      rate + rng.uniform(-step, step)))
            phases.append(("walk", rate, slot))
        return phases
    raise ValueError(f"unknown traffic shape {shape!r}; "
                     f"known: {', '.join(TRAFFIC_SHAPES)}")


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by rank; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(q * len(ordered))) - 1))
    return ordered[rank]


def kernel_records(workload: str, scale: float,
                   count: int, cycle: int = 2000) -> List[Tuple[str, bool,
                                                                Optional[str]]]:
    """``count`` wire-ready records of a kernel, with ground truth.

    Returns ``(record line, is_load, true value-token)`` triples.  The
    trace is replayed cyclically when shorter than ``count`` — the
    functional interpreter is deterministic, so every replay carries
    identical (and therefore still true) values.
    """
    spec = get_workload(workload)
    records = []
    while len(records) < count:
        produced = len(records)
        for inst in itertools.islice(spec.trace(scale), cycle):
            token = encode_value(inst.value) if inst.is_load else None
            records.append((format_record(inst), inst.is_load, token))
            if len(records) >= count:
                break
        if len(records) == produced:
            raise ValueError(f"workload {workload!r} produced no records")
    return records


@dataclass
class SessionReport:
    """What one client session sent, received and verified."""

    name: str
    sent: int = 0
    responded: int = 0
    predicted: int = 0
    degraded: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in DEGRADED_REASONS})
    protocol_errors: int = 0
    violations: List[str] = field(default_factory=list)
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    chaos_sent: int = 0
    chaos_acked: int = 0
    chaos_armed: int = 0
    rejected: Optional[str] = None   # busy reason, if admission refused
    goodbye: Optional[dict] = None

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    def all_latencies(self) -> List[float]:
        return [sample for phase in sorted(self.latencies)
                for sample in self.latencies[phase]]


async def run_session(host: str, port: int, name: str,
                      records: Sequence[Tuple[str, bool, Optional[str]]],
                      plan: Sequence[SendSlot], *,
                      deadline_ms: Optional[float] = None,
                      chaos_plan: Sequence[Tuple[int, str, int]] = (),
                      ) -> SessionReport:
    """Drive one session: paced sends, verified receives.

    ``chaos_plan`` is ``(send index, model, seed)`` triples — each fault
    message goes out immediately before the record with that index, i.e.
    mid-stream into the live session.  The report's ``violations`` list
    is the differential-oracle verdict: a non-degraded load response
    whose committed token differs from the ground-truth token.
    """
    report = SessionReport(name=name)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        hello = {"t": protocol.MSG_HELLO, "proto": PROTO_VERSION,
                 "session": name}
        if deadline_ms is not None:
            hello["deadline_ms"] = deadline_ms
        await protocol.send(writer, hello)
        first = await protocol.recv(reader)
        if first is None or first.get("t") != MSG_WELCOME:
            if first is not None and first.get("t") == MSG_BUSY:
                report.rejected = str(first.get("reason"))
            else:
                report.protocol_errors += 1
            return report
        pending: Dict[int, Tuple[float, Optional[str], str]] = {}
        receiver = asyncio.create_task(
            _receive(reader, report, pending))
        await _send_all(writer, records, plan, chaos_plan, report, pending)
        await protocol.send(writer, {"t": protocol.MSG_BYE})
        await receiver
        report.protocol_errors += len(pending)  # unanswered records
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
    return report


async def _send_all(writer, records, plan, chaos_plan, report, pending):
    chaos_at: Dict[int, List[Tuple[str, int]]] = {}
    for index, model, seed in chaos_plan:
        chaos_at.setdefault(index, []).append((model, seed))
    start = now()
    for index, slot in enumerate(plan):
        if index >= len(records):
            break
        wait = start + slot.offset - now()
        if wait > 0:
            await asyncio.sleep(wait)
        for model, seed in chaos_at.get(index, ()):
            await protocol.send(writer, {
                "t": protocol.MSG_CHAOS, "model": model, "seed": seed,
                "count": 0x10, "i": -1 - report.chaos_sent})
            report.chaos_sent += 1
        line, _, token = records[index]
        pending[index] = (now(), token, slot.phase)
        report.sent += 1
        await protocol.send(writer, {"t": protocol.MSG_RECORD, "i": index,
                                     "r": line})


async def _receive(reader, report: SessionReport,
                   pending: Dict[int, Tuple[float, Optional[str], str]]
                   ) -> None:
    while True:
        try:
            message = await protocol.recv(reader)
        except (protocol.ProtocolError, ConnectionError):
            report.protocol_errors += 1
            return
        if message is None:
            return
        kind = message["t"]
        if kind == MSG_PRED:
            _check_prediction(message, report, pending)
        elif kind == MSG_CHAOS_ACK:
            report.chaos_acked += 1
            if "no eligible" not in str(message.get("target")):
                report.chaos_armed += 1
        elif kind == MSG_GOODBYE:
            report.goodbye = message
            return
        elif kind == MSG_ERROR:
            report.protocol_errors += 1
        elif kind != protocol.MSG_STATS_REPLY:
            report.protocol_errors += 1


def _check_prediction(message: dict, report: SessionReport,
                      pending: Dict[int, Tuple[float, Optional[str], str]]
                      ) -> None:
    entry = pending.pop(message.get("i"), None)
    if entry is None:
        report.protocol_errors += 1  # unknown or duplicate response id
        return
    sent_at, truth_token, phase = entry
    report.responded += 1
    report.latencies.setdefault(phase, []).append(now() - sent_at)
    if message.get("degraded"):
        reason = message.get("reason")
        if reason not in DEGRADED_REASONS:
            report.protocol_errors += 1
            return
        report.degraded[reason] += 1
        return  # predictor bypassed: nothing to verify, by design
    report.predicted += 1
    if truth_token is not None:
        committed = message.get("committed")
        if committed != truth_token:
            report.violations.append(
                f"{report.name}#{message['i']}: committed {committed!r} "
                f"!= true {truth_token!r}")


@dataclass
class LoadReport:
    """Aggregate over all sessions of one load-generation run."""

    sessions: int = 0
    rejected: int = 0
    sent: int = 0
    responded: int = 0
    predicted: int = 0
    degraded: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in DEGRADED_REASONS})
    protocol_errors: int = 0
    violations: List[str] = field(default_factory=list)
    chaos_sent: int = 0
    chaos_acked: int = 0
    chaos_armed: int = 0
    duration: float = 0.0
    phase_p50_ms: Dict[str, float] = field(default_factory=dict)
    phase_p99_ms: Dict[str, float] = field(default_factory=dict)
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    @property
    def records_per_sec(self) -> float:
        return self.responded / self.duration if self.duration > 0 else 0.0

    @property
    def sessions_per_sec(self) -> float:
        return self.sessions / self.duration if self.duration > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "sessions": self.sessions, "rejected": self.rejected,
            "sent": self.sent, "responded": self.responded,
            "predicted": self.predicted, "degraded": dict(self.degraded),
            "degraded_total": self.degraded_total,
            "protocol_errors": self.protocol_errors,
            "violations": list(self.violations),
            "chaos_sent": self.chaos_sent, "chaos_acked": self.chaos_acked,
            "chaos_armed": self.chaos_armed,
            "duration_s": self.duration,
            "records_per_sec": self.records_per_sec,
            "sessions_per_sec": self.sessions_per_sec,
            "p50_ms": self.p50_ms, "p99_ms": self.p99_ms,
            "phase_p50_ms": dict(self.phase_p50_ms),
            "phase_p99_ms": dict(self.phase_p99_ms),
        }


def aggregate(reports: Sequence[SessionReport],
              duration: float) -> LoadReport:
    """Fold per-session reports into one :class:`LoadReport`."""
    out = LoadReport(duration=duration)
    phase_samples: Dict[str, List[float]] = {}
    all_samples: List[float] = []
    for report in reports:
        if report.rejected is not None:
            out.rejected += 1
            continue
        out.sessions += 1
        out.sent += report.sent
        out.responded += report.responded
        out.predicted += report.predicted
        for reason, count in report.degraded.items():
            out.degraded[reason] += count
        out.protocol_errors += report.protocol_errors
        out.violations.extend(report.violations)
        out.chaos_sent += report.chaos_sent
        out.chaos_acked += report.chaos_acked
        out.chaos_armed += report.chaos_armed
        for phase in sorted(report.latencies):
            phase_samples.setdefault(phase, []).extend(
                report.latencies[phase])
            all_samples.extend(report.latencies[phase])
    out.p50_ms = percentile(all_samples, 0.50) * 1000.0
    out.p99_ms = percentile(all_samples, 0.99) * 1000.0
    out.phase_p50_ms = {phase: percentile(samples, 0.50) * 1000.0
                        for phase, samples in sorted(phase_samples.items())}
    out.phase_p99_ms = {phase: percentile(samples, 0.99) * 1000.0
                        for phase, samples in sorted(phase_samples.items())}
    return out


async def run_loadgen_async(host: str, port: int, *, sessions: int,
                            shape: str, base_rate: float, peak_rate: float,
                            duration: float, workload: str, scale: float,
                            seed: int,
                            deadline_ms: Optional[float] = None,
                            chaos_models: Sequence[str] = (),
                            ) -> LoadReport:
    """Drive ``sessions`` concurrent clients with one traffic shape."""
    started = now()
    jobs = []
    for k in range(sessions):
        phases = shape_phases(shape, base_rate=base_rate,
                              peak_rate=peak_rate, duration=duration,
                              seed=seed + k)
        plan = plan_from_phases(phases)
        records = kernel_records(workload, scale, len(plan))
        chaos_plan = plan_chaos(plan, chaos_models, seed=seed + k)
        jobs.append(run_session(host, port, f"{workload}-{k}", records,
                                plan, deadline_ms=deadline_ms,
                                chaos_plan=chaos_plan))
    reports = await asyncio.gather(*jobs)
    return aggregate(reports, now() - started)


def plan_chaos(plan: Sequence[SendSlot], models: Sequence[str],
               seed: int) -> List[Tuple[int, str, int]]:
    """Seeded mid-stream fault sites: each model lands once, inside the
    highest-rate stretch of the plan (the burst, for the burst shape),
    where predictor state is warm and the service is under pressure."""
    if not models or not plan:
        return []
    rng = random.Random(seed)
    burst = [k for k, slot in enumerate(plan) if slot.phase == "burst"]
    eligible = burst or list(range(len(plan) // 2, len(plan)))
    sites = sorted(rng.choice(eligible) for _ in models)
    return [(site, model, rng.randrange(1 << 30))
            for site, model in zip(sites, models)]


def run_loadgen(host: str, port: int, **kwargs) -> LoadReport:
    """Synchronous wrapper: one event loop per load-generation run."""
    return asyncio.run(run_loadgen_async(host, port, **kwargs))
