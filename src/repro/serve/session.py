"""Per-session predictor shard, simulation backend and statistics.

A session owns a private :class:`~repro.core.cloaking.CloakingEngine`:
its DDT, Synonym File and DPNT are reachable from exactly one session
worker task, so nothing a client streams — including chaos faults
injected into its own shard during drills — can perturb another
session's predictor state or responses.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.chaos.inject import PREDICTOR_FAULTS, apply_predictor_fault
from repro.chaos.oracle import CommitRule, verified_commit
from repro.core.cloaking import CloakingConfig, CloakingEngine
from repro.serve.breaker import CircuitBreaker
from repro.serve.protocol import CHAOS_BACKEND_ERROR, DEGRADED_REASONS
from repro.trace.records import DynInst
from repro.trace.serialize import encode_value


class BackendError(RuntimeError):
    """The simulation backend failed on a record (real or injected)."""


class SimulationBackend:
    """The per-session prediction backend behind the circuit breaker.

    ``service_delay`` models the per-record simulation cost (and gives
    drills a *known* sustainable throughput of ``1 / service_delay``
    records per second).  ``commit_rule`` decides which value reaches
    architectural state for a load; the default is the paper's
    :func:`~repro.chaos.oracle.verified_commit`, under which the
    committed value provably equals the true value no matter how corrupt
    the predictor is — the property the soak drill's differential oracle
    checks end to end.
    """

    def __init__(self, engine: CloakingEngine,
                 commit_rule: Optional[CommitRule] = None,
                 service_delay: float = 0.0) -> None:
        self.engine = engine
        self.commit_rule = commit_rule or verified_commit
        self.service_delay = service_delay
        self._poisoned = 0

    def poison(self, failures: int) -> None:
        """Make the next ``failures`` observations raise (chaos drills)."""
        self._poisoned += failures

    async def observe(self, inst: DynInst) -> Tuple[str, Optional[str]]:
        """Run one record through the engine.

        Returns ``(outcome name, committed value-token)`` — the token is
        ``None`` for non-loads.  Raises :class:`BackendError` when
        poisoned, *before* touching predictor state, so an injected
        backend fault never half-updates the shard.
        """
        if self._poisoned > 0:
            self._poisoned -= 1
            raise BackendError("injected backend fault")
        if self.service_delay > 0:
            await asyncio.sleep(self.service_delay)
        observed = self.engine.observe_timing(inst)
        if inst.is_load:
            committed = self.commit_rule(observed, inst.value)
            outcome = (observed.outcome.value if observed is not None
                       else "none")
            return outcome, encode_value(committed)
        return "none", None


@dataclass
class SessionStats:
    """One session's service-level accounting (wire-visible)."""

    records: int = 0        # rec messages received
    predicted: int = 0      # answered through the predictor
    degraded: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in DEGRADED_REASONS})
    bad_records: int = 0    # unparseable record lines (typed errors)
    chaos_applied: int = 0
    breaker_opens: int = 0

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    def as_dict(self) -> dict:
        return {"records": self.records, "predicted": self.predicted,
                "degraded": dict(self.degraded),
                "degraded_total": self.degraded_total,
                "bad_records": self.bad_records,
                "chaos_applied": self.chaos_applied,
                "breaker_opens": self.breaker_opens}


class Session:
    """One client's sharded state: engine, backend, breaker, queue."""

    def __init__(self, name: str, *, queue_depth: int,
                 deadline_ms: Optional[float],
                 cloaking: CloakingConfig,
                 commit_rule: Optional[CommitRule] = None,
                 service_delay: float = 0.0,
                 breaker_threshold: int = 3,
                 breaker_base_delay: float = 0.05,
                 breaker_max_delay: float = 2.0) -> None:
        self.name = name
        self.deadline_ms = deadline_ms
        self.engine = CloakingEngine(cloaking)
        self.backend = SimulationBackend(self.engine, commit_rule,
                                         service_delay)
        self.breaker = CircuitBreaker(name, fail_threshold=breaker_threshold,
                                      base_delay=breaker_base_delay,
                                      max_delay=breaker_max_delay)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.stats = SessionStats()

    def apply_chaos(self, model: str, seed: int, count: int = 1) -> str:
        """Inject one chaos fault into this session's shard.

        Predictor-layer models go straight into the live engine;
        :data:`~repro.serve.protocol.CHAOS_BACKEND_ERROR` poisons the
        backend so its next ``count`` observations raise (the breaker
        drill).  Returns a human-readable target description.
        """
        if model == CHAOS_BACKEND_ERROR:
            self.backend.poison(count)
            self.stats.chaos_applied += 1
            return f"backend poisoned for {count} records"
        if model not in PREDICTOR_FAULTS:
            known = ", ".join(PREDICTOR_FAULTS + (CHAOS_BACKEND_ERROR,))
            raise ValueError(f"unknown chaos model {model!r}; known: {known}")
        applied = apply_predictor_fault(self.engine, model, seed)
        self.stats.chaos_applied += 1
        return applied.target or "no eligible predictor state yet"

    def snapshot(self) -> dict:
        """Session stats plus engine accuracy, for stats/goodbye replies."""
        return {"session": self.name, "stats": self.stats.as_dict(),
                "cloaking": self.engine.stats.as_dict()}
