"""``python -m repro.serve`` — run, load and drill the prediction service.

    python -m repro.serve serve --port 7399 --allow-chaos
    python -m repro.serve loadgen --port 7399 --shape burst \\
        --sessions 4 --duration 3
    python -m repro.serve soak --workloads li com --scale 0.1 \\
        --require-degraded --max-p99-ms 2000

``serve`` runs a server until SIGTERM/SIGINT, then drains gracefully
(flushes every open session, answers stragglers ``degraded: draining``).
``loadgen`` drives a running server with one of the traffic shapes and
prints the verified load report — its exit status is non-zero on any
protocol error or committed-state violation, so a loadgen run doubles as
a smoke check.  ``soak`` is the self-contained chaos drill: in-process
server, overload burst, live fault injection, differential-oracle
verification and a graceful drain, with optional service-level gates for
CI (``--require-degraded``, ``--max-p99-ms``) and the
``results/BENCH_serve.json`` summary (``--bench``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.runner import select_workloads
from repro.serve import artefact
from repro.serve.loadgen import TRAFFIC_SHAPES, run_loadgen
from repro.serve.server import PredictionServer, ServeConfig
from repro.serve.soak import DEFAULT_SEED


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run a prediction server until SIGTERM")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7399)
    serve.add_argument("--max-sessions", type=int, default=64)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--deadline-ms", type=float, default=250.0,
                       help="default per-record deadline (default "
                            "%(default)s; 0 disables)")
    serve.add_argument("--service-delay", type=float, default=0.0,
                       help="modelled per-record backend cost in seconds")
    serve.add_argument("--allow-chaos", action="store_true",
                       help="honour chaos injection messages (drills only)")
    serve.add_argument("--drain-grace", type=float, default=5.0)

    loadgen = commands.add_parser(
        "loadgen", help="drive a running server with shaped traffic")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7399)
    loadgen.add_argument("--shape", choices=TRAFFIC_SHAPES, default="burst")
    loadgen.add_argument("--sessions", type=int, default=4)
    loadgen.add_argument("--base-rate", type=float, default=100.0,
                         help="records/sec per session (default %(default)s)")
    loadgen.add_argument("--peak-rate", type=float, default=400.0,
                         help="records/sec per session at the peak "
                              "(default %(default)s)")
    loadgen.add_argument("--duration", type=float, default=3.0,
                         help="seconds per session (default %(default)s)")
    loadgen.add_argument("--workload", default="com",
                         help="kernel streamed as records "
                              "(default %(default)s)")
    loadgen.add_argument("--scale", type=float, default=0.1)
    loadgen.add_argument("--seed", type=int, default=DEFAULT_SEED)
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="per-session deadline override")

    soak = commands.add_parser(
        "soak", help="the self-contained chaos soak drill")
    soak.add_argument("--workloads", nargs="*", default=["com"],
                      metavar="ABBREV")
    soak.add_argument("--scale", type=float, default=0.1)
    soak.add_argument("--seed", type=int, default=DEFAULT_SEED)
    soak.add_argument("--sessions", type=int, default=4)
    soak.add_argument("--overload", type=float, default=4.0,
                      help="burst load as a multiple of sustainable "
                           "throughput (default %(default)s)")
    soak.add_argument("--bench", default=None, metavar="PATH",
                      help="write the service-level summary JSON "
                           "(sessions/sec, p50/p99) to PATH")
    soak.add_argument("--json", default=None, metavar="PATH",
                      help="write per-kernel rows as JSON")
    soak.add_argument("--require-degraded", action="store_true",
                      help="fail unless the overload produced at least one "
                           "typed degraded response (proves shedding, not "
                           "luck, absorbed the burst)")
    soak.add_argument("--max-p99-ms", type=float, default=None,
                      help="fail when any drill's overall p99 exceeds this")
    return parser


def _serve(args) -> int:
    config = ServeConfig(
        host=args.host, port=args.port, max_sessions=args.max_sessions,
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        service_delay=args.service_delay, allow_chaos=args.allow_chaos,
        drain_grace=args.drain_grace)
    server = PredictionServer(config)

    async def _run() -> bool:
        started = asyncio.ensure_future(server.run())
        while server.port is None and not started.done():
            await asyncio.sleep(0.01)
        if server.port is not None:
            print(f"serving on {config.host}:{server.port} "
                  f"(chaos {'enabled' if config.allow_chaos else 'disabled'};"
                  f" SIGTERM drains)", flush=True)
        return await started

    clean = asyncio.run(_run())
    stats = server.stats
    print(f"drained {'cleanly' if clean else 'WITH STRAGGLERS'}: "
          f"{stats.sessions_opened} sessions, {stats.records} records, "
          f"{stats.predicted} predicted, {stats.degraded_total} degraded")
    return 0 if clean else 1


def _loadgen(args) -> int:
    try:
        select_workloads([args.workload])
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = run_loadgen(
        args.host, args.port, sessions=args.sessions, shape=args.shape,
        base_rate=args.base_rate, peak_rate=args.peak_rate,
        duration=args.duration, workload=args.workload, scale=args.scale,
        seed=args.seed, deadline_ms=args.deadline_ms)
    for key, value in sorted(report.as_dict().items()):
        print(f"{key}: {value}")
    ok = (report.protocol_errors == 0 and not report.violations
          and report.sessions > 0)
    return 0 if ok else 1


def _soak(args) -> int:
    try:
        specs = select_workloads(args.workloads)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    rows = [artefact.run_soak(spec.abbrev, args.scale, seed=args.seed,
                              sessions=args.sessions,
                              overload=args.overload)
            for spec in specs]
    if args.json:
        from repro.harness.store import write_rows_json

        write_rows_json(args.json, rows)
    if args.bench:
        artefact.write_bench(rows, Path(args.bench))
    print(artefact.render(rows))
    failures = [row.workload for row in rows if not row.passed]
    if args.require_degraded:
        for row in rows:
            if row.degraded_total == 0:
                failures.append(f"{row.workload} (no degraded responses — "
                                f"the burst was not actually shed)")
    if args.max_p99_ms is not None:
        for row in rows:
            if row.p99_ms > args.max_p99_ms:
                failures.append(f"{row.workload} (p99 {row.p99_ms:.1f}ms > "
                                f"{args.max_p99_ms:g}ms)")
    for failure in failures:
        print(f"SOAK GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    return _soak(args)


if __name__ == "__main__":
    sys.exit(main())
