"""Prediction-as-a-service: the cloaking/RAR predictor behind a socket.

Clients open sessions over a newline-delimited-JSON stream protocol
(:mod:`repro.serve.protocol`), send trace records, and receive per-record
prediction/committed-value responses.  Every session owns a private
:class:`~repro.core.cloaking.CloakingEngine` — its own DDT, Synonym File
and DPNT — so one misbehaving client can never touch another's predictor
state.

Robustness is the headline feature, not an afterthought:

* bounded per-session queues with admission control — overload sheds
  records with typed degraded responses instead of growing memory;
* deadline-aware handling — a record that waited too long is answered
  ``degraded: deadline`` (predictor bypassed, coverage flagged) rather
  than timed out;
* a circuit breaker around the simulation backend with deterministic
  exponential backoff (the harness's spec-hash jitter);
* graceful drain on SIGTERM that flushes every open session.

``python -m repro.serve`` runs the server, the load generator
(:mod:`repro.serve.loadgen` — constant/burst/wave/random-walk traffic)
and the chaos soak drill (:mod:`repro.serve.soak`), which injects
:mod:`repro.chaos` predictor faults into live sessions mid-stream and
verifies through the golden differential oracle that committed state
stays correct while the service sheds load.  See docs/serve.md.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.loadgen import LoadReport, TRAFFIC_SHAPES, run_loadgen
from repro.serve.protocol import DEGRADED_REASONS, PROTO_VERSION
from repro.serve.server import PredictionServer, ServeConfig
from repro.serve.session import BackendError, Session, SimulationBackend
from repro.serve.soak import SoakRow, run_soak

__all__ = [
    "BackendError",
    "CircuitBreaker",
    "DEGRADED_REASONS",
    "LoadReport",
    "PROTO_VERSION",
    "PredictionServer",
    "ServeConfig",
    "Session",
    "SimulationBackend",
    "SoakRow",
    "TRAFFIC_SHAPES",
    "run_loadgen",
    "run_soak",
]
