"""The chaos soak drill: overload + live faults, verified end to end.

One drill runs an in-process :class:`~repro.serve.server.PredictionServer`
and drives it with the ``burst`` traffic shape at ``overload`` times the
backend's known-sustainable rate (``1 / service_delay`` records per
second per session), while every client injects the full chaos model
cycle — all of :data:`~repro.chaos.inject.PREDICTOR_FAULTS` plus a
backend poisoning that trips the circuit breaker — into its own live
session mid-burst.

The pass criteria are the robustness claims themselves:

* **no corruption** — every non-degraded load response's committed
  value-token equals the trace's ground truth (the wire form of the
  :mod:`repro.chaos.oracle` differential oracle); ``violations`` must
  stay empty no matter what chaos armed.
* **typed shedding only** — overload surfaces exclusively as
  ``degraded`` responses with reasons from
  :data:`~repro.serve.protocol.DEGRADED_REASONS`; ``protocol_errors``
  must be zero.
* **recovery** — once the burst passes, the recovery window's p99
  returns to at most twice the baseline p99 (with a small absolute
  floor so coarse CI clocks cannot fail an idle service).
* **clean drain** — the server drains within its grace window.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.inject import PREDICTOR_FAULTS
from repro.chaos.oracle import CommitRule
from repro.serve.loadgen import LoadReport, run_loadgen_async
from repro.serve.protocol import CHAOS_BACKEND_ERROR
from repro.serve.server import PredictionServer, ServeConfig

SOAK_VERSION = 1

DEFAULT_SEED = 1999  # the paper's year, like the chaos campaign default

#: chaos models every session injects mid-burst, in cycle order
SOAK_FAULTS = PREDICTOR_FAULTS + (CHAOS_BACKEND_ERROR,)

#: baseline/recovery load as a fraction of sustainable throughput
BASELINE_LOAD = 0.4

#: absolute recovery allowance (ms) under the 2x-baseline criterion.
#: The recovery window opens the instant the burst rate drops, so its
#: first responses legitimately wait behind the burst's queued backlog
#: (up to ``queue_depth * service_delay`` ~ 64 ms at the defaults); the
#: floor absorbs that drain plus scheduler jitter on shared CI runners,
#: while still catching a service that failed to recover (a stuck
#: breaker or runaway queue shows up as hundreds of ms or worse)
RECOVERY_FLOOR_MS = 150.0


@dataclass
class SoakRow:
    """One workload's drill outcome (store/JSON serializable)."""

    workload: str
    scale: float
    seed: int
    sessions: int
    overload: float
    duration_s: float
    sent: int
    responded: int
    predicted: int
    degraded: Dict[str, int]
    degraded_total: int
    protocol_errors: int
    chaos_sent: int
    chaos_armed: int
    breaker_opens: int
    baseline_p50_ms: float
    baseline_p99_ms: float
    burst_p99_ms: float
    recovery_p99_ms: float
    p50_ms: float
    p99_ms: float
    records_per_sec: float
    sessions_per_sec: float
    recovered: bool
    drained: bool
    violations: List[str] = field(default_factory=list)

    @property
    def violated(self) -> int:
        return len(self.violations)

    @property
    def passed(self) -> bool:
        """The drill's overall verdict (see the module docstring)."""
        return (not self.violations and self.protocol_errors == 0
                and self.recovered and self.drained)


def run_soak(workload: str, scale: float = 1.0, *,
             seed: int = DEFAULT_SEED,
             sessions: int = 4,
             overload: float = 4.0,
             service_delay: float = 0.004,
             window: float = 0.45,
             queue_depth: int = 16,
             deadline_ms: float = 120.0,
             breaker_threshold: int = 3,
             commit_rule: Optional[CommitRule] = None) -> SoakRow:
    """Run one chaos soak drill against a fresh in-process server.

    ``commit_rule`` is injectable so the drill can prove its own oracle
    *detects* corruption (swap in a broken rule → every load becomes a
    violation); production and the harness artefact leave it ``None``
    for :func:`~repro.chaos.oracle.verified_commit`.
    """
    if service_delay <= 0:
        raise ValueError(f"service_delay must be positive, "
                         f"got {service_delay} (it defines the "
                         f"sustainable rate the overload multiplies)")
    if overload <= 1.0:
        raise ValueError(f"overload must exceed 1.0, got {overload}")
    return asyncio.run(_soak_async(
        workload, scale, seed=seed, sessions=sessions, overload=overload,
        service_delay=service_delay, window=window, queue_depth=queue_depth,
        deadline_ms=deadline_ms, breaker_threshold=breaker_threshold,
        commit_rule=commit_rule))


async def _soak_async(workload: str, scale: float, *, seed: int,
                      sessions: int, overload: float, service_delay: float,
                      window: float, queue_depth: int, deadline_ms: float,
                      breaker_threshold: int,
                      commit_rule: Optional[CommitRule]) -> SoakRow:
    config = ServeConfig(
        port=0, max_sessions=sessions, queue_depth=queue_depth,
        deadline_ms=deadline_ms, service_delay=service_delay,
        breaker_threshold=breaker_threshold, allow_chaos=True)
    server = PredictionServer(config, commit_rule=commit_rule)
    await server.start()
    assert server.port is not None
    sustainable = 1.0 / service_delay
    try:
        report = await run_loadgen_async(
            config.host, server.port, sessions=sessions, shape="burst",
            base_rate=BASELINE_LOAD * sustainable,
            peak_rate=overload * sustainable,
            duration=3.0 * window, workload=workload, scale=scale,
            seed=seed, chaos_models=SOAK_FAULTS)
    finally:
        server.begin_drain()
        drained = await server.drain()
    return _row(workload, scale, seed, sessions, overload, report,
                server.stats.breaker_opens, drained)


def _row(workload: str, scale: float, seed: int, sessions: int,
         overload: float, report: LoadReport, breaker_opens: int,
         drained: bool) -> SoakRow:
    baseline_p99 = report.phase_p99_ms.get("baseline", 0.0)
    recovery_p99 = report.phase_p99_ms.get("recovery", 0.0)
    recovered = recovery_p99 <= max(2.0 * baseline_p99, RECOVERY_FLOOR_MS)
    return SoakRow(
        workload=workload, scale=scale, seed=seed, sessions=sessions,
        overload=overload, duration_s=report.duration,
        sent=report.sent, responded=report.responded,
        predicted=report.predicted, degraded=dict(report.degraded),
        degraded_total=report.degraded_total,
        protocol_errors=report.protocol_errors,
        chaos_sent=report.chaos_sent, chaos_armed=report.chaos_armed,
        breaker_opens=breaker_opens,
        baseline_p50_ms=report.phase_p50_ms.get("baseline", 0.0),
        baseline_p99_ms=baseline_p99,
        burst_p99_ms=report.phase_p99_ms.get("burst", 0.0),
        recovery_p99_ms=recovery_p99,
        p50_ms=report.p50_ms, p99_ms=report.p99_ms,
        records_per_sec=report.records_per_sec,
        sessions_per_sec=report.sessions_per_sec,
        recovered=recovered, drained=drained,
        violations=list(report.violations))
