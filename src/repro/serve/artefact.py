"""Harness integration: the chaos soak drill as a store artefact.

``ext_serve_soak`` exposes the uniform experiment interface (``run`` /
``run_one`` / ``render``) so ``python -m repro.harness run
ext_serve_soak`` drills kernels in parallel and caches each kernel's
:class:`~repro.serve.soak.SoakRow` in the result store.  Latency
percentiles are wall-clock measurements, so the drill publishes the
service-level numbers (sessions/sec, p50/p99) to
``results/BENCH_serve.json`` rather than asserting on them in tier-1
tests; only CI's serve-smoke job applies latency floors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    experiment_parser, maybe_write_json, select_workloads)
from repro.serve.protocol import PROTO_VERSION
from repro.serve.soak import DEFAULT_SEED, SOAK_VERSION, SoakRow, run_soak

BENCH_JSON = Path("results") / "BENCH_serve.json"


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None,
        seed: int = DEFAULT_SEED,
        sessions: int = 4,
        overload: float = 4.0) -> List[SoakRow]:
    return [run_soak(spec.abbrev, scale, seed=seed, sessions=sessions,
                     overload=overload)
            for spec in select_workloads(workloads)]


def run_one(workload: str, scale: float, **kwargs) -> List[SoakRow]:
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[SoakRow]) -> str:
    table_rows = [
        [row.workload, str(row.sent), str(row.predicted),
         str(row.degraded_total), str(row.breaker_opens),
         f"{row.baseline_p99_ms:.1f}", f"{row.burst_p99_ms:.1f}",
         f"{row.recovery_p99_ms:.1f}",
         "yes" if row.recovered else "NO",
         "yes" if row.drained else "NO",
         str(row.violated)]
        for row in rows
    ]
    headers = ["Ab.", "sent", "pred", "degr", "brk",
               "base p99", "burst p99", "rec p99", "recov", "drain", "VIOL"]
    lines = [format_table(
        headers, table_rows,
        title=f"Serve: chaos soak at {rows[0].overload:g}x sustainable "
              f"load" if rows else "Serve: chaos soak")]
    for row in rows:
        lines.extend(f"  {text}" for text in row.violations)
    failed = [row.workload for row in rows if not row.passed]
    if failed:
        lines.append(f"FAILED drills: {', '.join(failed)}")
    else:
        lines.append("all drills passed (typed shedding only, committed "
                     "state never diverged, p99 recovered, clean drain)")
    return "\n".join(lines)


def bench_payload(rows: List[SoakRow]) -> dict:
    """The machine-readable service-level summary for ``BENCH_serve``."""
    responded = sum(row.responded for row in rows)
    duration = sum(row.duration_s for row in rows)
    return {
        "schema": "repro.serve/bench-v1",
        "proto": PROTO_VERSION,
        "soak_version": SOAK_VERSION,
        "drills": len(rows),
        "records_per_sec": responded / duration if duration > 0 else 0.0,
        "sessions_per_sec": (sum(row.sessions for row in rows) / duration
                             if duration > 0 else 0.0),
        "kernels": {
            row.workload: {
                "sessions_per_sec": row.sessions_per_sec,
                "records_per_sec": row.records_per_sec,
                "p50_ms": row.p50_ms,
                "p99_ms": row.p99_ms,
                "baseline_p99_ms": row.baseline_p99_ms,
                "burst_p99_ms": row.burst_p99_ms,
                "recovery_p99_ms": row.recovery_p99_ms,
                "degraded_total": row.degraded_total,
                "breaker_opens": row.breaker_opens,
                "violations": row.violated,
            }
            for row in rows
        },
    }


def write_bench(rows: List[SoakRow], path: Path = BENCH_JSON) -> Path:
    """Publish sessions/sec and p50/p99 to ``results/BENCH_serve.json``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bench_payload(rows), indent=2) + "\n",
                    encoding="utf-8")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_parser(__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--overload", type=float, default=4.0)
    parser.add_argument("--bench", default=None, metavar="PATH",
                        help=f"also write the service-level summary JSON "
                             f"(default location {BENCH_JSON})")
    args = parser.parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads, seed=args.seed,
               sessions=args.sessions, overload=args.overload)
    maybe_write_json(args, rows)
    if args.bench is not None:
        write_bench(rows, Path(args.bench))
    print(render(rows))
    return 0 if all(row.passed for row in rows) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
