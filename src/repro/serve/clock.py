"""The serving stack's single wall-clock read.

Deadlines, breaker cooldowns and latency percentiles are wall-clock
quantities by definition, so the service is allowed what the experiment
modules are not (staticcheck DT301) — but through exactly one call site,
so the exemption stays auditable and tests can reason about every clock
read in the package going through :func:`now`.
"""

from __future__ import annotations

import time


def now() -> float:
    """Seconds on a monotonic clock (never steps backwards)."""
    # staticcheck: ignore[DT301] operational code: the serving layer's
    # one sanctioned wall-clock read (deadlines / breaker / latency)
    return time.monotonic()
