"""The asyncio prediction server: admission, shedding, breaker, drain.

Connection anatomy — two tasks per session, one bounded queue between:

* the **reader** parses wire messages and *admits* records.  Admission
  is where overload is absorbed: a record that finds the session queue
  full is answered ``degraded: queue-full`` immediately (a synchronous
  write, so shedding itself can never block on a slow backend), and
  while the server drains every new record is answered
  ``degraded: draining``.
* the **worker** consumes the queue in order: checks the record's
  deadline against its arrival time, consults the circuit breaker, runs
  the record through the session's private engine, and responds.  Worker
  writes ``await drain()``, so response delivery is part of service time
  and a slow socket applies backpressure to processing, not to shedding.

A client that stops reading its responses is cut off once the socket
write buffer passes :data:`MAX_WRITE_BUFFER` — bounded memory per
session, by construction.

Graceful drain (``SIGTERM``): stop accepting connections, answer new
records ``degraded: draining``, let every session worker flush its
queued backlog, send ``goodbye``, and only then exit — bounded by
``drain_grace`` seconds, after which stragglers are cancelled.
"""

from __future__ import annotations

import asyncio
import logging
import signal
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.chaos.oracle import CommitRule
from repro.core.cloaking import CloakingConfig
from repro.serve import protocol
from repro.serve.clock import now
from repro.serve.protocol import (
    MSG_BYE,
    MSG_CHAOS,
    MSG_CHAOS_ACK,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_RECORD,
    MSG_STATS,
    MSG_STATS_REPLY,
    PROTO_VERSION,
    REASON_BACKEND,
    REASON_BREAKER,
    REASON_DEADLINE,
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    DEGRADED_REASONS,
    ProtocolError,
    degraded_response,
    error_response,
    prediction_response,
)
from repro.serve.session import BackendError, Session
from repro.trace.serialize import TraceFormatError, parse_record_line

logger = logging.getLogger(__name__)

#: per-connection outbound buffer cap; past this the client is not
#: reading and the connection is aborted (slow-consumer protection)
MAX_WRITE_BUFFER = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Operational envelope of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                 # 0 = ephemeral (tests/drills)
    max_sessions: int = 64        # admission control
    queue_depth: int = 64         # bounded per-session inbound queue
    deadline_ms: Optional[float] = 250.0  # default per-record deadline
    service_delay: float = 0.0    # modelled per-record backend cost (s)
    breaker_threshold: int = 3
    breaker_base_delay: float = 0.05
    breaker_max_delay: float = 2.0
    allow_chaos: bool = False     # honour chaos messages (drills only)
    drain_grace: float = 5.0      # seconds to flush sessions on drain
    handshake_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, "
                             f"got {self.max_sessions}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, "
                             f"got {self.queue_depth}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive or None, "
                             f"got {self.deadline_ms}")
        if self.service_delay < 0:
            raise ValueError(f"service_delay must be >= 0, "
                             f"got {self.service_delay}")
        if self.drain_grace <= 0:
            raise ValueError(f"drain_grace must be positive, "
                             f"got {self.drain_grace}")


@dataclass
class ServerStats:
    """Whole-server counters (aggregated across sessions)."""

    sessions_opened: int = 0
    sessions_rejected: int = 0
    sessions_closed: int = 0
    records: int = 0
    predicted: int = 0
    breaker_opens: int = 0
    degraded: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in DEGRADED_REASONS})

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    def as_dict(self) -> dict:
        return {"sessions_opened": self.sessions_opened,
                "sessions_rejected": self.sessions_rejected,
                "sessions_closed": self.sessions_closed,
                "records": self.records, "predicted": self.predicted,
                "degraded": dict(self.degraded),
                "degraded_total": self.degraded_total,
                "breaker_opens": self.breaker_opens}


class PredictionServer:
    """Serve per-session cloaking predictions over a socket."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 cloaking: Optional[CloakingConfig] = None,
                 commit_rule: Optional[CommitRule] = None) -> None:
        self.config = config or ServeConfig()
        self.cloaking = cloaking or CloakingConfig.paper_accuracy()
        self.commit_rule = commit_rule  # None = verified_commit
        self.stats = ServerStats()
        self.port: Optional[int] = None
        self._sessions: Dict[str, Session] = {}
        self._handler_tasks: Set[asyncio.Task] = set()
        self._flush_tasks: Set[asyncio.Task] = set()
        self._session_counter = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_requested: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    async def start(self) -> None:
        """Bind and start accepting connections; sets :attr:`port`."""
        self._drain_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=protocol.MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]

    def begin_drain(self) -> None:
        """Flip into drain mode (idempotent; safe from a signal handler).

        Stops accepting connections and schedules a flush sentinel into
        every live session queue — queued records are still served, new
        ones are answered ``degraded: draining``.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        for session in list(self._sessions.values()):
            # Retain the flush tasks: a dropped ensure_future handle can
            # be garbage-collected before it runs, silently losing the
            # flush sentinel (and its exception, if the put fails).
            task = asyncio.ensure_future(
                session.queue.put(("flush", None, 0.0)))
            self._flush_tasks.add(task)
            task.add_done_callback(self._flush_tasks.discard)
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def drain(self) -> bool:
        """Complete a drain: flush sessions, bounded by ``drain_grace``.

        Returns ``True`` when every session flushed within the grace
        window, ``False`` when stragglers had to be cancelled.
        """
        self.begin_drain()
        if self._server is not None:
            await self._server.wait_closed()
        deadline = now() + self.config.drain_grace
        while self._handler_tasks and now() < deadline:
            await asyncio.sleep(0.005)
        clean = not self._handler_tasks
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(*self._handler_tasks,
                                 return_exceptions=True)
        for task in list(self._flush_tasks):
            task.cancel()
        if self._flush_tasks:
            await asyncio.gather(*self._flush_tasks,
                                 return_exceptions=True)
        return clean

    async def run(self, install_signals: bool = True) -> bool:
        """Start, serve until a drain is requested, then drain.

        With ``install_signals`` the drain triggers are SIGTERM/SIGINT
        (the operational entry point — ``python -m repro.serve serve``);
        tests call :meth:`begin_drain` directly.  Returns the drain's
        cleanliness flag.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.begin_drain)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            assert self._drain_requested is not None
            await self._drain_requested.wait()
            return await self.drain()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # drain grace expired; close without goodbye
        except Exception:
            # one broken connection must never take the server down
            logger.exception("connection handler failed")
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            await self._close(writer)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        session = await self._admit(reader, writer)
        if session is None:
            return
        reader_task = asyncio.create_task(
            self._session_reader(session, reader, writer))
        try:
            await self._session_worker(session, writer)
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._sessions.pop(session.name, None)
            self.stats.sessions_closed += 1

    async def _admit(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> Optional[Session]:
        """Handshake + admission control; None means rejected/bad."""
        try:
            hello = await asyncio.wait_for(protocol.recv(reader),
                                           self.config.handshake_timeout)
        except (ProtocolError, asyncio.TimeoutError, ConnectionError):
            return None
        if hello is None or hello.get("t") != MSG_HELLO:
            await self._send_quiet(writer, error_response(
                "expected a hello message first"))
            return None
        if hello.get("proto") != PROTO_VERSION:
            await self._send_quiet(writer, error_response(
                f"unsupported protocol {hello.get('proto')!r}; "
                f"this server speaks {PROTO_VERSION}"))
            return None
        self._session_counter += 1
        name = str(hello.get("session") or f"s{self._session_counter}")
        refusal = None
        if self._draining:
            refusal = "draining"
        elif len(self._sessions) >= self.config.max_sessions:
            refusal = "sessions-full"
        elif name in self._sessions:
            refusal = "name-taken"
        if refusal is not None:
            self.stats.sessions_rejected += 1
            await self._send_quiet(writer, {"t": protocol.MSG_BUSY,
                                            "reason": refusal})
            return None
        deadline_ms = hello.get("deadline_ms", self.config.deadline_ms)
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
        session = Session(
            name, queue_depth=self.config.queue_depth,
            deadline_ms=deadline_ms, cloaking=self.cloaking,
            commit_rule=self.commit_rule,
            service_delay=self.config.service_delay,
            breaker_threshold=self.config.breaker_threshold,
            breaker_base_delay=self.config.breaker_base_delay,
            breaker_max_delay=self.config.breaker_max_delay)
        self._sessions[name] = session
        self.stats.sessions_opened += 1
        await protocol.send(writer, {
            "t": protocol.MSG_WELCOME, "session": name,
            "proto": PROTO_VERSION, "queue_depth": self.config.queue_depth,
            "deadline_ms": deadline_ms})
        return session

    # -- the reader task: parse + admit ----------------------------------

    async def _session_reader(self, session: Session,
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message = await protocol.recv(reader)
                except ProtocolError as exc:
                    session.stats.bad_records += 1
                    self._write(writer, error_response(str(exc)))
                    continue
                except ConnectionError:
                    break
                if message is None or message["t"] == MSG_BYE:
                    break
                await self._dispatch(session, writer, message)
        finally:
            # bye or EOF: one flush sentinel, behind any queued backlog
            try:
                await session.queue.put(("flush", None, 0.0))
            except asyncio.CancelledError:
                raise

    async def _dispatch(self, session: Session,
                        writer: asyncio.StreamWriter, message: dict) -> None:
        kind = message["t"]
        if kind == MSG_RECORD:
            self._admit_record(session, writer, message)
        elif kind in (MSG_CHAOS, MSG_STATS):
            if kind == MSG_CHAOS and not self.config.allow_chaos:
                self._write(writer, error_response(
                    "chaos injection is disabled on this server",
                    message.get("i")))
            elif self._draining:
                self._write(writer, error_response("draining",
                                                   message.get("i")))
            else:
                # control messages are not shed: the reader awaits queue
                # space, which is exactly the explicit backpressure a
                # drill operator wants for faults and stats probes
                await session.queue.put((kind, message, now()))
        elif kind == MSG_HELLO:
            self._write(writer, error_response("session already open"))
        else:
            self._write(writer, error_response(
                f"unknown message type {kind!r}"))

    def _admit_record(self, session: Session, writer: asyncio.StreamWriter,
                      message: dict) -> None:
        index = message.get("i")
        if not isinstance(index, int):
            session.stats.bad_records += 1
            self._write(writer, error_response(
                "rec without an integer 'i' field"))
            return
        session.stats.records += 1
        self.stats.records += 1
        if self._draining:
            self._shed(session, writer, index, REASON_DRAINING)
            return
        try:
            session.queue.put_nowait(("rec", message, now()))
        except asyncio.QueueFull:
            self._shed(session, writer, index, REASON_QUEUE_FULL)

    def _shed(self, session: Session, writer: asyncio.StreamWriter,
              index: int, reason: str) -> None:
        """Answer a record degraded *now*, without touching the backend."""
        self._count_degraded(session, reason)
        self._write(writer, degraded_response(index, reason))

    def _count_degraded(self, session: Session, reason: str) -> None:
        session.stats.degraded[reason] += 1
        self.stats.degraded[reason] += 1

    # -- the worker task: deadline, breaker, backend ---------------------

    async def _session_worker(self, session: Session,
                              writer: asyncio.StreamWriter) -> None:
        flushing = False
        while True:
            if flushing:
                # drain semantics: serve what is already queued, then go
                try:
                    kind, message, enqueued = session.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                kind, message, enqueued = await session.queue.get()
            if kind == "flush":
                flushing = True
            elif kind == "rec":
                await self._serve_record(session, writer, message, enqueued)
            elif kind == MSG_CHAOS:
                await self._serve_chaos(session, writer, message)
            elif kind == MSG_STATS:
                await self._send_quiet(writer, dict(
                    {"t": MSG_STATS_REPLY}, **session.snapshot()))
        await self._send_quiet(writer, dict(
            {"t": MSG_GOODBYE}, **session.snapshot()))

    async def _serve_record(self, session: Session,
                            writer: asyncio.StreamWriter,
                            message: dict, enqueued: float) -> None:
        index = message["i"]
        deadline_ms = message.get("deadline_ms", session.deadline_ms)
        if (deadline_ms is not None
                and (now() - enqueued) * 1000.0 > float(deadline_ms)):
            self._count_degraded(session, REASON_DEADLINE)
            await self._send_quiet(writer,
                                   degraded_response(index, REASON_DEADLINE))
            return
        if not session.breaker.allow(now()):
            self._count_degraded(session, REASON_BREAKER)
            await self._send_quiet(writer,
                                   degraded_response(index, REASON_BREAKER))
            return
        try:
            inst = parse_record_line(str(message.get("r", "")))
        except TraceFormatError as exc:
            session.stats.bad_records += 1
            await self._send_quiet(writer, error_response(
                f"bad record: {exc}", index))
            return
        try:
            outcome, committed = await session.backend.observe(inst)
        except BackendError:
            delay = session.breaker.record_failure(now())
            if delay > 0:
                session.stats.breaker_opens += 1
                self.stats.breaker_opens += 1
            self._count_degraded(session, REASON_BACKEND)
            await self._send_quiet(writer,
                                   degraded_response(index, REASON_BACKEND))
            return
        session.breaker.record_success()
        session.stats.predicted += 1
        self.stats.predicted += 1
        await self._send_quiet(writer,
                               prediction_response(index, outcome, committed))

    async def _serve_chaos(self, session: Session,
                           writer: asyncio.StreamWriter,
                           message: dict) -> None:
        model = str(message.get("model", ""))
        seed = int(message.get("seed", 0))
        count = int(message.get("count", 1))
        try:
            target = session.apply_chaos(model, seed, count)
        except ValueError as exc:
            await self._send_quiet(writer, error_response(
                str(exc), message.get("i")))
            return
        await self._send_quiet(writer, {
            "t": MSG_CHAOS_ACK, "model": model, "target": target,
            "i": message.get("i")})

    # -- plumbing --------------------------------------------------------

    def _write(self, writer: asyncio.StreamWriter, message: dict) -> None:
        """Synchronous best-effort write (the shed path must not block)."""
        if writer.is_closing():
            return
        writer.write(protocol.encode(message))
        transport = writer.transport
        if (transport is not None
                and transport.get_write_buffer_size() > MAX_WRITE_BUFFER):
            transport.abort()  # slow consumer: bounded memory wins

    async def _send_quiet(self, writer: asyncio.StreamWriter,
                          message: dict) -> None:
        """``protocol.send`` that tolerates a vanished client."""
        try:
            await protocol.send(writer, message)
        except (ConnectionError, RuntimeError):
            pass

    async def _close(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
