"""The Synonym Rename Table (paper Section 5.6.1, Figure 8).

Bypassing links a consumer directly to the *producer of the value* rather
than to the load/store that communicates it.  The SRT associates a synonym
with the physical register (here: the producing dynamic instruction) that
currently holds the value: "loads and stores that are predicted as
producers associate the actual producer of the desired value with their
synonym via a synonym rename table entry.  Loads that are predicted as
consumers inspect the SRT and the SF in parallel...  If an SRT entry is
found, the synonym resides in the physical register file as the
corresponding load or store has yet to commit.  Otherwise, the synonym is
in the SF."
"""

from __future__ import annotations

from typing import Optional

from repro.util.lru import LRUTable


class SynonymRenameTable:
    """Maps live synonyms to the in-flight producer of their value."""

    def __init__(self, entries: Optional[int] = None) -> None:
        self._table = LRUTable(entries)

    def bind(self, synonym: int, producer_tag: int) -> None:
        """Associate a synonym with an in-flight producer (ROB tag)."""
        self._table.put(synonym, producer_tag)

    def resolve(self, synonym: int) -> Optional[int]:
        """The in-flight producer tag for a synonym, if it has not committed."""
        return self._table.get(synonym)

    def release(self, synonym: int, producer_tag: int) -> None:
        """Drop the binding at commit (only if it still names this producer)."""
        if self._table.get(synonym, touch=False) == producer_tag:
            self._table.pop(synonym)
