"""Configuration of the cloaking/bypassing mechanism."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dependence.ddt import DDTConfig
from repro.predictors.confidence import ConfidenceKind


class CloakingMode(enum.Enum):
    """Which dependence classes drive cloaking.

    ``RAW`` is the original Moshovos/Sohi mechanism (the paper's baseline);
    ``RAW_RAR`` adds this paper's RAR extensions; ``RAR`` isolates the
    extension (useful for analysis, not evaluated alone in the paper).
    """

    RAW = "RAW"
    RAR = "RAR"
    RAW_RAR = "RAW+RAR"

    @property
    def uses_raw(self) -> bool:
        return self in (CloakingMode.RAW, CloakingMode.RAW_RAR)

    @property
    def uses_rar(self) -> bool:
        return self in (CloakingMode.RAR, CloakingMode.RAW_RAR)


@dataclass(frozen=True)
class CloakingConfig:
    """Structure sizes and policies of a cloaking/bypassing mechanism.

    Defaults match the paper's timing configuration (Section 5.6.1):
    128-entry fully-associative DDT with word granularity, 8K 2-way DPNT,
    1K 2-way synonym file, adaptive 2-bit confidence, incremental
    (Chrysos-Emer) synonym merging.

    ``dpnt_entries``/``sf_entries`` of ``None`` model infinite tables (the
    accuracy study of Section 5.3 assumes an infinite DPNT).  Set-associative
    organizations apply only when a finite size is given; ``*_ways = 0``
    requests full associativity.
    """

    mode: CloakingMode = CloakingMode.RAW_RAR
    ddt: DDTConfig = field(default_factory=lambda: DDTConfig(size=128))
    dpnt_entries: Optional[int] = 8 * 1024
    dpnt_ways: int = 2
    sf_entries: Optional[int] = 1024
    sf_ways: int = 2
    confidence: ConfidenceKind = ConfidenceKind.TWO_BIT
    merge_policy: str = "incremental"  # "incremental" | "full" | "never"
    # The paper did "not provide explicit support for dependences between
    # instructions that access different data types" (Section 5.1) but
    # notes the original proposal discusses it.  When True, a consumer
    # whose access size differs from the SF value's producer size does not
    # speculate (avoiding guaranteed-wrong cross-size communication).
    check_size_mismatch: bool = False
    # Which repro.columnar simulation backend drives the measurement
    # stages ("reference" or "numpy").  Semantically neutral — the parity
    # suite guarantees identical results — but part of the config repr,
    # hence of the result-store fingerprint, so cached rows are traceable
    # to the backend that produced them.
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.merge_policy not in ("incremental", "full", "never"):
            raise ValueError(f"unknown merge policy {self.merge_policy!r}")
        # validate lazily against the columnar registry (no import cycle:
        # repro.columnar does not import repro.core)
        from repro.columnar.backend import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; valid backends: "
                + ", ".join(BACKEND_NAMES))
        if self.mode == CloakingMode.RAW and self.ddt.record_loads:
            # The original RAW-only mechanism does not record loads in the
            # DDT; constructing it with a load-recording DDT silently changes
            # store visibility (the Section 5.6.2 anomaly), so require the
            # caller to be explicit.
            object.__setattr__(
                self, "ddt",
                DDTConfig(
                    size=self.ddt.size,
                    split=self.ddt.split,
                    record_loads=False,
                    record_all_loads=self.ddt.record_all_loads,
                    touch_on_hit=self.ddt.touch_on_hit,
                ),
            )

    @classmethod
    def paper_accuracy(cls, mode: CloakingMode = CloakingMode.RAW_RAR,
                       confidence: ConfidenceKind = ConfidenceKind.TWO_BIT,
                       ddt_size: Optional[int] = 128) -> "CloakingConfig":
        """The Section 5.3 accuracy study: infinite DPNT and SF."""
        return cls(
            mode=mode,
            ddt=DDTConfig(size=ddt_size),
            dpnt_entries=None,
            sf_entries=None,
            confidence=confidence,
        )

    @classmethod
    def paper_overlap(cls, mode: CloakingMode = CloakingMode.RAW_RAR) -> "CloakingConfig":
        """The Section 5.5 value-prediction overlap study: 16K DPNT, 2K SF."""
        return cls(
            mode=mode,
            ddt=DDTConfig(size=128),
            dpnt_entries=16 * 1024,
            dpnt_ways=0,
            sf_entries=2 * 1024,
            sf_ways=0,
        )

    @classmethod
    def paper_timing(cls, mode: CloakingMode = CloakingMode.RAW_RAR,
                     split_ddt: bool = False) -> "CloakingConfig":
        """The Section 5.6.1 timing configuration."""
        return cls(
            mode=mode,
            ddt=DDTConfig(size=128, split=split_ddt),
            dpnt_entries=8 * 1024,
            dpnt_ways=2,
            sf_entries=1024,
            sf_ways=2,
        )

    # -- index semantics (shared with the static config lint) -------------

    @property
    def dpnt_sets(self) -> Optional[int]:
        """Number of DPNT sets, or None when the DPNT is infinite or
        fully associative (no conflict structure to reason about)."""
        if self.dpnt_entries is None or self.dpnt_ways <= 0:
            return None
        return self.dpnt_entries // self.dpnt_ways

    def dpnt_index(self, pc: int) -> Optional[int]:
        """The DPNT set a memory PC maps to.

        Mirrors the hash-and-mask indexing of the backing
        :class:`~repro.util.lru.SetAssociativeTable`, so static conflict
        reasoning (``W_DPNT_CONFLICT``) matches the modelled hardware.
        """
        sets = self.dpnt_sets
        if sets is None:
            return None
        return hash(pc) & (sets - 1)

    @property
    def sf_sets(self) -> Optional[int]:
        """Number of synonym-file sets, or None when infinite / fully
        associative."""
        if self.sf_entries is None or self.sf_ways <= 0:
            return None
        return self.sf_entries // self.sf_ways
