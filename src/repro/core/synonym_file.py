"""The Synonym File (paper Section 3.1).

Synonym-indexed storage for in-flight speculative values.  A predicted
producer allocates its synonym's entry *empty* and fills it when its value
becomes available (the store's data, or the memory value the first load
reads); predicted consumers probe it and, when full, obtain a speculative
value.  Entries record whether the producer was a store (a RAW group) or a
load (a RAR group) so accuracy can be attributed per dependence class as
in Figure 6.
"""

from __future__ import annotations

from typing import Optional

from repro.util.lru import LRUTable, SetAssociativeTable


class SFEntry:
    """One synonym's communication slot."""

    __slots__ = ("full", "value", "from_store", "size")

    def __init__(self) -> None:
        self.full = False
        self.value: object = None
        self.from_store = False
        self.size = 4

    def fill(self, value: object, from_store: bool, size: int = 4) -> None:
        self.full = True
        self.value = value
        self.from_store = from_store
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"full value={self.value!r}" if self.full else "empty"
        return f"<SFEntry {state}>"


class SynonymFile:
    """Synonym-indexed value storage.

    ``entries=None`` models an infinite SF; ``ways=0`` a fully-associative
    finite one; otherwise a set-associative organization (the paper's
    timing configuration uses 1K 2-way).
    """

    def __init__(self, entries: Optional[int] = None, ways: int = 2) -> None:
        if entries is None:
            self._table = LRUTable(None)
        elif ways == 0:
            self._table = LRUTable(entries)
        else:
            if entries % ways:
                raise ValueError(
                    f"entries ({entries}) must be divisible by ways ({ways})"
                )
            self._table = SetAssociativeTable(entries // ways, ways)
        self.allocations = 0

    def allocate(self, synonym: int) -> SFEntry:
        """Allocate (or re-claim) the entry for a synonym, marked empty."""
        entry = self._table.get(synonym)
        if entry is None:
            entry = SFEntry()
            self._table.put(synonym, entry)
            self.allocations += 1
        else:
            entry.full = False
            entry.value = None
        return entry

    def deposit(self, synonym: int, value: object, from_store: bool,
                size: int = 4) -> None:
        """Fill the synonym's entry, creating it if necessary."""
        entry = self._table.get(synonym)
        if entry is None:
            entry = SFEntry()
            self._table.put(synonym, entry)
            self.allocations += 1
        entry.fill(value, from_store, size)

    def probe(self, synonym: int) -> Optional[SFEntry]:
        """The entry for a synonym, or ``None`` (miss / evicted)."""
        return self._table.get(synonym)

    def entries(self):
        """Iterate ``(synonym, SFEntry)`` pairs (diagnostics / fault injection)."""
        return self._table.items()
