"""The Dependence Prediction and Naming Table (paper Section 3.1).

The DPNT is PC-indexed.  Each entry associates an instruction with a
synonym and carries **two** confidence predictors — one for the producer
role and one for the consumer role — because the RAR extension makes loads
producers too ("we need to mark loads as producers in the DPNT.  For this
we use two predictors per entry").
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.predictors.confidence import ConfidenceKind, ConfidenceState
from repro.util.lru import LRUTable, SetAssociativeTable


class DPNTEntry:
    """One instruction's prediction state: a synonym plus two role predictors."""

    __slots__ = ("synonym", "producer", "consumer")

    def __init__(self, synonym: int) -> None:
        self.synonym = synonym
        self.producer: Optional[ConfidenceState] = None
        self.consumer: Optional[ConfidenceState] = None


class DPNT:
    """PC-indexed prediction and naming table.

    ``entries=None`` models the infinite DPNT of the accuracy study;
    ``ways=0`` requests full associativity for a finite table.
    """

    def __init__(
        self,
        entries: Optional[int] = None,
        ways: int = 2,
        confidence: ConfidenceKind = ConfidenceKind.TWO_BIT,
    ) -> None:
        self.confidence_kind = confidence
        if entries is None:
            self._table = LRUTable(None)
        elif ways == 0:
            self._table = LRUTable(entries)
        else:
            if entries % ways:
                raise ValueError(
                    f"entries ({entries}) must be divisible by ways ({ways})"
                )
            self._table = SetAssociativeTable(entries // ways, ways)

    def lookup(self, pc: int) -> Optional[DPNTEntry]:
        """The entry for an instruction, or ``None``."""
        return self._table.get(pc)

    def ensure(self, pc: int, synonym: int) -> DPNTEntry:
        """Return the entry for ``pc``, creating it with ``synonym`` if absent."""
        entry = self._table.get(pc)
        if entry is None:
            entry = DPNTEntry(synonym)
            self._table.put(pc, entry)
        return entry

    def mark_producer(self, entry: DPNTEntry) -> ConfidenceState:
        """Attach (or fetch) the producer-role predictor of an entry."""
        if entry.producer is None:
            entry.producer = ConfidenceState(self.confidence_kind)
        return entry.producer

    def mark_consumer(self, entry: DPNTEntry) -> ConfidenceState:
        """Attach (or fetch) the consumer-role predictor of an entry."""
        if entry.consumer is None:
            entry.consumer = ConfidenceState(self.confidence_kind)
        return entry.consumer

    def rewrite_synonym(self, old: int, new: int) -> int:
        """Full-merge support: rewrite every entry carrying ``old``.

        Returns the number of rewritten entries.  This is the associative
        sweep the incremental policy avoids.
        """
        rewritten = 0
        for _, entry in self._table.items():
            if entry.synonym == old:
                entry.synonym = new
                rewritten += 1
        return rewritten

    def entries(self) -> Iterator[Tuple[int, DPNTEntry]]:
        return self._table.items()
