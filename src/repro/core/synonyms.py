"""Synonym allocation and merge policies (paper Section 5.1).

A *synonym* is the new name cloaking assigns to a communication group: the
level of indirection that lets several RAW and RAR dependences per load or
store share one storage slot in the Synonym File.

When a dependence is detected between two instructions that already carry
*different* synonyms, the groups must merge.  The original proposal scans
the DPNT and rewrites every instance of one synonym (**full** merge); the
paper instead adopts Chrysos and Emer's **incremental** scheme: only the
instruction holding the larger-valued synonym is rewritten, to the smaller
value.  The bias toward smaller values makes the group converge to one
synonym after a few detections without any associative DPNT sweep.  The
paper reports no noticeable accuracy difference; ``never`` (keep the
mismatch) is provided to show why merging matters at all.
"""

from __future__ import annotations

import enum
from typing import Tuple


class MergePolicy(enum.Enum):
    INCREMENTAL = "incremental"
    FULL = "full"
    NEVER = "never"


class SynonymAllocator:
    """Hands out fresh synonym ids and resolves merge decisions."""

    def __init__(self, policy: MergePolicy = MergePolicy.INCREMENTAL) -> None:
        self.policy = policy
        self._next = 1  # synonym 0 is reserved as "none"
        self.allocated = 0
        self.merges = 0

    def fresh(self) -> int:
        """A never-before-used synonym."""
        synonym = self._next
        self._next += 1
        self.allocated += 1
        return synonym

    def merge(self, source_syn: int, sink_syn: int) -> Tuple[int, int]:
        """Resolve a conflict between two existing synonyms.

        Returns ``(source_result, sink_result)`` — the synonyms each
        instruction should carry afterwards.  Under the incremental policy
        only the larger value is replaced; under full merge both converge
        immediately (the DPNT sweep is carried out by the caller, which owns
        the table); under ``never`` both keep their synonyms.
        """
        if source_syn == sink_syn:
            return source_syn, sink_syn
        self.merges += 1
        if self.policy == MergePolicy.NEVER:
            return source_syn, sink_syn
        winner = min(source_syn, sink_syn)
        if self.policy == MergePolicy.FULL:
            return winner, winner
        # Incremental: rewrite only the instruction holding the larger value.
        if source_syn > sink_syn:
            return winner, sink_syn
        return source_syn, winner
