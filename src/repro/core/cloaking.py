"""The streaming cloaking/bypassing engine (accuracy model).

This is the functional-mode model behind every accuracy number in the
paper's Sections 5.3-5.5: it consumes the committed instruction stream and
exercises the full prediction pipeline —

1. **Consumer prediction** (decode time in hardware): a load whose DPNT
   entry's consumer predictor is confident probes the Synonym File; a full
   entry supplies a speculative value.
2. **Producer deposit** (completion time): a predicted producer (store, or
   the earliest load of a RAR group) writes its value into the SF.
3. **Verification** (commit): the speculative value is compared with the
   value memory actually returned; confidence is trained on the outcome.
4. **Detection** (commit): the DDT observes the access; a detected
   dependence creates/updates DPNT entries, assigns synonyms and merges
   conflicting synonym groups.

Coverage and misspeculation are attributed to RAW or RAR according to who
produced the speculative value (a store or a load), matching Figure 6's
grey/white breakdown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, NamedTuple, Optional

from repro.core.config import CloakingConfig
from repro.core.dpnt import DPNT
from repro.core.synonym_file import SynonymFile
from repro.core.synonyms import MergePolicy, SynonymAllocator
from repro.dependence.ddt import DDT, Dependence, DependenceKind
from repro.trace.records import DynInst


class LoadOutcome(enum.Enum):
    """What cloaking did for one dynamic load."""

    NOT_PREDICTED = "none"
    CORRECT_RAW = "correct-raw"
    CORRECT_RAR = "correct-rar"
    WRONG_RAW = "wrong-raw"
    WRONG_RAR = "wrong-rar"

    @property
    def speculated(self) -> bool:
        return self is not LoadOutcome.NOT_PREDICTED

    @property
    def correct(self) -> bool:
        return self in (LoadOutcome.CORRECT_RAW, LoadOutcome.CORRECT_RAR)


class ObservedAccess(NamedTuple):
    """Timing-model view of one observed memory access.

    ``consumer_synonym`` is set when a load obtained (or silently verified)
    a speculative value through that synonym; ``producer_synonym`` when the
    instruction deposited its value into the SF as a predicted producer.
    The pipeline model uses these to time speculative value availability.
    ``spec_value`` is the value the consumer obtained from the SF when the
    outcome is speculative — the differential oracle
    (:mod:`repro.chaos.oracle`) uses it to model what would reach
    architectural state if verification or recovery misbehaved.
    """

    outcome: LoadOutcome
    consumer_synonym: Optional[int]
    producer_synonym: Optional[int]
    spec_value: object = None


@dataclass
class CloakingStats:
    """Accuracy accounting over all executed loads (Figure 6 metrics)."""

    loads: int = 0
    correct_raw: int = 0
    correct_rar: int = 0
    wrong_raw: int = 0
    wrong_rar: int = 0

    def record(self, outcome: LoadOutcome) -> None:
        self.loads += 1
        if outcome == LoadOutcome.CORRECT_RAW:
            self.correct_raw += 1
        elif outcome == LoadOutcome.CORRECT_RAR:
            self.correct_rar += 1
        elif outcome == LoadOutcome.WRONG_RAW:
            self.wrong_raw += 1
        elif outcome == LoadOutcome.WRONG_RAR:
            self.wrong_rar += 1

    def _frac(self, count: int) -> float:
        return count / self.loads if self.loads else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of all loads that got a correct value via cloaking."""
        return self._frac(self.correct_raw + self.correct_rar)

    @property
    def coverage_raw(self) -> float:
        return self._frac(self.correct_raw)

    @property
    def coverage_rar(self) -> float:
        return self._frac(self.correct_rar)

    @property
    def misspeculation_rate(self) -> float:
        """Fraction of all loads that got an incorrect value."""
        return self._frac(self.wrong_raw + self.wrong_rar)

    @property
    def misspeculation_raw(self) -> float:
        return self._frac(self.wrong_raw)

    @property
    def misspeculation_rar(self) -> float:
        return self._frac(self.wrong_rar)

    def as_dict(self) -> dict:
        """Counters plus derived rates, JSON-able.

        The serving layer (:mod:`repro.serve`) reports per-session
        accuracy over the wire through this one shape, so clients and the
        offline experiments read the same field names.
        """
        return {
            "loads": self.loads,
            "correct_raw": self.correct_raw,
            "correct_rar": self.correct_rar,
            "wrong_raw": self.wrong_raw,
            "wrong_rar": self.wrong_rar,
            "coverage": self.coverage,
            "misspeculation_rate": self.misspeculation_rate,
        }


class CloakingEngine:
    """A complete cloaking/bypassing prediction mechanism.

    Drive it with :meth:`observe` per committed instruction (it returns the
    :class:`LoadOutcome` for loads), or :meth:`run` over a whole trace.
    """

    def __init__(self, config: CloakingConfig = CloakingConfig()) -> None:
        self.config = config
        self.ddt = DDT(config.ddt)
        self.dpnt = DPNT(config.dpnt_entries, config.dpnt_ways, config.confidence)
        self.sf = SynonymFile(config.sf_entries, config.sf_ways)
        self.synonyms = SynonymAllocator(MergePolicy(config.merge_policy))
        self.stats = CloakingStats()

    # -- per-instruction streaming interface --------------------------------

    def observe(self, inst: DynInst) -> Optional[LoadOutcome]:
        """Account one committed instruction; returns the outcome for loads."""
        if inst.is_store:
            self._observe_store(inst)
            return None
        if not inst.is_load:
            return None
        return self._observe_load(inst).outcome

    def observe_timing(self, inst: DynInst) -> Optional[ObservedAccess]:
        """Like :meth:`observe`, with synonym detail for the timing model."""
        if inst.is_store:
            produced = self._observe_store(inst)
            return ObservedAccess(LoadOutcome.NOT_PREDICTED, None, produced)
        if not inst.is_load:
            return None
        return self._observe_load(inst)

    def run(self, trace: Iterable[DynInst]) -> CloakingStats:
        """Consume a whole trace; returns the accumulated statistics."""
        for inst in trace:
            self.observe(inst)
        return self.stats

    def describe(self) -> dict:
        """Structure occupancy and naming statistics (diagnostics).

        Useful for sizing studies: how many static instructions carry
        prediction state, how many synonym groups exist, and how much
        merging the dependence stream forced.
        """
        entries = list(self.dpnt.entries())
        producers = sum(1 for _, e in entries if e.producer is not None)
        consumers = sum(1 for _, e in entries if e.consumer is not None)
        return {
            "mode": self.config.mode.value,
            "dpnt_entries": len(entries),
            "producer_entries": producers,
            "consumer_entries": consumers,
            "synonyms_allocated": self.synonyms.allocated,
            "synonym_merges": self.synonyms.merges,
            "sf_allocations": self.sf.allocations,
            "ddt_raw_detected": self.ddt.raw_detected,
            "ddt_rar_detected": self.ddt.rar_detected,
        }

    # -- internals -----------------------------------------------------------

    def _observe_store(self, inst: DynInst) -> Optional[int]:
        produced: Optional[int] = None
        if self.config.mode.uses_raw:
            entry = self.dpnt.lookup(inst.pc)
            if entry is not None and entry.producer is not None \
                    and entry.producer.predict:
                self.sf.deposit(entry.synonym, inst.value, from_store=True,
                                size=inst.size)
                produced = entry.synonym
        self.ddt.observe_store(inst.pc, inst.word_addr)
        return produced

    def _observe_load(self, inst: DynInst) -> ObservedAccess:
        pc = inst.pc
        entry = self.dpnt.lookup(pc)
        outcome = LoadOutcome.NOT_PREDICTED
        consumed: Optional[int] = None
        produced: Optional[int] = None
        spec_value: object = None

        # 1. Consumer prediction: obtain a speculative value via the synonym.
        #    The prediction is always *made and verified* when a value is
        #    available, but it is *used* (propagated to dependent
        #    instructions) only when confidence is above threshold — this is
        #    how the 2-bit automaton can require "two correct predictions
        #    before allowing a predicted value to be used again" (Section
        #    5.3): the two rebuilding predictions are verified silently.
        if entry is not None and entry.consumer is not None:
            sf_entry = self.sf.probe(entry.synonym)
            if sf_entry is not None and sf_entry.full \
                    and self.config.check_size_mismatch \
                    and sf_entry.size != inst.size:
                # Cross-size communication is undefined (a byte cannot name
                # a word's value); with explicit support enabled the
                # consumer abstains instead of misspeculating.
                sf_entry = None
            if sf_entry is not None and sf_entry.full:
                use_value = entry.consumer.predict
                correct = sf_entry.value == inst.value
                if correct:
                    entry.consumer.on_correct()
                else:
                    entry.consumer.on_wrong()
                if use_value:
                    consumed = entry.synonym
                    spec_value = sf_entry.value
                    if correct:
                        outcome = (LoadOutcome.CORRECT_RAW if sf_entry.from_store
                                   else LoadOutcome.CORRECT_RAR)
                    else:
                        outcome = (LoadOutcome.WRONG_RAW if sf_entry.from_store
                                   else LoadOutcome.WRONG_RAR)

        # 2. Producer deposit: the earliest load of a RAR group publishes
        #    the value it read (RAR groups only exist when the mode allows).
        if self.config.mode.uses_rar and entry is not None \
                and entry.producer is not None and entry.producer.predict:
            self.sf.deposit(entry.synonym, inst.value, from_store=False,
                            size=inst.size)
            produced = entry.synonym

        # 3/4. Detection and naming.
        dep = self.ddt.observe_load(pc, inst.word_addr)
        if dep is not None and self._mode_allows(dep):
            self._note_dependence(dep)

        self.stats.record(outcome)
        return ObservedAccess(outcome, consumed, produced, spec_value)

    def _mode_allows(self, dep: Dependence) -> bool:
        if dep.kind == DependenceKind.RAW:
            return self.config.mode.uses_raw
        return self.config.mode.uses_rar

    def _note_dependence(self, dep: Dependence) -> None:
        """Create/merge naming state for a detected dependence and train."""
        source_entry = self.dpnt.lookup(dep.source_pc)
        sink_entry = self.dpnt.lookup(dep.sink_pc)

        if source_entry is None and sink_entry is None:
            synonym = self.synonyms.fresh()
            source_entry = self.dpnt.ensure(dep.source_pc, synonym)
            # Self-RAR (source == sink) must reuse the same entry.
            sink_entry = self.dpnt.ensure(dep.sink_pc, synonym)
        elif source_entry is None:
            source_entry = self.dpnt.ensure(dep.source_pc, sink_entry.synonym)
        elif sink_entry is None:
            sink_entry = self.dpnt.ensure(dep.sink_pc, source_entry.synonym)
        elif source_entry.synonym != sink_entry.synonym:
            old_source, old_sink = source_entry.synonym, sink_entry.synonym
            new_source, new_sink = self.synonyms.merge(old_source, old_sink)
            if self.synonyms.policy == MergePolicy.FULL:
                loser = max(old_source, old_sink)
                self.dpnt.rewrite_synonym(loser, min(old_source, old_sink))
            source_entry.synonym = new_source
            sink_entry.synonym = new_sink

        # Role predictors are created at the confidence threshold, so both
        # instructions can participate "as soon as a dependence is detected".
        # Consumer confidence is trained exclusively by prediction outcomes
        # (step 1); detection alone must not re-enable a misbehaving entry.
        producer = self.dpnt.mark_producer(source_entry)
        producer.on_detect()
        self.dpnt.mark_consumer(sink_entry)
