"""The paper's contribution: speculative memory cloaking and bypassing.

This package implements the full prediction pipeline of Sections 3.1/3.2:
dependence detection feeds the Dependence Prediction and Naming Table
(DPNT), synonyms name communication groups, the Synonym File (SF) carries
speculative values from producers (stores for RAW, earliest loads for RAR)
to consumers, and the Synonym Rename Table (SRT) links consumers straight
to producing physical registers for bypassing.

:class:`~repro.core.cloaking.CloakingEngine` is the streaming functional
model used for all accuracy experiments (Figures 6/7, Table 5.2);
:mod:`repro.pipeline.cloaked_processor` embeds the same structures into the
cycle-level timing model for Figures 9/10.
"""

from repro.core.cloaking import (
    CloakingEngine,
    CloakingStats,
    LoadOutcome,
    ObservedAccess,
)
from repro.core.config import CloakingConfig, CloakingMode
from repro.core.dpnt import DPNT, DPNTEntry
from repro.core.srt import SynonymRenameTable
from repro.core.synonym_file import SFEntry, SynonymFile
from repro.core.synonyms import MergePolicy, SynonymAllocator

__all__ = [
    "CloakingConfig",
    "CloakingMode",
    "CloakingEngine",
    "CloakingStats",
    "LoadOutcome",
    "ObservedAccess",
    "DPNT",
    "DPNTEntry",
    "SynonymFile",
    "SFEntry",
    "SynonymRenameTable",
    "SynonymAllocator",
    "MergePolicy",
]
