"""The dynamic instruction record every analysis consumes."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import OpClass


class DynInst:
    """One committed dynamic instruction.

    Attributes
    ----------
    index:
        Dynamic sequence number (commit order).
    pc:
        Instruction address.  All prediction in the paper is PC-indexed.
    opclass:
        Functional class, carrying the execution latency.
    rd:
        Destination register (flat id) or ``None``.
    srcs:
        Source registers in operand order.  For stores the first source is
        the address base and the second the data register.
    addr:
        Effective byte address for loads/stores, else ``None``.
    value:
        For a load, the value read; for a store, the value written.  Drives
        cloaking verification and value-prediction experiments.
    taken / target_pc:
        Branch outcome and destination for control instructions.
    """

    __slots__ = ("index", "pc", "opclass", "rd", "srcs", "addr", "value",
                 "taken", "target_pc", "size")

    def __init__(
        self,
        index: int,
        pc: int,
        opclass: OpClass,
        rd: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        addr: Optional[int] = None,
        value: object = None,
        taken: Optional[bool] = None,
        target_pc: Optional[int] = None,
        size: int = 4,
    ) -> None:
        self.index = index
        self.pc = pc
        self.opclass = opclass
        self.rd = rd
        self.srcs = srcs
        self.addr = addr
        self.value = value
        self.taken = taken
        self.target_pc = target_pc
        self.size = size

    @property
    def is_load(self) -> bool:
        return self.opclass == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass == OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.opclass == OpClass.LOAD or self.opclass == OpClass.STORE

    @property
    def is_control(self) -> bool:
        return self.opclass in (
            OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN
        )

    @property
    def word_addr(self) -> Optional[int]:
        """Word-granularity address (the granularity the paper's DDT uses)."""
        return None if self.addr is None else self.addr >> 2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = ""
        if self.is_mem:
            extra = f" addr={self.addr:#x} value={self.value!r}"
        elif self.is_control:
            extra = f" taken={self.taken} target={self.target_pc:#x}"
        return f"<DynInst #{self.index} pc={self.pc:#x} {self.opclass.name}{extra}>"
