"""Timing:functional trace sampling (paper Section 5.1).

The paper simulates 50,000-instruction observation windows in full timing
mode, then switches to functional simulation for ``ratio`` times as many
instructions (during which caches and branch predictors stay warm).  A
sampling ratio of ``1:2`` means one timing window followed by two windows'
worth of functional instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.trace.records import DynInst

OBSERVATION_SIZE = 50_000

TIMING = "timing"
FUNCTIONAL = "functional"


@dataclass
class SampledSegment:
    """A contiguous run of instructions simulated in a single mode."""

    mode: str
    instructions: List[DynInst]


@dataclass(frozen=True)
class SamplingPlan:
    """An alternating timing/functional schedule.

    ``timing`` and ``functional`` are the ratio parts from Table 5.1
    ("1:2" -> ``SamplingPlan(1, 2)``); ``functional=0`` disables sampling
    (the "N/A" programs).
    """

    timing: int = 1
    functional: int = 0
    observation: int = OBSERVATION_SIZE

    def __post_init__(self) -> None:
        if self.timing < 1:
            raise ValueError("timing part of the ratio must be >= 1")
        if self.functional < 0:
            raise ValueError("functional part of the ratio must be >= 0")
        if self.observation < 1:
            raise ValueError("observation window must be >= 1")

    @classmethod
    def parse(cls, text: str, observation: int = OBSERVATION_SIZE) -> "SamplingPlan":
        """Parse a Table 5.1 ratio string: ``"1:2"`` or ``"N/A"``."""
        text = text.strip()
        if text.upper() in ("N/A", "NA", ""):
            return cls(1, 0, observation)
        timing_part, _, functional_part = text.partition(":")
        return cls(int(timing_part), int(functional_part), observation)

    @property
    def enabled(self) -> bool:
        return self.functional > 0

    def segments(self, trace: Iterable[DynInst]) -> Iterator[SampledSegment]:
        """Chop a trace into alternating timing/functional segments."""
        timing_len = self.timing * self.observation
        functional_len = self.functional * self.observation
        mode = TIMING
        budget = timing_len
        chunk: List[DynInst] = []
        for inst in trace:
            chunk.append(inst)
            budget -= 1
            if budget == 0:
                yield SampledSegment(mode, chunk)
                chunk = []
                if self.enabled:
                    mode = FUNCTIONAL if mode == TIMING else TIMING
                budget = timing_len if mode == TIMING else functional_len
        if chunk:
            yield SampledSegment(mode, chunk)

    def timing_fraction(self) -> float:
        """Fraction of instructions simulated in timing mode."""
        return self.timing / (self.timing + self.functional)
