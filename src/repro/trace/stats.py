"""Per-trace statistics (the paper's Table 5.1 characteristics)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Sequence

from repro.isa.instructions import OpClass
from repro.trace.records import DynInst


@dataclass
class TraceStats:
    """Dynamic instruction count and instruction mix of one trace."""

    instructions: int = 0
    class_counts: Dict[OpClass, int] = field(default_factory=dict)

    def observe(self, inst: DynInst) -> None:
        self.instructions += 1
        cls = inst.opclass
        self.class_counts[cls] = self.class_counts.get(cls, 0) + 1

    @property
    def loads(self) -> int:
        return self.class_counts.get(OpClass.LOAD, 0)

    @property
    def stores(self) -> int:
        return self.class_counts.get(OpClass.STORE, 0)

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.instructions if self.instructions else 0.0

    @property
    def branch_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        branches = sum(
            self.class_counts.get(c, 0)
            for c in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN)
        )
        return branches / self.instructions

    @property
    def fp_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        fp_ops = sum(
            self.class_counts.get(c, 0)
            for c in (OpClass.FADD, OpClass.FMUL_SP, OpClass.FMUL_DP,
                      OpClass.FDIV_SP, OpClass.FDIV_DP, OpClass.FCMP)
        )
        return fp_ops / self.instructions


def collect_stats(trace: Iterable[DynInst]) -> TraceStats:
    """Consume a trace and return its statistics."""
    stats = TraceStats()
    for inst in trace:
        stats.observe(inst)
    return stats


def tee_observe(trace: Iterable[DynInst], observers: Sequence[object]) -> Iterator[DynInst]:
    """Stream ``trace``, feeding every instruction to each observer.

    Observers expose ``observe(inst)``.  This lets several analyses share a
    single (expensive) interpreter pass.
    """
    for inst in trace:
        for obs in observers:
            obs.observe(inst)
        yield inst


def run_observers(trace: Iterable[DynInst], *observers: object) -> None:
    """Drive :func:`tee_observe` to exhaustion for its side effects."""
    for _ in tee_observe(trace, observers):
        pass
