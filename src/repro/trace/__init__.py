"""Dynamic instruction traces: records, statistics, and sampling.

All the paper's mechanisms consume the committed dynamic instruction
stream.  This package defines the record type produced by the ISA
interpreter (:class:`~repro.trace.records.DynInst`), per-trace statistics
matching Table 5.1 of the paper, and the timing:functional sampling scheme
of Section 5.1.
"""

from repro.trace.records import DynInst
from repro.trace.sampling import SamplingPlan, SampledSegment
from repro.trace.stats import TraceStats, collect_stats

__all__ = [
    "DynInst",
    "TraceStats",
    "collect_stats",
    "SamplingPlan",
    "SampledSegment",
]
