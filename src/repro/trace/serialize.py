"""Trace serialization: save committed-instruction streams to disk.

Interpreting a workload dominates the cost of most experiments; saving the
trace lets repeated analyses (or external tools) skip re-execution.  The
format is a compact text format, one record per line::

    R <index> <pc> <opclass> [fields...]

with per-class fields:

* loads:    ``rd addr size value``
* stores:   ``addr size value``
* control:  ``taken target_pc``
* others:   ``rd``

Values are ``i<int>`` or ``f<float-hex>`` so integer/float identity
round-trips exactly (float equality matters: cloaking verification is
value-based).  A header line carries a format version and the source
name.  Streams are written/read incrementally, so arbitrarily long traces
serialize in constant memory.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from repro.isa.instructions import OpClass
from repro.trace.records import DynInst

FORMAT_VERSION = 1
_CONTROL = (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN)


#: malformed-record budget for salvage mode before giving up entirely
DEFAULT_SALVAGE_ERRORS = 25


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or of an unknown version."""


def encode_value(value: object) -> str:
    """One trace value → its exact-round-trip token (``i<int>``/``f<hex>``).

    Public because the serving protocol (:mod:`repro.serve`) reuses the
    trace value encoding for committed-value tokens on the wire.
    """
    if isinstance(value, bool):
        raise TraceFormatError(f"boolean trace value: {value!r}")
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value.hex()}"
    raise TraceFormatError(f"unsupported trace value type: {type(value)}")


def decode_value(token: str) -> object:
    """Inverse of :func:`encode_value`."""
    if token.startswith("i"):
        return int(token[1:])
    if token.startswith("f"):
        return float.fromhex(token[1:])
    raise TraceFormatError(f"bad value token: {token!r}")


# private spellings kept for in-module symmetry with _parse_record
_encode_value = encode_value
_decode_value = decode_value


def format_record(inst: DynInst) -> str:
    """One :class:`DynInst` → its record line (no trailing newline)."""
    cls = inst.opclass
    head = f"R {inst.index} {inst.pc} {cls.value}"
    if cls == OpClass.LOAD:
        return (f"{head} {inst.rd} {inst.addr} {inst.size} "
                f"{encode_value(inst.value)}")
    if cls == OpClass.STORE:
        return (f"{head} {inst.addr} {inst.size} "
                f"{encode_value(inst.value)}")
    if cls in _CONTROL:
        return f"{head} {int(bool(inst.taken))} {inst.target_pc}"
    rd = -1 if inst.rd is None else inst.rd
    return f"{head} {rd}"


def write_trace(trace: Iterable[DynInst], fp: IO[str],
                name: str = "") -> int:
    """Stream a trace to a text file object; returns the record count."""
    fp.write(f"# repro-trace v{FORMAT_VERSION} {name}\n")
    count = 0
    for inst in trace:
        fp.write(format_record(inst) + "\n")
        count += 1
    return count


#: exact token count per record class ("R index pc opclass" + fields)
_FIELD_COUNT = {"load": 8, "store": 7, "control": 6, "other": 5}


def _parse_record(parts, line_no: int, line: str) -> DynInst:
    """One record line → DynInst; TraceFormatError carries the line number."""
    index = int(parts[1])
    pc = int(parts[2])
    cls = OpClass(int(parts[3]))
    if cls == OpClass.LOAD:
        kind = "load"
    elif cls == OpClass.STORE:
        kind = "store"
    elif cls in _CONTROL:
        kind = "control"
    else:
        kind = "other"
    expected = _FIELD_COUNT[kind]
    if len(parts) != expected:
        raise TraceFormatError(
            f"line {line_no}: {kind} record has {len(parts)} fields, "
            f"expected {expected} (truncated mid-record?): {line!r}")
    if kind == "load":
        return DynInst(index, pc, cls, rd=int(parts[4]), addr=int(parts[5]),
                       size=int(parts[6]), value=_decode_value(parts[7]))
    if kind == "store":
        return DynInst(index, pc, cls, addr=int(parts[4]),
                       size=int(parts[5]), value=_decode_value(parts[6]))
    if kind == "control":
        return DynInst(index, pc, cls, taken=bool(int(parts[4])),
                       target_pc=int(parts[5]))
    rd = int(parts[4])
    return DynInst(index, pc, cls, rd=None if rd < 0 else rd)


def parse_record_line(line: str, line_no: int = 0) -> DynInst:
    """Parse one record line (as produced by :func:`format_record`).

    Any malformation — not a record, wrong field count, bad value token —
    raises :class:`TraceFormatError` carrying ``line_no``.  Public because
    the serving protocol (:mod:`repro.serve`) parses wire records through
    this single entry point: a garbled line from a client must become a
    typed error, never an uncaught exception in the server.
    """
    parts = line.split()
    try:
        if not parts or parts[0] != "R" or len(parts) < 4:
            raise TraceFormatError(f"line {line_no}: bad record {line!r}")
        return _parse_record(parts, line_no, line)
    except TraceFormatError as exc:
        if str(exc).startswith("line "):
            raise
        raise TraceFormatError(f"line {line_no}: {exc}") from None
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"line {line_no}: {exc}: {line!r}") from None


def read_trace(fp: IO[str], salvage: bool = False,
               max_errors: int = DEFAULT_SALVAGE_ERRORS) -> Iterator[DynInst]:
    """Stream records back from a file object written by :func:`write_trace`.

    Register *source* lists are not serialized (analyses that consume saved
    traces — DDT, cloaking, locality — key on PCs, addresses and values);
    loads and stores come back with empty ``srcs``.

    A malformed line — truncated mid-record, wrong field count, bad value
    token — raises :class:`TraceFormatError` naming the line number.  With
    ``salvage=True`` malformed lines are *skipped* and the stream
    continues (the header must still be intact) — but only up to
    ``max_errors`` of them: a wholly corrupt file fails fast with one
    summary :class:`TraceFormatError` instead of grinding through
    millions of bad lines one diagnostic at a time.
    """
    header = fp.readline()
    if not header.startswith("# repro-trace v"):
        raise TraceFormatError(f"not a repro trace file: {header[:40]!r}")
    version = header.split()[2]
    if version != f"v{FORMAT_VERSION}":
        raise TraceFormatError(f"unsupported trace version {version}")
    errors = 0
    first_error = None
    for line_no, line in enumerate(fp, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = parse_record_line(line, line_no)
        except TraceFormatError as exc:
            if not salvage:
                raise
            errors += 1
            if first_error is None:
                first_error = str(exc)
            if errors > max_errors:
                raise TraceFormatError(
                    f"salvage abandoned: {errors} malformed records "
                    f"exceed the cap of {max_errors}; "
                    f"first: {first_error}") from None
            continue
        yield record


def save_trace(trace: Iterable[DynInst], path: str, name: str = "") -> int:
    """Write a trace to ``path``; returns the record count."""
    with open(path, "w") as fp:
        return write_trace(trace, fp, name=name)


def load_trace(path: str, salvage: bool = False,
               max_errors: int = DEFAULT_SALVAGE_ERRORS) -> Iterator[DynInst]:
    """Iterate the records stored at ``path``.

    The file stays open for the duration of the iteration; exhaust or
    close the generator to release it.  ``salvage`` and ``max_errors``
    are forwarded to :func:`read_trace`.
    """
    with open(path) as fp:
        yield from read_trace(fp, salvage=salvage, max_errors=max_errors)
