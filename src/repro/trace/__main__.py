"""Trace tooling CLI: ``python -m repro.trace <command> ...``.

Commands:

* ``dump <workload> -o FILE [--scale S] [--max N]`` — execute a workload
  and save its committed trace (see :mod:`repro.trace.serialize`).
* ``stats <FILE-or-workload> [--scale S] [--max N]`` — print the
  instruction mix of a saved trace file or of a workload run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, Optional, Sequence

from repro.trace.records import DynInst
from repro.trace.serialize import load_trace, save_trace
from repro.trace.stats import collect_stats


def _workload_trace(name: str, scale: float,
                    max_instructions: Optional[int]) -> Iterable[DynInst]:
    from repro.workloads import get_workload

    return get_workload(name).trace(scale=scale,
                                    max_instructions=max_instructions)


def _cmd_dump(args: argparse.Namespace) -> int:
    trace = _workload_trace(args.workload, args.scale, args.max)
    count = save_trace(trace, args.output, name=args.workload)
    print(f"wrote {count:,} records to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if os.path.exists(args.source):
        trace: Iterable[DynInst] = load_trace(args.source)
        label = args.source
    else:
        trace = _workload_trace(args.source, args.scale, args.max)
        label = f"workload {args.source!r} (scale {args.scale})"
    stats = collect_stats(trace)
    print(f"{label}:")
    print(f"  instructions: {stats.instructions:,}")
    print(f"  loads:        {stats.loads:,} ({stats.load_fraction:.1%})")
    print(f"  stores:       {stats.stores:,} ({stats.store_fraction:.1%})")
    print(f"  branches:     {stats.branch_fraction:.1%}")
    print(f"  fp ops:       {stats.fp_fraction:.1%}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="execute a workload, save its trace")
    dump.add_argument("workload")
    dump.add_argument("-o", "--output", required=True)
    dump.add_argument("--scale", type=float, default=0.1)
    dump.add_argument("--max", type=int, default=None,
                      help="cap the number of committed instructions")
    dump.set_defaults(func=_cmd_dump)

    stats = sub.add_parser("stats", help="instruction mix of a trace/workload")
    stats.add_argument("source", help="a saved trace file or a workload name")
    stats.add_argument("--scale", type=float, default=0.1)
    stats.add_argument("--max", type=int, default=None)
    stats.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
