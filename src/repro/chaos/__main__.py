"""``python -m repro.chaos`` — shake the system and check the invariant.

    python -m repro.chaos --campaign smoke
    python -m repro.chaos --campaign full --seed 7 --workers 8
    python -m repro.chaos --layers predictor --workloads li com --scale 0.1
    python -m repro.chaos --workloads li --scale 0.05 --seed 1999 \\
        --site 412 --fault bitflip-sf          # reproduce one injection

The predictor layer drives seeded faults into live cloaking state and
checks, against a golden functional run, that committed architectural
state never changes (the paper's Section 3.4 invariant); any violation
prints a minimized repro command.  The trace, store and harness layers
are graceful-degradation drills: corruption must be contained, named and
recovered from, never silently absorbed.  Exit status is non-zero when
any invariant violation or ungraceful degradation was observed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.chaos.campaign import (
    CAMPAIGNS,
    DEFAULT_SEED,
    DrillResult,
    run_drills,
)
from repro.chaos.inject import PREDICTOR_FAULTS
from repro.chaos.oracle import first_violation, run_oracle
from repro.chaos import artefact

LAYERS = ("predictor", "trace", "store", "harness")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                        default="smoke",
                        help="preset scale/injection budget "
                             "(default %(default)s)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="campaign seed (default %(default)s)")
    parser.add_argument("--faults", nargs="*", default=None,
                        metavar="MODEL", choices=PREDICTOR_FAULTS,
                        help="predictor fault models (default: all of "
                             + ", ".join(PREDICTOR_FAULTS) + ")")
    parser.add_argument("--layers", nargs="*", default=None,
                        metavar="LAYER", choices=LAYERS,
                        help="layers to shake (default: all of "
                             + ", ".join(LAYERS) + ")")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: the campaign's)")
    parser.add_argument("--injections", type=int, default=None,
                        help="predictor injection sites per kernel "
                             "(default: the campaign's)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        metavar="ABBREV",
                        help="subset of workload abbreviations")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the predictor layer "
                             "(default %(default)s = inline)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store for the predictor layer "
                             "(default: results/store)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every kernel campaign")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write per-kernel rows as JSON")
    parser.add_argument("--site", type=int, default=None,
                        help="reproduce a single injection at this "
                             "dynamic-instruction site (needs --fault and "
                             "exactly one --workloads entry)")
    parser.add_argument("--fault", default=None, choices=PREDICTOR_FAULTS,
                        help="fault model for --site")
    return parser


def _repro_single(args) -> int:
    """Reproduce one injection exactly as a violation's repro command."""
    from repro.chaos.campaign import fault_seed
    from repro.workloads.suite import get_workload

    if args.fault is None or not args.workloads \
            or len(args.workloads) != 1:
        print("--site needs --fault and exactly one --workloads entry",
              file=sys.stderr)
        return 2
    workload = get_workload(args.workloads[0])
    scale = args.scale if args.scale is not None \
        else CAMPAIGNS[args.campaign].scale
    outcome = run_oracle(
        workload, scale, [(args.site, args.fault)],
        fault_seed(args.seed, workload.abbrev, args.site, args.fault))
    applied = outcome.applied[0] if outcome.applied else None
    print(f"workload:     {workload.abbrev} @ scale {scale:g}")
    print(f"fault:        {args.fault} @ site {args.site}")
    landed = applied.target if applied is not None else None
    print(f"landed on:    {landed or 'no-op (no eligible state at site)'}")
    print(f"instructions: {outcome.instructions}")
    print(f"speculated:   {outcome.speculated} "
          f"({outcome.misspeculated} wrong)")
    violation = first_violation(workload, scale, args.seed, outcome)
    if violation is None:
        print("invariant:    HELD (committed state identical to golden run)")
        return 0
    print(f"invariant:    VIOLATED at {violation.divergence}")
    return 1


def _render_drill(drill: DrillResult) -> List[str]:
    verdict = "ok" if drill.ok else "FAILED"
    lines = [f"{drill.layer:9s} {drill.graceful}/{drill.cases} graceful "
             f"[{verdict}]"]
    lines.extend(f"    {text}" for text in drill.failed)
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.site is not None:
        return _repro_single(args)

    campaign = CAMPAIGNS[args.campaign]
    scale = args.scale if args.scale is not None else campaign.scale
    injections = (args.injections if args.injections is not None
                  else campaign.injections)
    layers = tuple(args.layers) if args.layers else LAYERS

    rows = []
    failures = 0
    if "predictor" in layers:
        from repro.harness.api import run_artefacts
        from repro.harness.store import ResultStore

        params = {"seed": args.seed, "injections": injections}
        if args.faults:
            params["faults"] = tuple(args.faults)
        outcome = run_artefacts(
            [("chaos", scale, params)], args.workloads,
            workers=args.workers, store=ResultStore(args.store),
            use_cache=not args.no_cache, allow_failures=True)
        rows = outcome.runs[0].rows
        print(artefact.render(rows))
        print()
        for label in outcome.runs[0].failed:
            print(f"FAILED chaos/{label} (cell never produced rows)",
                  file=sys.stderr)
        failures += len(outcome.runs[0].failed)
        if args.json:
            from repro.harness.store import write_rows_json

            write_rows_json(args.json, rows)

    drills = run_drills([layer for layer in layers if layer != "predictor"],
                        seed=args.seed)

    print(f"chaos report card (campaign {campaign.name}, seed {args.seed})")
    if "predictor" in layers:
        injected = sum(row.injected for row in rows)
        detected = sum(row.detected for row in rows)
        recovered = sum(row.recovered for row in rows)
        violated = sum(row.violated for row in rows)
        print(f"predictor {injected} injected, {detected} detected, "
              f"{recovered} recovered, {violated} violated")
        failures += violated
    for drill in drills:
        for line in _render_drill(drill):
            print(line)
        failures += len(drill.failed)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
