"""Harness integration: chaos campaigns as a store artefact.

Exposes the uniform experiment interface (``run`` / ``run_one`` /
``render``) so ``python -m repro.harness run chaos`` shakes kernels in
parallel and lands each kernel's report in the content-addressed result
store.  The campaign seed and injection count ride in the job params, so
different campaigns cache as different cells.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chaos.campaign import (
    DEFAULT_SEED,
    ChaosRow,
    run_kernel_campaign,
)
from repro.experiments.report import format_table
from repro.experiments.runner import (
    experiment_parser, maybe_write_json, select_workloads)


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None,
        seed: int = DEFAULT_SEED,
        injections: int = 3,
        faults: Optional[Sequence[str]] = None) -> List[ChaosRow]:
    return [run_kernel_campaign(workload, scale, seed=seed,
                                injections=injections, faults=faults)
            for workload in select_workloads(workloads)]


def run_one(workload: str, scale: float, **kwargs):
    """One (workload, scale) cell of the grid — the harness entry point."""
    return run(scale=scale, workloads=[workload], **kwargs)


def render(rows: List[ChaosRow]) -> str:
    table_rows = [
        [row.abbrev, str(row.instructions), str(row.speculated),
         str(row.misspeculated), str(row.injected), str(row.armed),
         str(row.detected), str(row.recovered), str(row.silent),
         str(row.violated)]
        for row in rows
    ]
    headers = ["Ab.", "insts", "spec", "missp", "inj", "armed",
               "detect", "recover", "silent", "VIOL"]
    lines = [format_table(
        headers, table_rows,
        title="Chaos: predictor fault injection under the differential "
              "oracle")]
    for row in rows:
        lines.extend(f"  {text}" for text in row.violations)
    total_viol = sum(row.violated for row in rows)
    lines.append(f"invariant violations: {total_viol}"
                 + ("" if total_viol else
                    " (committed state never diverged)"))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_parser(__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--injections", type=int, default=3)
    args = parser.parse_args(argv)
    rows = run(scale=args.scale, workloads=args.workloads,
               seed=args.seed, injections=args.injections)
    maybe_write_json(args, rows)
    print(render(rows))
    return 1 if any(row.violated for row in rows) else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
