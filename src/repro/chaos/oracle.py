"""The differential correctness oracle.

The paper's invariant (Section 3.4): cloaking/bypassing is speculative —
every speculatively communicated value is verified against the value the
memory access actually returns, so *no predictor corruption may change
committed architectural state*.  The repo's accuracy and timing models
take this for granted (committed values always come from the functional
interpreter); this module checks it instead.

Two interpreters run in lockstep over the same program:

* the **golden** run executes purely functionally;
* the **speculative** run feeds every committed instruction through a
  live :class:`~repro.core.cloaking.CloakingEngine` (into which seeded
  faults are injected) and lets a *commit rule* decide which value each
  load actually commits.  The committed value is patched back into the
  interpreter's register file, so a wrong value genuinely propagates —
  different operands, different branches, different addresses.

The default commit rule, :func:`verified_commit`, models the paper's
verify-at-commit mechanism: a speculative value is committed only when the
engine verified it equal to the memory value, i.e. it always equals the
true value.  Under it, *any* divergence — in the committed instruction
stream or in final registers/memory — is an invariant violation, reported
with a minimized repro (seed + injection site + first divergent
instruction).  Tests substitute broken commit rules (e.g. "trust the
predictor, skip verification") to prove the oracle catches real
corruption.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.cloaking import CloakingEngine, ObservedAccess
from repro.core.config import CloakingConfig
from repro.isa.interpreter import Interpreter
from repro.isa.registers import ZERO_REG
from repro.chaos.inject import PredictorInjector
from repro.trace.records import DynInst

#: bump when the oracle's comparison semantics change (part of the
#: harness cache identity for the chaos artefact)
ORACLE_VERSION = 1

#: a commit rule: (engine's view of the load, true memory value) -> the
#: value that reaches architectural state
CommitRule = Callable[[Optional[ObservedAccess], object], object]


def verified_commit(observed: Optional[ObservedAccess],
                    true_value: object) -> object:
    """The paper's mechanism: speculation survives only if verified correct.

    The speculative value is committed exactly when the engine compared it
    against the memory value and found them equal — so the committed value
    always equals ``true_value``, whatever state the predictor is in.
    """
    if (observed is not None and observed.outcome.speculated
            and observed.outcome.correct):
        return observed.spec_value
    return true_value


@dataclass
class Divergence:
    """The first point where the speculative run left the golden run."""

    index: int
    field: str
    expected: object
    actual: object
    pc: Optional[int] = None

    def __str__(self) -> str:
        where = f"#{self.index}"
        if self.pc is not None:
            where += f" pc={self.pc:#x}"
        return (f"{where} {self.field}: expected {self.expected!r}, "
                f"got {self.actual!r}")


@dataclass
class Violation:
    """An invariant violation with everything needed to reproduce it."""

    workload: str
    scale: float
    seed: int
    model: str
    site: int
    target: Optional[str]
    divergence: Divergence

    def repro_command(self) -> str:
        return (f"python -m repro.chaos --workloads {self.workload}"
                f" --scale {self.scale} --seed {self.seed}"
                f" --site {self.site} --fault {self.model}")

    def __str__(self) -> str:
        return (f"{self.workload}: {self.model}@{self.site}"
                f" ({self.target or 'no-op'}) diverged at {self.divergence}"
                f"\n  repro: {self.repro_command()}")


@dataclass
class OracleOutcome:
    """One oracle run: a fault plan executed under a commit rule."""

    workload: str
    instructions: int = 0
    loads: int = 0
    speculated: int = 0
    misspeculated: int = 0
    applied: list = field(default_factory=list)
    divergence: Optional[Divergence] = None

    @property
    def violated(self) -> bool:
        return self.divergence is not None


def _compare(golden: Optional[DynInst], actual: Optional[DynInst]
             ) -> Optional[Divergence]:
    """First field-level difference between two committed records."""
    if golden is None:
        return Divergence(actual.index, "stream-length", "halt",
                          f"extra {actual.opclass.name}", actual.pc)
    if actual is None:
        return Divergence(golden.index, "stream-length",
                          f"{golden.opclass.name}", "halt", golden.pc)
    if actual.pc != golden.pc:
        return Divergence(golden.index, "pc", golden.pc, actual.pc,
                          golden.pc)
    if actual.opclass != golden.opclass:
        return Divergence(golden.index, "opclass", golden.opclass.name,
                          actual.opclass.name, golden.pc)
    if golden.is_mem:
        for name in ("addr", "size", "value"):
            expected, got = getattr(golden, name), getattr(actual, name)
            if got != expected:
                return Divergence(golden.index, name, expected, got,
                                  golden.pc)
    elif golden.is_control:
        for name in ("taken", "target_pc"):
            expected, got = getattr(golden, name), getattr(actual, name)
            if got != expected:
                return Divergence(golden.index, name, expected, got,
                                  golden.pc)
    return None


def _final_state_divergence(golden: Interpreter, speculative: Interpreter
                            ) -> Optional[Divergence]:
    """Compare final architectural state (registers + memory)."""
    for reg, expected in enumerate(golden.registers):
        if reg == ZERO_REG:
            continue
        got = speculative.registers[reg]
        if got != expected:
            return Divergence(speculative.executed, f"final r{reg}",
                              expected, got)
    words = set(golden.memory) | set(speculative.memory)
    for word in sorted(words):
        expected = golden.memory.get(word, 0)
        got = speculative.memory.get(word, 0)
        if got != expected:
            return Divergence(speculative.executed,
                              f"final mem[{word * 4:#x}]", expected, got)
    return None


def run_oracle(
    workload,
    scale: float,
    plans: Sequence[Tuple[int, str]],
    fault_seed: int,
    *,
    engine_config: Optional[CloakingConfig] = None,
    commit_rule: CommitRule = verified_commit,
    max_instructions: Optional[int] = None,
    pre_observe: Optional[Callable[[DynInst, CloakingEngine], None]] = None,
) -> OracleOutcome:
    """Execute one fault plan under the differential oracle.

    ``plans`` is a sequence of ``(site, model)`` predictor faults (usually
    a single fault, which makes the repro minimal by construction);
    ``fault_seed`` fixes every random choice the injectors make.
    ``pre_observe`` runs before every instruction reaches the engine — an
    adversarial tap for tests that want to corrupt *continuously* (e.g.
    poison every SF entry so every used prediction is wrong) rather than
    at seeded sites.  Returns an :class:`OracleOutcome` whose
    ``divergence`` is ``None`` exactly when the speculative run committed
    the same instruction stream and final state as the golden run.
    """
    program = workload.program(scale)
    golden = Interpreter(program, max_instructions=max_instructions)
    speculative = Interpreter(program, max_instructions=max_instructions)
    engine = CloakingEngine(engine_config if engine_config is not None
                            else CloakingConfig.paper_accuracy())
    injector = PredictorInjector(plans, fault_seed)

    outcome = OracleOutcome(workload.abbrev)

    def speculative_stream():
        for inst in speculative.run():
            injector.maybe_inject(inst.index, engine)
            if pre_observe is not None:
                pre_observe(inst, engine)
            observed = engine.observe_timing(inst)
            if inst.is_load:
                outcome.loads += 1
                if observed is not None and observed.outcome.speculated:
                    outcome.speculated += 1
                    if not observed.outcome.correct:
                        outcome.misspeculated += 1
                committed = commit_rule(observed, inst.value)
                if committed != inst.value:
                    # The wrong value reaches architectural state: patch
                    # the live register file so it propagates, and the
                    # committed record so the stream diff sees it.
                    if inst.rd is not None and inst.rd != ZERO_REG:
                        speculative.registers[inst.rd] = committed
                    inst.value = committed
            yield inst

    for golden_inst, actual_inst in itertools.zip_longest(
            golden.run(), speculative_stream()):
        outcome.instructions += 1
        divergence = _compare(golden_inst, actual_inst)
        if divergence is not None:
            outcome.divergence = divergence
            break

    outcome.applied = list(injector.applied)
    if outcome.divergence is None:
        outcome.divergence = _final_state_divergence(golden, speculative)
    return outcome


def first_violation(
    workload, scale: float, seed: int, outcome: OracleOutcome
) -> Optional[Violation]:
    """Package an oracle outcome as a :class:`Violation` (or ``None``)."""
    if outcome.divergence is None:
        return None
    applied = outcome.applied[0] if outcome.applied else None
    return Violation(
        workload=workload.abbrev,
        scale=scale,
        seed=seed,
        model=applied.model if applied else "none",
        site=applied.site if applied else -1,
        target=applied.target if applied else None,
        divergence=outcome.divergence,
    )
