"""Seeded chaos campaigns over the kernel suite, plus layer drills.

A campaign runs the differential oracle (:mod:`repro.chaos.oracle`) for a
grid of single-fault plans — ``injections`` seeded sites × the predictor
fault models — on every selected kernel, and classifies each run:

* **armed**: the fault found eligible state to corrupt (an empty SF has
  no bits to flip — such no-op applications count as *unarmed*);
* **detected**: the corruption surfaced as extra verification failures
  relative to an uninjected run of the same kernel;
* **recovered**: detected, and committed state still matched the golden
  run (the paper's invariant held);
* **silent**: armed but never consumed — the corrupted entry was
  overwritten or evicted before any load used it (also invariant-safe);
* **violated**: committed state diverged — the invariant is broken, and
  the row carries a minimized repro.

Everything is derived from one campaign seed via stable hashing, so a
report is exactly reproducible from ``(seed, scale, injections)`` and a
single violation from its printed repro command.

The layer drills exercise graceful degradation outside the predictor:
corrupt store objects must quarantine-and-recompute, truncated traces
must fail loudly (or salvage cleanly), and sabotaged harness workers must
not take the sweep down.
"""

from __future__ import annotations

import io
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chaos.inject import (
    PREDICTOR_FAULTS,
    STORE_FAULTS,
    TRACE_FAULTS,
    corrupt_store_object,
    corrupt_trace_text,
    worker_saboteur,
)
from repro.chaos.oracle import first_violation, run_oracle, verified_commit
from repro.core.cloaking import CloakingEngine
from repro.core.config import CloakingConfig
from repro.util.hashing import stable_hash

#: default campaign seed (the paper under reproduction appeared in 1999)
DEFAULT_SEED = 1999


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign preset: how hard to shake each kernel."""

    name: str
    scale: float
    injections: int


CAMPAIGNS = {
    "smoke": CampaignSpec("smoke", scale=0.05, injections=3),
    "full": CampaignSpec("full", scale=0.25, injections=8),
}


@dataclass
class ChaosRow:
    """One kernel's campaign outcome (store/JSON serializable)."""

    abbrev: str
    category: str
    scale: float
    seed: int
    instructions: int
    loads: int
    speculated: int
    misspeculated: int
    injected: int
    armed: int
    detected: int
    recovered: int
    silent: int
    unarmed: int
    violations: List[str] = field(default_factory=list)

    @property
    def violated(self) -> int:
        return len(self.violations)


def kernel_seed(seed: int, abbrev: str) -> int:
    """The per-kernel site-selection seed."""
    return int(stable_hash((seed, abbrev, "sites"), length=8), 16)


def fault_seed(seed: int, abbrev: str, site: int, model: str) -> int:
    """The seed fixing one fault application's random choices."""
    return int(stable_hash((seed, abbrev, site, model), length=8), 16)


def plan_sites(seed: int, abbrev: str, instructions: int,
               injections: int) -> List[int]:
    """Seeded injection sites for one kernel (dynamic indices)."""
    if instructions < 2:
        return []
    rng = random.Random(kernel_seed(seed, abbrev))
    population = range(1, instructions)
    count = min(injections, len(population))
    return sorted(rng.sample(population, count))


def run_kernel_campaign(
    workload,
    scale: float,
    seed: int = DEFAULT_SEED,
    injections: int = 3,
    faults: Optional[Sequence[str]] = None,
    commit_rule: Callable = verified_commit,
) -> ChaosRow:
    """Shake one kernel: every fault model at every seeded site."""
    models = tuple(faults) if faults else PREDICTOR_FAULTS

    # Natural (uninjected) pass: the misspeculation baseline.  An injected
    # run is bit-identical up to its site, so a fault was *detected* by
    # verification exactly when its run's total wrong count exceeds this.
    engine = CloakingEngine(CloakingConfig.paper_accuracy())
    instructions = loads = 0
    for inst in workload.trace(scale):
        engine.observe(inst)
        instructions += 1
        if inst.is_load:
            loads += 1
    natural_wrong = engine.stats.wrong_raw + engine.stats.wrong_rar
    natural_spec = natural_wrong + engine.stats.correct_raw \
        + engine.stats.correct_rar

    row = ChaosRow(
        abbrev=workload.abbrev, category=workload.category, scale=scale,
        seed=seed, instructions=instructions, loads=loads,
        speculated=natural_spec, misspeculated=natural_wrong,
        injected=0, armed=0, detected=0, recovered=0, silent=0, unarmed=0)

    for site in plan_sites(seed, workload.abbrev, instructions, injections):
        for model in models:
            row.injected += 1
            outcome = run_oracle(
                workload, scale, [(site, model)],
                fault_seed(seed, workload.abbrev, site, model),
                commit_rule=commit_rule)
            # A divergence is a violation no matter how far the run got —
            # a broken mechanism can diverge before the fault even fires.
            violation = first_violation(workload, scale, seed, outcome)
            if violation is not None:
                row.violations.append(str(violation))
            applied = outcome.applied[0] if outcome.applied else None
            if applied is None or applied.target is None:
                row.unarmed += 1
                continue
            row.armed += 1
            if violation is not None:
                continue
            if outcome.misspeculated > natural_wrong:
                row.detected += 1
                row.recovered += 1
            else:
                row.silent += 1
    return row


# ---------------------------------------------------------------------------
# layer drills: graceful degradation outside the predictor


@dataclass
class DrillResult:
    """One layer drill: cases exercised and how many degraded gracefully."""

    layer: str
    cases: int
    graceful: int
    failed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed


def trace_drill(seed: int = DEFAULT_SEED) -> DrillResult:
    """Corrupted trace streams must raise with a line number, or salvage."""
    from repro.trace.serialize import (
        TraceFormatError, read_trace, write_trace)
    from repro.workloads.suite import get_workload

    workload = get_workload("li")
    buffer = io.StringIO()
    total = write_trace(workload.trace(0.05, max_instructions=400), buffer,
                        name="chaos-drill")
    clean_text = buffer.getvalue()
    rng = random.Random(seed)
    result = DrillResult("trace", cases=0, graceful=0)

    for model in TRACE_FAULTS:
        corrupted = corrupt_trace_text(clean_text, model, rng)
        # Strict read: a clean parse or a located TraceFormatError —
        # anything else (a crash, an unlocated error) is a failure.
        result.cases += 1
        try:
            strict = sum(1 for _ in read_trace(io.StringIO(corrupted)))
        except TraceFormatError as exc:
            if "line " in str(exc):
                result.graceful += 1
            else:
                result.failed.append(f"{model}: unlocated error: {exc}")
        except Exception as exc:  # noqa: BLE001 - drill verdict, not flow
            result.failed.append(
                f"{model}: {type(exc).__name__}: {exc}")
        else:
            if strict <= total + 1:  # duplicate-record adds one
                result.graceful += 1
            else:
                result.failed.append(f"{model}: parsed {strict} records")
        # Salvage read: must never raise, never over-read.
        result.cases += 1
        try:
            salvaged = sum(
                1 for _ in read_trace(io.StringIO(corrupted), salvage=True))
        except Exception as exc:  # noqa: BLE001
            result.failed.append(
                f"{model} salvage: {type(exc).__name__}: {exc}")
        else:
            if salvaged <= total + 1:
                result.graceful += 1
            else:
                result.failed.append(
                    f"{model} salvage: yielded {salvaged} records")
    return result


def store_drill(seed: int = DEFAULT_SEED,
                root: Optional[Path] = None) -> DrillResult:
    """Corrupt store objects must quarantine, miss, and recompute."""
    from repro.harness.jobs import make_job
    from repro.harness.store import ResultStore

    rng = random.Random(seed)
    result = DrillResult("store", cases=0, graceful=0)
    rows = [ChaosRow(
        abbrev="li", category="int", scale=0.05, seed=seed,
        instructions=100, loads=10, speculated=5, misspeculated=0,
        injected=0, armed=0, detected=0, recovered=0, silent=0, unarmed=0)]

    with tempfile.TemporaryDirectory(prefix="chaos-store-") as tmp:
        store = ResultStore(root if root is not None else Path(tmp))
        for case, model in enumerate(STORE_FAULTS):
            # A distinct cell per fault model, so each quarantine is a
            # fresh file (re-quarantining one key overwrites in place).
            spec = make_job("analysis", "li", 0.05 + case * 0.01)
            key = store.key_for(spec)
            result.cases += 1
            store.put(key, spec, rows)
            path = store._object_path(key)
            detail = corrupt_store_object(path, model, rng)
            before = len(store.quarantined())
            try:
                got = store.get(key)
            except Exception as exc:  # noqa: BLE001 - drill verdict
                result.failed.append(
                    f"{model}: get raised {type(exc).__name__}: {exc}")
                continue
            quarantined = len(store.quarantined()) > before
            if got is not None:
                result.failed.append(
                    f"{model}: served corrupt rows ({detail})")
            elif not quarantined:
                result.failed.append(
                    f"{model}: miss without quarantine ({detail})")
            else:
                # Recompute must land cleanly after the quarantine.
                store.put(key, spec, rows)
                if store.get(key):
                    result.graceful += 1
                else:
                    result.failed.append(
                        f"{model}: store unusable after quarantine")
    return result


def harness_drill(seed: int = DEFAULT_SEED,
                  timeout: float = 2.0) -> DrillResult:
    """Sabotaged workers must fail their own cell and nothing else."""
    from repro.harness.jobs import make_job, set_injection_hook
    from repro.harness.manifest import STATUS_COMPUTED, STATUS_FAILED
    from repro.harness.scheduler import Scheduler

    sabotage = {"li": "crash", "com": "hang", "go": "slow-start"}
    expectations = {
        "li": ("worker died", STATUS_FAILED),
        "com": ("timed out", STATUS_FAILED),
        "go": ("", STATUS_COMPUTED),
    }
    jobs = [make_job("analysis", abbrev, 0.05) for abbrev in sabotage]
    scheduler = Scheduler(workers=2, timeout=timeout, retries=0,
                          term_grace=0.3, retry_backoff=0.0)
    previous = set_injection_hook(worker_saboteur(sabotage, delay=0.2))
    try:
        run = scheduler.run(jobs, store=None)
    finally:
        set_injection_hook(previous)

    result = DrillResult("harness", cases=0, graceful=0)
    records = {record.workload: record for record in run.manifest.jobs}
    for abbrev, (needle, status) in expectations.items():
        result.cases += 1
        record = records.get(abbrev)
        if record is None:
            result.failed.append(f"{abbrev}: no record")
        elif record.status != status:
            result.failed.append(
                f"{abbrev}: status {record.status!r}, expected {status!r}"
                f" ({(record.error or '').strip().splitlines()[-1:]})")
        elif needle and needle not in (record.error or ""):
            result.failed.append(
                f"{abbrev}: error {record.error!r} lacks {needle!r}")
        else:
            result.graceful += 1
    return result


def run_drills(layers: Sequence[str],
               seed: int = DEFAULT_SEED) -> List[DrillResult]:
    """Run the selected layer drills in a stable order."""
    drills = {"trace": trace_drill, "store": store_drill,
              "harness": harness_drill}
    unknown = [layer for layer in layers if layer not in drills]
    if unknown:
        raise ValueError(f"unknown drill layers: {', '.join(unknown)}; "
                         f"known: {', '.join(drills)}")
    return [drills[layer](seed) for layer in drills if layer in layers]
