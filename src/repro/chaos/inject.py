"""Deterministic, seeded fault models for every layer of the system.

All injectors draw from a caller-supplied :class:`random.Random`, so a
campaign seed fully determines which structure is hit, which bit flips,
and which record is garbled — the property that makes a violation's
``(seed, site, model)`` triple a complete repro.

Four fault families:

* **predictor** — corrupt live cloaking state on a running
  :class:`~repro.core.cloaking.CloakingEngine` (the differential oracle's
  target layer);
* **trace** — perturb a serialized trace stream (drop / duplicate /
  truncate / garble records);
* **store** — damage a result-store object file (truncation, bit rot,
  schema drift);
* **worker** — sabotage harness workers (crash / hang / slow-start) via
  the :func:`repro.harness.jobs.set_injection_hook` seam.
"""

from __future__ import annotations

import os
import random
import signal
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.core.cloaking import CloakingEngine

#: predictor-layer fault models (the differential oracle's injection set)
PREDICTOR_FAULTS = (
    "bitflip-sf",        # flip one bit of a full Synonym File value
    "stale-sf",          # overwrite an SF entry with a stale sentinel value
    "synonym-alias",     # alias one DPNT entry onto another group's synonym
    "confidence-force",  # saturate a consumer confidence automaton
)

#: trace-layer fault models
TRACE_FAULTS = (
    "truncate-mid-record",  # cut a record line in half, drop the rest
    "wrong-field-count",    # append a stray token to a record
    "garble-value",         # replace a value token with junk
    "drop-record",          # delete one record line
    "duplicate-record",     # repeat one record line
)

#: store-layer fault models
STORE_FAULTS = (
    "truncate",      # keep only the first half of the object file
    "bitrot",        # flip a bit in the object's first byte
    "schema-drift",  # rename the row_type key (an incompatible writer)
)

#: worker-layer fault modes accepted by :func:`worker_saboteur`
WORKER_FAULTS = ("crash", "hang", "slow-start")

#: the value a stale-sf fault plants (recognizably synthetic, and very
#: unlikely to match any kernel's data — so the fault is observable)
STALE_SENTINEL = 0x5EEDFACE


# ---------------------------------------------------------------------------
# predictor-layer injection


@dataclass
class AppliedFault:
    """One fault application, as it actually landed.

    ``target`` describes the corrupted structure (``None`` when no
    eligible state existed yet — the fault was a no-op); ``wrong_before``
    snapshots the engine's misspeculation count at the moment of
    injection, for detection attribution.
    """

    site: int
    model: str
    target: Optional[str]
    wrong_before: int = 0


def _wrong_count(engine: CloakingEngine) -> int:
    return engine.stats.wrong_raw + engine.stats.wrong_rar


def _flip_float_bit(value: float, bit: int) -> float:
    bits = struct.unpack("<Q", struct.pack("<d", value))[0]
    return struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))[0]


def _apply_bitflip_sf(engine: CloakingEngine, rng: random.Random
                      ) -> Optional[str]:
    full = [(syn, e) for syn, e in engine.sf.entries() if e.full]
    if not full:
        return None
    synonym, entry = rng.choice(full)
    if isinstance(entry.value, float):
        bit = rng.randrange(64)
        entry.value = _flip_float_bit(entry.value, bit)
        return f"sf[{synonym}] float bit {bit}"
    if isinstance(entry.value, int):
        bit = rng.randrange(32)
        entry.value ^= 1 << bit
        return f"sf[{synonym}] int bit {bit}"
    return None


def _apply_stale_sf(engine: CloakingEngine, rng: random.Random
                    ) -> Optional[str]:
    entries = list(engine.sf.entries())
    if entries:
        synonym, entry = rng.choice(entries)
        entry.fill(STALE_SENTINEL, from_store=entry.from_store,
                   size=entry.size)
        return f"sf[{synonym}] <- stale {STALE_SENTINEL:#x}"
    named = list(engine.dpnt.entries())
    if not named:
        return None
    _, dpnt_entry = rng.choice(named)
    engine.sf.deposit(dpnt_entry.synonym, STALE_SENTINEL, from_store=False)
    return f"sf[{dpnt_entry.synonym}] <- stale {STALE_SENTINEL:#x} (fresh)"


def _apply_synonym_alias(engine: CloakingEngine, rng: random.Random
                         ) -> Optional[str]:
    entries = list(engine.dpnt.entries())
    groups = {e.synonym for _, e in entries}
    if len(groups) < 2:
        return None
    (pc_a, a), (pc_b, b) = rng.sample(entries, 2)
    if a.synonym == b.synonym:
        others = [(pc, e) for pc, e in entries if e.synonym != a.synonym]
        pc_b, b = rng.choice(others)
    old = b.synonym
    b.synonym = a.synonym
    return f"dpnt[{pc_b:#x}] synonym {old} -> {a.synonym} (alias {pc_a:#x})"


def _apply_confidence_force(engine: CloakingEngine, rng: random.Random
                            ) -> Optional[str]:
    entries = list(engine.dpnt.entries())
    if not entries:
        return None
    pc, entry = rng.choice(entries)
    confidence = engine.dpnt.mark_consumer(entry)
    # Deliberately reach into the automaton: chaos corrupts internal
    # state the public interface would never produce on its own.
    confidence.value = confidence._MAX
    return f"dpnt[{pc:#x}] consumer confidence forced to {confidence.value}"


_PREDICTOR_APPLIERS = {
    "bitflip-sf": _apply_bitflip_sf,
    "stale-sf": _apply_stale_sf,
    "synonym-alias": _apply_synonym_alias,
    "confidence-force": _apply_confidence_force,
}


class PredictorInjector:
    """Applies planned faults to a live engine at dynamic-instruction sites.

    ``plans`` is a sequence of ``(site, model)`` pairs; each fault fires
    immediately before the instruction with that dynamic index is
    observed.  ``applied`` records what actually happened.
    """

    def __init__(self, plans: Sequence[Tuple[int, str]], seed: int) -> None:
        for _, model in plans:
            if model not in _PREDICTOR_APPLIERS:
                known = ", ".join(PREDICTOR_FAULTS)
                raise ValueError(
                    f"unknown predictor fault {model!r}; known: {known}")
        self._plans = sorted(plans)
        self._rng = random.Random(seed)
        self._position = 0
        self.applied: List[AppliedFault] = []

    def maybe_inject(self, index: int, engine: CloakingEngine) -> None:
        """Fire every plan whose site has been reached."""
        while (self._position < len(self._plans)
               and self._plans[self._position][0] <= index):
            site, model = self._plans[self._position]
            self._position += 1
            wrong_before = _wrong_count(engine)
            target = _PREDICTOR_APPLIERS[model](engine, self._rng)
            self.applied.append(
                AppliedFault(site, model, target, wrong_before))


def apply_predictor_fault(engine: CloakingEngine, model: str,
                          seed: int) -> AppliedFault:
    """Apply one predictor fault to a live engine right now.

    The one-shot form of :class:`PredictorInjector` for callers that do
    not walk a trace by index — the serving layer (:mod:`repro.serve`)
    uses it to corrupt a session's predictor shard mid-stream during
    chaos soak drills.  Returns the :class:`AppliedFault` (``target`` is
    ``None`` when no eligible state existed yet).
    """
    injector = PredictorInjector([(0, model)], seed)
    injector.maybe_inject(0, engine)
    return injector.applied[0]


# ---------------------------------------------------------------------------
# trace-layer injection


def _record_line_indices(lines: Sequence[str]) -> List[int]:
    return [i for i, line in enumerate(lines) if line.startswith("R ")]


def corrupt_trace_text(text: str, model: str, rng: random.Random) -> str:
    """Apply one trace fault model to serialized trace text."""
    lines = text.splitlines()
    records = _record_line_indices(lines)
    if not records:
        raise ValueError("trace has no record lines to corrupt")
    victim = rng.choice(records)
    if model == "truncate-mid-record":
        tokens = lines[victim].split()
        lines[victim] = " ".join(tokens[:max(1, len(tokens) // 2)])
        lines = lines[:victim + 1]
    elif model == "wrong-field-count":
        lines[victim] += " 999"
    elif model == "garble-value":
        tokens = lines[victim].split()
        tokens[-1] = "q77"
        lines[victim] = " ".join(tokens)
    elif model == "drop-record":
        del lines[victim]
    elif model == "duplicate-record":
        lines.insert(victim, lines[victim])
    else:
        known = ", ".join(TRACE_FAULTS)
        raise ValueError(f"unknown trace fault {model!r}; known: {known}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# store-layer injection


def corrupt_store_object(path: Path, model: str, rng: random.Random) -> str:
    """Damage one result-store object file in place; returns a detail."""
    data = path.read_bytes()
    if model == "truncate":
        path.write_bytes(data[:len(data) // 2])
        return f"truncated {len(data)} -> {len(data) // 2} bytes"
    if model == "bitrot":
        # Flip a bit of the opening brace so the damage is structural:
        # JSON can no longer parse, which is what the quarantine path
        # must catch (a flipped digit would be silent corruption — that
        # failure mode needs content checksums, out of scope here).
        bit = rng.randrange(8)
        path.write_bytes(bytes([data[0] ^ (1 << bit)]) + data[1:])
        return f"flipped bit {bit} of byte 0"
    if model == "schema-drift":
        text = data.decode("utf-8").replace('"row_type"', '"rowType"', 1)
        path.write_text(text, encoding="utf-8")
        return "renamed row_type key"
    known = ", ".join(STORE_FAULTS)
    raise ValueError(f"unknown store fault {model!r}; known: {known}")


# ---------------------------------------------------------------------------
# worker-layer injection


def worker_saboteur(faults: Mapping[str, str],
                    delay: float = 0.3) -> Callable:
    """An ``execute_job`` hook mapping workload abbreviations to sabotage.

    ``crash`` hard-exits the worker, ``hang`` ignores SIGTERM and sleeps
    (provoking the scheduler's SIGKILL escalation), ``slow-start`` sleeps
    ``delay`` seconds then proceeds normally.  Install with
    :func:`repro.harness.jobs.set_injection_hook`; fork workers inherit it.
    """
    for mode in faults.values():
        if mode not in WORKER_FAULTS:
            known = ", ".join(WORKER_FAULTS)
            raise ValueError(f"unknown worker fault {mode!r}; known: {known}")

    def hook(spec) -> None:
        mode = faults.get(spec.workload)
        if mode == "crash":
            os._exit(23)
        elif mode == "hang":
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(3600)
        elif mode == "slow-start":
            time.sleep(delay)

    return hook
