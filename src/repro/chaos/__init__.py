"""Fault injection with a differential correctness oracle.

The paper's central correctness claim (Section 3.4) is that cloaking and
bypassing are *speculative*: a mispredicted RAR/RAW link is always caught
by the verifying load, so committed architectural state is identical to
non-speculative execution no matter how wrong the predictor is.  This
package attacks that claim instead of assuming it:

* :mod:`repro.chaos.inject` — deterministic, seeded fault models that
  corrupt live predictor state (SF bit flips, stale values, synonym
  aliasing, forced confidence), perturb serialized trace streams, damage
  result-store objects, and sabotage harness workers.
* :mod:`repro.chaos.oracle` — a differential oracle that runs two
  interpreters in lockstep: a golden functional run, and a speculative
  run whose commit path goes through the cloaking engine's verification
  (speculatively committed values are fed back into the register file).
  Any divergence in the committed value stream, control flow or final
  architectural state is an invariant violation with a minimized repro.
* :mod:`repro.chaos.campaign` — seeded campaigns over the whole kernel
  suite plus graceful-degradation drills for the trace, store and
  harness layers, runnable as ``python -m repro.chaos`` and registered
  as the harness artefact ``chaos``.

See docs/chaos.md for the fault models, the invariant, and how to
reproduce a violation from a seed.
"""

from repro.chaos.inject import (
    PREDICTOR_FAULTS,
    STORE_FAULTS,
    TRACE_FAULTS,
    WORKER_FAULTS,
    AppliedFault,
    PredictorInjector,
    apply_predictor_fault,
    corrupt_store_object,
    corrupt_trace_text,
    worker_saboteur,
)
from repro.chaos.oracle import (
    ORACLE_VERSION,
    Divergence,
    OracleOutcome,
    Violation,
    first_violation,
    run_oracle,
    verified_commit,
)
from repro.chaos.campaign import (
    CAMPAIGNS,
    DEFAULT_SEED,
    CampaignSpec,
    ChaosRow,
    DrillResult,
    harness_drill,
    run_drills,
    run_kernel_campaign,
    store_drill,
    trace_drill,
)

__all__ = [
    "AppliedFault",
    "CAMPAIGNS",
    "CampaignSpec",
    "ChaosRow",
    "DEFAULT_SEED",
    "Divergence",
    "DrillResult",
    "ORACLE_VERSION",
    "OracleOutcome",
    "PREDICTOR_FAULTS",
    "PredictorInjector",
    "STORE_FAULTS",
    "TRACE_FAULTS",
    "Violation",
    "WORKER_FAULTS",
    "apply_predictor_fault",
    "corrupt_store_object",
    "corrupt_trace_text",
    "first_violation",
    "harness_drill",
    "run_drills",
    "run_kernel_campaign",
    "run_oracle",
    "store_drill",
    "trace_drill",
    "verified_commit",
    "worker_saboteur",
]
