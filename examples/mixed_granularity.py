"""Cross-size memory communication: the paper's data-type caveat.

Section 5.1: "we did not provide explicit support for dependences between
instructions that access different data types as such dependences are rare
in the SPEC95 benchmarks.  This might not be the case for other programs."

This example builds such a program — a packet parser that *stores words*
and *loads bytes* out of them (network-header style) — and shows what
happens to cloaking with and without the repository's size-mismatch
extension (``CloakingConfig.check_size_mismatch``).

Run:  python examples/mixed_granularity.py
"""

from repro.core import CloakingConfig, CloakingEngine, CloakingMode
from repro.dependence.ddt import DDTConfig
from repro.isa import Interpreter, assemble

SOURCE = """
.data
packets: .space 64          # 64 words of packet buffer
checks:  .word 0

.text
main:   li   r20, 400             # packets to process
        la   r1, packets
pkt:    # "receive": write a 3-word header as words
        andi r2, r20, 15
        sll  r2, r2, 4            # slot offset (16 bytes)
        add  r3, r2, r1
        sll  r4, r20, 8
        ori  r4, r4, 17           # version/flags byte in the low bits
        sw   r4, 0(r3)
        addi r5, r20, 1500
        sw   r5, 4(r3)
        sw   r20, 8(r3)
        # "parse": read individual header FIELDS as bytes/halfwords
        lbu  r6, 0(r3)            # version byte   <- word store (cross-size)
        lbu  r7, 1(r3)            # flags byte     <- word store (cross-size)
        lhu  r8, 4(r3)            # length halfword<- word store (cross-size)
        lw   r9, 8(r3)            # sequence word  <- word store (same size)
        add  r10, r6, r7
        add  r10, r10, r8
        add  r10, r10, r9
        la   r11, checks
        lw   r12, 0(r11)
        add  r12, r12, r10
        sw   r12, 0(r11)
        addi r20, r20, -1
        bgtz r20, pkt
        halt
"""


def run(check_size_mismatch: bool):
    engine = CloakingEngine(CloakingConfig(
        mode=CloakingMode.RAW_RAR, ddt=DDTConfig(size=128),
        dpnt_entries=None, sf_entries=None,
        check_size_mismatch=check_size_mismatch))
    program = assemble(SOURCE, name="packets")
    return engine.run(Interpreter(program).run())


def main() -> None:
    plain = run(check_size_mismatch=False)
    guarded = run(check_size_mismatch=True)

    print("Packet parser: word stores communicate to byte/halfword loads\n")
    print(f"{'':28s}{'paper default':>15s}{'size-checked':>15s}")
    print(f"{'coverage':28s}{plain.coverage:>14.1%} {guarded.coverage:>14.1%}")
    print(f"{'misspeculation rate':28s}{plain.misspeculation_rate:>14.2%} "
          f"{guarded.misspeculation_rate:>14.2%}")
    print()
    print("Verification is value-based, so cross-size pairs whose numeric")
    print("values coincide still verify correct: the halfword 'length'")
    print("field equals its whole stored word (lengths < 65536), and the")
    print("low 'version' byte is a constant — the unguarded mechanism keeps")
    print("that accidental coverage, paying occasional misspeculations on")
    print("fields whose containing word differs (the 2-bit automaton then")
    print("shuts them off).  The size check is the conservative variant the")
    print("original proposal sketched: it abstains on every cross-size")
    print("pair, trading that residual coverage for a zero cross-size")
    print("misspeculation risk.")


if __name__ == "__main__":
    main()
