"""End-to-end timing: a cloaked out-of-order core vs the base machine.

Runs the cycle-level model (Section 5.6 configuration) on two workloads
with every combination of cloaking mode and misspeculation recovery, and
prints the Figure 9-style speedups.

Run:  python examples/pipeline_speedup.py [scale]
"""

import sys

from repro import (
    CloakedProcessor,
    CloakingConfig,
    CloakingMode,
    Processor,
    RecoveryPolicy,
    get_workload,
)

WORKLOADS = ("com", "gcc")


def simulate(name: str, scale: float) -> None:
    workload = get_workload(name)
    configs = {
        "selective RAW": (CloakingMode.RAW, RecoveryPolicy.SELECTIVE),
        "selective RAW+RAR": (CloakingMode.RAW_RAR, RecoveryPolicy.SELECTIVE),
        "squash RAW+RAR": (CloakingMode.RAW_RAR, RecoveryPolicy.SQUASH),
        "oracle RAW+RAR": (CloakingMode.RAW_RAR, RecoveryPolicy.ORACLE),
    }
    base = Processor()
    machines = {
        label: CloakedProcessor(
            cloaking=CloakingConfig.paper_timing(mode), recovery=recovery)
        for label, (mode, recovery) in configs.items()
    }

    # one interpreter pass drives every machine
    for inst in workload.trace(scale=scale):
        base.feed(inst)
        for machine in machines.values():
            machine.feed(inst)

    base_result = base.finalize(name)
    print(f"{workload.spec_name}: base IPC {base_result.ipc:.2f}, "
          f"{base_result.cycles:,} cycles")
    for label, machine in machines.items():
        result = machine.finalize(name)
        speedup = result.speedup_over(base_result)
        stats = machine.engine.stats
        print(f"  {label:20s} {speedup - 1:+7.2%}  "
              f"(coverage {stats.coverage:5.1%}, "
              f"misspec {stats.misspeculation_rate:.2%})")
    print()


def main(scale: float = 0.1) -> None:
    for name in WORKLOADS:
        simulate(name, scale)
    print("Selective invalidation re-executes only dependents of a wrong")
    print("value; squash refetches everything after it — which is why the")
    print("paper (and this model) find selective recovery essential.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
