"""The paper's motivating example (Figure 3): linked-list data sharing.

Uses the suite's ``li`` workload — a list interpreter where ``foo`` and
``bar`` both read each node — to show, side by side:

1. the regularity of its RAR dependence stream (Figure 2's locality
   metric),
2. what the original RAW-only cloaking covers,
3. what the RAR extension adds.

Run:  python examples/linked_list_sharing.py [scale]
"""

import sys

from repro import CloakingConfig, CloakingEngine, CloakingMode, get_workload
from repro.dependence.locality import RARLocalityAnalysis


def main(scale: float = 0.2) -> None:
    workload = get_workload("li")
    print(f"workload: {workload.spec_name} - {workload.description}\n")

    locality = RARLocalityAnalysis(max_n=4)
    raw_only = CloakingEngine(CloakingConfig.paper_accuracy(CloakingMode.RAW))
    combined = CloakingEngine(CloakingConfig.paper_accuracy(CloakingMode.RAW_RAR))

    for inst in workload.trace(scale=scale):
        locality.observe(inst)
        raw_only.observe(inst)
        combined.observe(inst)

    print("RAR memory dependence locality (Figure 2 metric):")
    for n in range(1, 5):
        print(f"  within last {n} unique dependence(s): {locality.locality(n):.1%}")
    print(f"  (sink loads observed: {locality.sink_loads})\n")

    print("Cloaking coverage over all loads (infinite DPNT, 128-entry DDT):")
    print(f"  RAW-only cloaking:     {raw_only.stats.coverage:.1%}")
    print(f"  RAW+RAR cloaking:      {combined.stats.coverage:.1%}")
    print(f"     of which via RAR:   {combined.stats.coverage_rar:.1%}")
    print(f"  misspeculation:        {combined.stats.misspeculation_rate:.2%}\n")

    gained = combined.stats.coverage - raw_only.stats.coverage
    print(f"The RAR extension covers an additional {gained:.1%} of all loads:")
    print("every node's data word is read twice (foo then bar), and the")
    print("second read names the first instead of recomputing an address")
    print("and going to memory.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
