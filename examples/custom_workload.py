"""Analyze your own kernel's memory dependence stream.

Shows the full public API surface end to end: write a kernel in the mini
ISA, execute it, sweep DDT sizes over its trace (Figure 5 style), measure
its RAR locality (Figure 2 style) and estimate what cloaking would cover.

The kernel below is a tiny sparse matrix-vector product (CSR format) — an
indirect-addressing idiom none of the built-in workloads uses.

Run:  python examples/custom_workload.py
"""

from repro import CloakingConfig, CloakingEngine
from repro.dependence import DDTConfig, DependenceProfiler
from repro.dependence.locality import RARLocalityAnalysis
from repro.isa import Interpreter, assemble
from repro.workloads.base import lcg_sequence

ROWS = 24
NNZ_PER_ROW = 6


def build_spmv_source() -> str:
    """A CSR sparse matrix-vector product, repeated over many iterations."""
    nnz = ROWS * NNZ_PER_ROW
    col_indices = [v % ROWS for v in lcg_sequence(0x5A, nnz, 1 << 20)]
    values = [1 + v % 9 for v in lcg_sequence(0x5B, nnz, 1 << 16)]
    x_init = [1 + v % 5 for v in lcg_sequence(0x5C, ROWS, 1 << 16)]

    def words(label, data):
        return f"{label}: .word " + ", ".join(str(v) for v in data)

    return f"""
.data
{words("colidx", col_indices)}
{words("matval", values)}
{words("vec_x", x_init)}
y: .space {ROWS}

.text
main:   li   r20, 120                # repetitions
rep:    li   r1, 0                   # row
row:    li   r2, 0                   # accumulator
        li   r3, 0                   # nz within row
        li   r4, {NNZ_PER_ROW}
        mul  r5, r1, r4              # row start index
nz:     add  r6, r5, r3
        sll  r6, r6, 2
        la   r7, colidx
        add  r7, r7, r6
        lw   r8, 0(r7)               # column index
        la   r9, matval
        add  r9, r9, r6
        lw   r10, 0(r9)              # matrix value
        sll  r11, r8, 2
        la   r12, vec_x
        add  r12, r12, r11
        lw   r13, 0(r12)             # x[col]: the gather (RAR-rich)
        mul  r14, r10, r13
        add  r2, r2, r14
        addi r3, r3, 1
        blt  r3, r4, nz
        sll  r15, r1, 2
        la   r16, y
        add  r16, r16, r15
        sw   r2, 0(r16)              # y[row]
        addi r1, r1, 1
        li   r17, {ROWS}
        blt  r1, r17, row
        addi r20, r20, -1
        bgtz r20, rep
        halt
"""


def main() -> None:
    program = assemble(build_spmv_source(), name="spmv")
    print(f"spmv kernel: {len(program)} static instructions\n")

    # Figure 5 style: dependence visibility vs DDT size (one trace pass).
    profiler = DependenceProfiler([DDTConfig(size=s) for s in (32, 128, 512)])
    locality = RARLocalityAnalysis(max_n=4)
    engine = CloakingEngine(CloakingConfig.paper_accuracy())
    for inst in Interpreter(program).run():
        profiler.observe(inst)
        locality.observe(inst)
        engine.observe(inst)

    print("dependence visibility vs DDT size:")
    for profile in profiler.profiles:
        print(f"  DDT {profile.config.size:>4}: "
              f"RAW {profile.raw_fraction:6.1%}  "
              f"RAR {profile.rar_fraction:6.1%}")
    print(f"\nRAR locality(1)={locality.locality(1):.1%}  "
          f"locality(4)={locality.locality(4):.1%}")
    print(f"cloaking coverage: {engine.stats.coverage:.1%} "
          f"(RAR part {engine.stats.coverage_rar:.1%}), "
          f"misspec {engine.stats.misspeculation_rate:.2%}\n")
    print("SpMV is an instructive *negative* case for cloaking: the RAR")
    print("dependence stream is perfectly regular (locality(1) is ~100%:")
    print("each static load RAR-depends on its own previous instance), yet")
    print("coverage stays near zero, because a strided load covers many")
    print("addresses with one synonym and the Synonym File can only carry")
    print("the most recent value.  Dependence predictability and value")
    print("communicability are different properties — exactly why the paper")
    print("reports coverage, not just locality.")


if __name__ == "__main__":
    main()
