"""Quickstart: detect RAR dependences and cloak loads in 30 lines.

Builds the paper's Figure 3 scenario — two functions each reading every
node of a structure — directly in the mini ISA, then runs RAR-based
cloaking over the committed trace and prints coverage.

Run:  python examples/quickstart.py
"""

from repro import CloakingConfig, CloakingEngine, CloakingMode
from repro.isa import Interpreter, assemble

SOURCE = """
.data
table:  .word 3, 1, 4, 1, 5, 9, 2, 6
sum:    .word 0
hits:   .word 0

.text
main:   li   r10, 200            # passes over the table
pass:   la   r1, table
        li   r2, 0
loop:   lw   r3, 0(r1)           # reader #1: accumulate
        la   r4, sum
        lw   r5, 0(r4)
        add  r5, r5, r3
        sw   r5, 0(r4)
        lw   r6, 0(r1)           # reader #2: compare (RAR with reader #1)
        slti r7, r6, 4
        add  r8, r8, r7
        addi r1, r1, 4
        addi r2, r2, 1
        slti r9, r2, 8
        bgtz r9, loop
        addi r10, r10, -1
        bgtz r10, pass
        halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    trace = Interpreter(program).run()

    engine = CloakingEngine(CloakingConfig.paper_accuracy())
    stats = engine.run(trace)

    print("Quickstart: RAW+RAR cloaking on the Figure 3 idiom")
    print(f"  loads observed:        {stats.loads}")
    print(f"  coverage via RAW:      {stats.coverage_raw:.1%}")
    print(f"  coverage via RAR:      {stats.coverage_rar:.1%}")
    print(f"  total coverage:        {stats.coverage:.1%}")
    print(f"  misspeculation rate:   {stats.misspeculation_rate:.2%}")
    print()
    print("Reader #2's loads obtain their values by naming reader #1's")
    print("loads (a RAR dependence), without address calculation or a")
    print("cache access — the paper's RAR-based speculative memory cloaking.")


if __name__ == "__main__":
    main()
