"""Cloaking/bypassing vs last-value load value prediction (Section 5.5).

Runs both predictors over a subset of the suite and cross-tabulates which
loads each gets right — the paper's Table 5.2 analysis.  Demonstrates the
complementarity claim: cloaking predicts the *producer* of a value, value
prediction predicts the value itself, and they succeed on different loads.

Run:  python examples/predictor_shootout.py [scale]
"""

import sys

from repro import CloakingConfig, CloakingEngine, LastValuePredictor, get_workload

WORKLOADS = ("com", "li", "hyd", "aps", "swm")


def shootout(name: str, scale: float):
    workload = get_workload(name)
    engine = CloakingEngine(CloakingConfig.paper_overlap())
    predictor = LastValuePredictor(capacity=16 * 1024)
    loads = cloak_only = vp_only = both = neither = 0

    for inst in workload.trace(scale=scale):
        outcome = engine.observe(inst)
        if not inst.is_load:
            continue
        loads += 1
        vp_hit = predictor.observe(inst.pc, inst.value)
        cloak_hit = outcome is not None and outcome.correct
        if cloak_hit and vp_hit:
            both += 1
        elif cloak_hit:
            cloak_only += 1
        elif vp_hit:
            vp_only += 1
        else:
            neither += 1
    return loads, cloak_only, vp_only, both, neither


def main(scale: float = 0.2) -> None:
    print(f"{'wl':5s} {'cloak-only':>11s} {'VP-only':>9s} {'both':>7s} "
          f"{'neither':>9s}")
    print("-" * 46)
    for name in WORKLOADS:
        loads, cloak_only, vp_only, both, neither = shootout(name, scale)
        print(f"{name:5s} {cloak_only / loads:>10.1%} {vp_only / loads:>8.1%} "
              f"{both / loads:>6.1%} {neither / loads:>8.1%}")
    print()
    print("'cloak-only' loads communicate through stable dependences whose")
    print("values change (accumulators, hash-table chains): a last-value")
    print("predictor cannot track them.  'VP-only' loads return stable")
    print("values with no visible dependence (e.g. hyd's converged field).")
    print("The paper's conclusion: the techniques are complementary.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
