"""Benchmark: the cloaking + value-prediction hybrid extension."""

from benchmarks.conftest import BENCH_SCALE, SUBSET
from repro.experiments import ext_hybrid


def test_ext_hybrid(benchmark):
    rows = benchmark.pedantic(
        lambda: ext_hybrid.run(scale=BENCH_SCALE, workloads=SUBSET),
        rounds=1, iterations=1)
    benchmark.extra_info["table"] = ext_hybrid.render(rows)
    # the hybrid never covers less than cloaking alone (minus noise)
    assert all(r.hybrid_coverage >= r.cloaking_coverage - 0.01 for r in rows)
    # and gains somewhere (the synergy the paper anticipates)
    assert any(r.gain_over_cloaking > 0.02 for r in rows)
