"""Ablation: DDT load-recording policy — earliest vs most-recent source.

The paper records a load in the DDT "only when no other load has been
recorded for the same address", annotating the *earliest* load as the
producer (Section 3.1).  The alternative — every load re-records, so RAR
sources track the *most recent* prior load — builds LOAD1→LOAD2→LOAD3
chains instead of the paper's LOAD1→{LOAD2, LOAD3} star, which delays
value propagation.  This ablation measures the coverage effect.
"""

from benchmarks.conftest import BENCH_SCALE, SUBSET
from repro.core import CloakingConfig, CloakingEngine, CloakingMode
from repro.dependence.ddt import DDTConfig
from repro.experiments.report import format_table, pct
from repro.workloads import get_workload


def run_ablation(scale=BENCH_SCALE, workloads=SUBSET):
    rows = []
    for name in workloads:
        engines = {
            "earliest": CloakingEngine(CloakingConfig(
                mode=CloakingMode.RAW_RAR,
                ddt=DDTConfig(size=128, record_all_loads=False),
                dpnt_entries=None, sf_entries=None)),
            "most-recent": CloakingEngine(CloakingConfig(
                mode=CloakingMode.RAW_RAR,
                ddt=DDTConfig(size=128, record_all_loads=True),
                dpnt_entries=None, sf_entries=None)),
        }
        for inst in get_workload(name).trace(scale=scale):
            for engine in engines.values():
                engine.observe(inst)
        rows.append((
            name,
            engines["earliest"].stats.coverage,
            engines["most-recent"].stats.coverage,
            engines["earliest"].stats.misspeculation_rate,
            engines["most-recent"].stats.misspeculation_rate,
        ))
    return rows


def test_ablation_recording_policy(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["table"] = format_table(
        ["Ab.", "cov earliest", "cov most-recent", "miss earliest",
         "miss most-recent"],
        [[n, pct(a), pct(b), pct(c, 2), pct(d, 2)] for n, a, b, c, d in rows],
        title="Ablation: DDT load-recording policy",
    )
    mean_earliest = sum(r[1] for r in rows) / len(rows)
    mean_recent = sum(r[2] for r in rows) / len(rows)
    # the two policies are in the same coverage regime; the paper's choice
    # (earliest) must not be materially worse
    assert mean_earliest >= mean_recent - 0.05
