"""Ablation: common vs split DDT (the Section 5.6.2 anomaly).

The paper observes that sharing one DDT between loads and stores lets
loads evict stores, hiding RAW dependences, and that "using separate DDTs
one for stores and one for loads eliminates this anomaly".
"""

from benchmarks.conftest import BENCH_SCALE, SUBSET
from repro.dependence import DDTConfig, DependenceProfiler
from repro.experiments.report import format_table, pct
from repro.workloads import get_workload


def run_ablation(scale=BENCH_SCALE, workloads=SUBSET):
    rows = []
    for name in workloads:
        profiler = DependenceProfiler([
            DDTConfig(size=128, split=False),
            DDTConfig(size=128, split=True),
        ])
        common, split = profiler.run(get_workload(name).trace(scale=scale))
        rows.append((name, common.raw_fraction, split.raw_fraction,
                     common.rar_fraction, split.rar_fraction))
    return rows


def test_ablation_ddt_split(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["table"] = format_table(
        ["Ab.", "RAW common", "RAW split", "RAR common", "RAR split"],
        [[name, pct(a), pct(b), pct(c), pct(d)] for name, a, b, c, d in rows],
        title="Ablation: common vs split DDT (128 entries)",
    )
    # the split organization never sees fewer RAW dependences
    assert all(split >= common - 1e-9 for _, common, split, _, _ in rows)
    # and recovers a strictly positive amount somewhere in the subset
    assert any(split > common + 1e-6 for _, common, split, _, _ in rows)
