"""Benchmark configuration.

Every paper table/figure has one benchmark here; each runs its experiment
harness at ``BENCH_SCALE`` (a reduced workload size so the whole suite
finishes in minutes) and attaches the rendered paper-style table to the
benchmark's ``extra_info``.  Regenerate any artefact at full size with
``python -m repro.experiments.<name> --scale 1.0``.
"""

import pytest

from repro.workloads import get_workload

BENCH_SCALE = 0.05
TIMING_SCALE = 0.02   # the cycle-level figures are ~50x more expensive
SUBSET_INT = ["go", "com", "li", "per"]
SUBSET_FP = ["swm", "mgd", "aps", "fp*"]
SUBSET = SUBSET_INT + SUBSET_FP


@pytest.fixture(scope="session")
def li_trace_bench():
    """A materialized trace for the component micro-benchmarks."""
    return list(get_workload("li").trace(scale=1.0, max_instructions=20_000))
