"""Benchmark: regenerate Table 5.2 (cloaking vs value prediction overlap)."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import table52


def test_table52_vp_overlap(benchmark):
    rows = benchmark.pedantic(
        lambda: table52.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    assert len(rows) == 18
    benchmark.extra_info["table"] = table52.render(rows)

    # the paper's takeaway: for most programs the cloaking-only fraction
    # exceeds the VP-only fraction — the techniques are complementary
    cloak_favoured = sum(
        1 for r in rows if r.cloak_only_total > r.frac(r.vp_only))
    assert cloak_favoured >= 10
    # hydro2d is engineered as the VP-favoured exception
    hyd = next(r for r in rows if r.abbrev == "hyd")
    assert r"hyd" and hyd.frac(hyd.vp_only) > 0.0
