"""Benchmark: the full reproduction report card must grade PASS on every
DESIGN.md shape criterion at benchmark scale."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import report_card


def test_report_card_all_pass(benchmark):
    criteria = benchmark.pedantic(
        lambda: report_card.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    benchmark.extra_info["table"] = report_card.render(criteria)
    failing = [c for c in criteria if not c.passed]
    assert not failing, [f"{c.ident}: {c.measured}" for c in failing]
