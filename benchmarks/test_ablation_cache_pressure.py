"""Ablation: cloaking behaviour under data-cache pressure.

Scales two stencil kernels past the 32K L1 and measures L1 miss rate,
base IPC, RAW+RAR speedup and coverage.  The measured finding: pressure
raises the miss rate several-fold and depresses IPC, yet RAR *coverage*
is unchanged and the speedup does not grow — because a RAR sink load
always hits (its source load just warmed the line); the new misses land
on the streamed source loads, which cloaking by definition cannot cover.
This is the quantified version of EXPERIMENTS.md's deviation 1: larger
working sets alone do not close the FP magnitude gap; the paper's FP
speedups rely on machine-balance effects beyond cache footprint.
"""

from functools import partial

from repro.core import CloakingConfig, CloakingMode
from repro.experiments.report import format_table, pct, signed_pct
from repro.pipeline import CloakedProcessor, Processor
from repro.workloads.base import Workload
from repro.workloads import mgd, swm

#: (label, module build fn, small n, large n)
KERNELS = (
    ("swm", swm.build, 18, 44),   # 7 arrays: 9 KB vs 54 KB
    ("mgd", mgd.build, 10, 21),   # 2 fields: 8 KB vs 74 KB
)
MAX_INSTRUCTIONS = 60_000


def _workload(label, build, n):
    return Workload(
        abbrev=f"{label}-n{n}", spec_name=label, category="fp",
        description=f"{label} at grid size {n}",
        builder=partial(build, n=n),
    )


def run_ablation():
    rows = []
    for label, build, small, large in KERNELS:
        for n in (small, large):
            workload = _workload(label, build, n)
            base = Processor()
            cloaked = CloakedProcessor(
                cloaking=CloakingConfig.paper_timing(CloakingMode.RAW_RAR))
            for inst in workload.trace(scale=1.0,
                                       max_instructions=MAX_INSTRUCTIONS):
                base.feed(inst)
                cloaked.feed(inst)
            base_result = base.finalize(workload.abbrev)
            cloaked_result = cloaked.finalize(workload.abbrev)
            rows.append((
                workload.abbrev,
                base_result.l1d_miss_rate,
                base_result.ipc,
                cloaked_result.speedup_over(base_result),
                cloaked.engine.stats.coverage,
            ))
    return rows


def test_ablation_cache_pressure(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["table"] = format_table(
        ["kernel", "L1D miss", "base IPC", "RAW+RAR speedup", "coverage"],
        [[name, pct(miss, 2), f"{ipc:.2f}", signed_pct(speedup), pct(cov)]
         for name, miss, ipc, speedup, cov in rows],
        title="Ablation: cloaking speedup vs data-cache pressure",
    )
    by_name = {name: (miss, ipc, speedup, cov) for name, miss, ipc,
               speedup, cov in rows}
    for label, _, small, large in KERNELS:
        small_row = by_name[f"{label}-n{small}"]
        large_row = by_name[f"{label}-n{large}"]
        # the large variant genuinely stresses the L1 ...
        assert large_row[0] > small_row[0]
        # ... and cloaking coverage survives the footprint change
        assert large_row[3] > 0.5 * small_row[3]
