"""Benchmark: regenerate Figure 2 (RAR memory dependence locality)."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import fig2


def test_fig2_locality(benchmark):
    rows = benchmark.pedantic(
        lambda: fig2.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    assert len(rows) == 36  # 18 programs x 2 address windows
    benchmark.extra_info["table"] = fig2.render(rows)
    # the paper's claim: locality(4) above 70% for most programs
    infinite = [r for r in rows if r.window == "infinite" and r.sink_loads]
    high = sum(1 for r in infinite if r.locality[3] > 0.7)
    assert high >= len(infinite) * 0.7
