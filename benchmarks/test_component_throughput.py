"""Micro-benchmarks: throughput of the simulation components themselves.

These are engineering benchmarks (not paper artefacts): they track the
interpreter, DDT, cloaking engine and cycle-level model costs so
performance regressions in the simulator are visible.

The trace/DDT/locality stages run on every :mod:`repro.columnar` backend
(``reference`` per-instruction, ``numpy`` vectorized); the cloaking
engine and pipeline have no columnar fast path and stay reference-only.
``test_columnar_bench_summary`` additionally writes
``results/BENCH_columnar.json`` — per-stage instructions/sec and
fast-vs-reference ratios — and enforces the CI floor: the numpy backend
must hold >= 5x on the trace and DDT stages (soft floor under the 10x
target).

Backend timing is comparable because both sides answer the *same query
suite* the experiments issue: each figure re-traverses the trace
(Figure 2, 5 and 7 each interpret the workload), so the reference cost
per query includes interpretation, while the columnar backend
materializes once into cached record batches and serves array passes.
The one-off materialization cost is reported separately (``cold``).
"""

import json
import time
from pathlib import Path

import pytest

from repro.columnar.backend import backend_available, get_backend
from repro.core import CloakingConfig, CloakingEngine
from repro.dependence import DDT, DDTConfig
from repro.experiments.fig2 import WINDOWS
from repro.experiments.fig5 import DDT_SIZES
from repro.pipeline import Processor
from repro.workloads import get_workload

N_INSTRUCTIONS = 20_000

#: the heavier query set the machine-readable summary uses (ratios grow
#: with trace length; 20k is kept for the quick per-stage benchmarks)
SUMMARY_INSTRUCTIONS = 100_000
SUMMARY_REPEATS = 3
SPEEDUP_FLOOR = 5.0     # CI fails below this (trace + DDT stages)
SPEEDUP_TARGET = 10.0   # the tentpole target, recorded in the artefact

BENCH_JSON = Path("results") / "BENCH_columnar.json"

BACKENDS = ["reference", "numpy"]


def _backend_or_skip(name):
    if not backend_available(name):
        pytest.skip(f"backend {name!r} unavailable (numpy not installed)")
    return get_backend(name)


def _stage_queries(backend, workload, max_instructions):
    """The three benchmarked stage queries, shared by both paths."""
    return {
        "trace": lambda: backend.trace_summary(
            workload, 1.0, max_instructions),
        "ddt": lambda: backend.ddt_profiles(
            workload, 1.0, DDT_SIZES, max_instructions),
        "locality": lambda: backend.rar_locality(
            workload, 1.0, 4, WINDOWS, max_instructions),
    }


# -- per-stage benchmarks (both backends) --------------------------------

@pytest.fixture(params=BACKENDS)
def stage_backend(request):
    return _backend_or_skip(request.param)


def test_interpreter_throughput(benchmark):
    workload = get_workload("li")

    def run():
        return sum(1 for _ in workload.trace(
            scale=1.0, max_instructions=N_INSTRUCTIONS))

    count = benchmark(run)
    assert count == N_INSTRUCTIONS


def test_trace_stage_throughput(benchmark, stage_backend):
    workload = get_workload("li")
    query = _stage_queries(stage_backend, workload, N_INSTRUCTIONS)["trace"]
    query()  # warm caches (program assembly; columnar materialization)
    summary = benchmark(query)
    assert summary.instructions == N_INSTRUCTIONS


def test_ddt_stage_throughput(benchmark, stage_backend):
    workload = get_workload("li")
    query = _stage_queries(stage_backend, workload, N_INSTRUCTIONS)["ddt"]
    query()
    profiles = benchmark(query)
    assert len(profiles) == len(DDT_SIZES)
    assert all(p.loads > 0 for p in profiles)


def test_locality_stage_throughput(benchmark, stage_backend):
    workload = get_workload("li")
    query = _stage_queries(stage_backend, workload,
                           N_INSTRUCTIONS)["locality"]
    query()
    results = benchmark(query)
    assert set(results) == set(WINDOWS)


def test_ddt_throughput(benchmark, li_trace_bench):
    def run():
        ddt = DDT(DDTConfig(size=128))
        for inst in li_trace_bench:
            if inst.is_load:
                ddt.observe_load(inst.pc, inst.word_addr)
            elif inst.is_store:
                ddt.observe_store(inst.pc, inst.word_addr)
        return ddt

    ddt = benchmark(run)
    assert ddt.loads_observed > 0


def test_cloaking_engine_throughput(benchmark, li_trace_bench):
    def run():
        engine = CloakingEngine(CloakingConfig.paper_timing())
        for inst in li_trace_bench:
            engine.observe(inst)
        return engine

    engine = benchmark(run)
    assert engine.stats.loads > 0


def test_pipeline_throughput(benchmark, li_trace_bench):
    def run():
        return Processor().run(iter(li_trace_bench))

    result = benchmark(run)
    assert result.cycles > 0


# -- the machine-readable perf artefact ----------------------------------

def _best_seconds(fn, repeats=SUMMARY_REPEATS):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_columnar_bench_summary():
    """Write ``BENCH_columnar.json`` and enforce the CI speedup floor."""
    pytest.importorskip("numpy")
    from repro.columnar.batch import clear_trace_cache, materialized_trace

    workload = get_workload("li")
    cap = SUMMARY_INSTRUCTIONS
    reference = get_backend("reference")
    numpy_backend = get_backend("numpy")

    # cold materialization cost vs one reference interpretation
    workload.program(1.0)  # exclude assembly from both sides
    clear_trace_cache()
    cold_materialize = _best_seconds(
        lambda: (clear_trace_cache(),
                 materialized_trace(workload, 1.0, cap)), repeats=1)
    cold_interpret = _best_seconds(
        lambda: reference.trace_summary(workload, 1.0, cap), repeats=1)
    materialized_trace(workload, 1.0, cap)  # warm for the stage queries

    stages = {}
    for stage in ("trace", "ddt", "locality"):
        ref_fn = _stage_queries(reference, workload, cap)[stage]
        fast_fn = _stage_queries(numpy_backend, workload, cap)[stage]
        ref_fn(), fast_fn()  # warm
        ref_s = _best_seconds(ref_fn)
        fast_s = _best_seconds(fast_fn)
        stages[stage] = {
            "reference": {"seconds": ref_s,
                          "instructions_per_sec": cap / ref_s},
            "numpy": {"seconds": fast_s,
                      "instructions_per_sec": cap / fast_s},
            "ratio": ref_s / fast_s,
        }

    payload = {
        "workload": workload.abbrev,
        "max_instructions": cap,
        "repeats": SUMMARY_REPEATS,
        "floor": SPEEDUP_FLOOR,
        "target": SPEEDUP_TARGET,
        "stages": stages,
        "cold": {
            "materialize_seconds": cold_materialize,
            "reference_interpret_seconds": cold_interpret,
            "ratio": cold_interpret / cold_materialize,
        },
        "note": ("reference re-interprets the trace per query (as the "
                 "figure experiments do); numpy serves array passes over "
                 "one cached materialization — 'cold' reports the "
                 "materialization overhead separately"),
    }
    BENCH_JSON.parent.mkdir(parents=True, exist_ok=True)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    for stage in ("trace", "ddt"):
        assert stages[stage]["ratio"] >= SPEEDUP_FLOOR, (
            f"{stage} stage speedup {stages[stage]['ratio']:.1f}x is below "
            f"the {SPEEDUP_FLOOR}x CI floor (target {SPEEDUP_TARGET}x); "
            f"see {BENCH_JSON}")
