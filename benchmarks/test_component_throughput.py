"""Micro-benchmarks: throughput of the simulation components themselves.

These are engineering benchmarks (not paper artefacts): they track the
interpreter, DDT, cloaking engine and cycle-level model costs so
performance regressions in the simulator are visible.
"""

import itertools

from repro.core import CloakingConfig, CloakingEngine
from repro.dependence import DDT, DDTConfig
from repro.pipeline import Processor
from repro.workloads import get_workload

N_INSTRUCTIONS = 20_000


def test_interpreter_throughput(benchmark):
    workload = get_workload("li")

    def run():
        return sum(1 for _ in workload.trace(
            scale=1.0, max_instructions=N_INSTRUCTIONS))

    count = benchmark(run)
    assert count == N_INSTRUCTIONS


def test_ddt_throughput(benchmark, li_trace_bench):
    def run():
        ddt = DDT(DDTConfig(size=128))
        for inst in li_trace_bench:
            if inst.is_load:
                ddt.observe_load(inst.pc, inst.word_addr)
            elif inst.is_store:
                ddt.observe_store(inst.pc, inst.word_addr)
        return ddt

    ddt = benchmark(run)
    assert ddt.loads_observed > 0


def test_cloaking_engine_throughput(benchmark, li_trace_bench):
    def run():
        engine = CloakingEngine(CloakingConfig.paper_timing())
        for inst in li_trace_bench:
            engine.observe(inst)
        return engine

    engine = benchmark(run)
    assert engine.stats.loads > 0


def test_pipeline_throughput(benchmark, li_trace_bench):
    def run():
        return Processor().run(iter(li_trace_bench))

    result = benchmark(run)
    assert result.cycles > 0
