"""Micro-benchmarks: throughput of the static analysis passes.

Engineering benchmarks (not paper artefacts): the analyzer runs inside
``Workload.program(verify=True)`` — on every experiment's critical path —
and the distance/depgraph passes back the suite-wide soundness gate, so
regressions in either are worth catching early.
"""

from repro.analysis import analyze_program
from repro.workloads import get_workload


def test_analyze_program_throughput(benchmark):
    program = get_workload("li").program(1.0)

    def run():
        return analyze_program(program)

    report = benchmark(run)
    assert report.ok()
    assert report.loads > 0


def test_distance_pass_throughput(benchmark):
    program = get_workload("li").program(1.0)

    def run():
        return analyze_program(program, distances=True)

    report = benchmark(run)
    assert report.ok()
    assert report.distances is not None
    assert report.distances.per_pc


def test_suite_structural_lint_throughput(benchmark):
    from repro.experiments.runner import select_workloads

    programs = [w.program(1.0) for w in select_workloads()]

    def run():
        return [analyze_program(p, distances=True) for p in programs]

    reports = benchmark(run)
    assert len(reports) == 18
    assert all(r.ok() for r in reports)
