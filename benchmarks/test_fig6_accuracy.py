"""Benchmark: regenerate Figure 6 (cloaking coverage / misspeculation)."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import fig6
from repro.predictors.confidence import ConfidenceKind


def test_fig6_accuracy(benchmark):
    rows = benchmark.pedantic(
        lambda: fig6.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    assert len(rows) == 36  # 18 programs x 2 confidence mechanisms
    benchmark.extra_info["table"] = fig6.render(rows)

    adaptive = [r for r in rows if r.confidence == ConfidenceKind.TWO_BIT.value]
    one_bit = [r for r in rows if r.confidence == ConfidenceKind.ONE_BIT.value]
    # adaptive cuts misspeculation by a large factor overall
    miss_adaptive = sum(r.misspeculation for r in adaptive)
    miss_one_bit = sum(r.misspeculation for r in one_bit)
    assert miss_adaptive < miss_one_bit / 5
    # RAR contributes substantial additional coverage for the FP class
    fp = [r for r in adaptive if r.category == "fp"]
    assert sum(r.coverage_rar for r in fp) / len(fp) > 0.2
