"""Benchmark package (pytest-benchmark harnesses, one per paper artefact)."""
