"""Benchmark: regenerate Table 5.1 (benchmark execution characteristics)."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import table51


def test_table51_characteristics(benchmark):
    rows = benchmark.pedantic(
        lambda: table51.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    assert len(rows) == 18
    benchmark.extra_info["table"] = table51.render(rows)
    # every program contributes a plausible instruction mix
    for row in rows:
        assert 0.05 < row.load_fraction < 0.6
