"""Ablation: RAR prediction vs simply enlarging the DDT.

Section 3.1 argues RAR cloaking helps loads whose RAW dependences are with
*distant* stores — dependences a bigger DDT could also expose, at hardware
cost.  This ablation asks: how much of RAW+RAR@128's coverage could a
RAW-only mechanism recover by growing its DDT 16x?

The expected split: loads whose values genuinely come from stores
(compress) are recoverable with a big DDT; pure data sharing (swm, mgrid,
fp* re-reads at never-stored or long-cold addresses) is not reachable by
RAW cloaking at ANY DDT size — that population is the RAR techniques'
own.
"""

from benchmarks.conftest import BENCH_SCALE, SUBSET
from repro.core import CloakingConfig, CloakingEngine, CloakingMode
from repro.experiments.report import format_table, pct
from repro.workloads import get_workload

CONFIGS = (
    ("RAW@128", CloakingMode.RAW, 128),
    ("RAW@2048", CloakingMode.RAW, 2048),
    ("RAW+RAR@128", CloakingMode.RAW_RAR, 128),
)


def run_ablation(scale=BENCH_SCALE, workloads=SUBSET):
    rows = []
    for name in workloads:
        engines = {
            label: CloakingEngine(
                CloakingConfig.paper_accuracy(mode=mode, ddt_size=size))
            for label, mode, size in CONFIGS
        }
        for inst in get_workload(name).trace(scale=scale):
            for engine in engines.values():
                engine.observe(inst)
        rows.append((name,) + tuple(
            engines[label].stats.coverage for label, _, _ in CONFIGS))
    return rows


def test_ablation_rar_vs_big_ddt(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    labels = [label for label, _, _ in CONFIGS]
    benchmark.extra_info["table"] = format_table(
        ["Ab."] + labels,
        [[name] + [pct(v) for v in values]
         for name, *values in rows],
        title="Ablation: RAR prediction vs a 16x larger RAW-only DDT",
    )
    mean = {label: sum(r[1 + i] for r in rows) / len(rows)
            for i, label in enumerate(labels)}
    # a bigger DDT helps RAW-only cloaking ...
    assert mean["RAW@2048"] >= mean["RAW@128"] - 0.01
    # ... but cannot reach the data-sharing population: the 128-entry
    # RAW+RAR mechanism still covers substantially more
    assert mean["RAW+RAR@128"] > mean["RAW@2048"] + 0.05
