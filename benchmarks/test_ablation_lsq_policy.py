"""Ablation: memory dependence speculation policies in the LSQ.

The paper's base uses naive speculation and claims it "offers performance
very close to that possible with ideal speculation" for the centralized
128-entry window (Section 5.1).  This ablation compares naive, store-set
(Chrysos-Emer) and no-speculation scheduling on a workload subset.
"""

from benchmarks.conftest import SUBSET, TIMING_SCALE
from repro.experiments.report import format_table, signed_pct
from repro.pipeline import Processor, ProcessorConfig
from repro.util.stats import harmonic_mean_speedup
from repro.workloads import get_workload

POLICIES = ("naive", "store_sets", "no_speculation")


def run_ablation(scale=TIMING_SCALE, workloads=SUBSET):
    rows = []
    for name in workloads:
        workload = get_workload(name)
        machines = {p: Processor(ProcessorConfig(lsq_policy=p))
                    for p in POLICIES}
        for inst in workload.trace(scale=scale):
            for machine in machines.values():
                machine.feed(inst)
        results = {p: m.finalize(name) for p, m in machines.items()}
        base = results["naive"]
        rows.append((
            name,
            base.ipc,
            results["store_sets"].speedup_over(base),
            results["no_speculation"].speedup_over(base),
            machines["naive"].lsq.violations,
        ))
    return rows


def test_ablation_lsq_policy(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["table"] = format_table(
        ["Ab.", "naive IPC", "store-sets", "no-spec", "naive violations"],
        [[n, f"{ipc:.2f}", signed_pct(ss), signed_pct(ns), str(v)]
         for n, ipc, ss, ns, v in rows],
        title="Ablation: LSQ memory dependence speculation policy "
              "(speedup over naive)",
    )
    hm_store_sets = harmonic_mean_speedup([r[2] for r in rows])
    hm_nospec = harmonic_mean_speedup([r[3] for r in rows])
    # naive is close to store sets (the paper's near-ideal claim) ...
    assert abs(hm_store_sets - 1.0) < 0.05
    # ... while refusing to speculate costs real performance
    assert hm_nospec < hm_store_sets
