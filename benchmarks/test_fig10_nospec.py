"""Benchmark: regenerate Figure 10 (no memory dependence speculation base)."""

from benchmarks.conftest import SUBSET, TIMING_SCALE
from repro.experiments import fig9, fig10
from repro.util.stats import harmonic_mean_speedup


def test_fig10_nospec(benchmark):
    def run_both():
        with_spec = fig9.run(scale=TIMING_SCALE, workloads=SUBSET)
        without_spec = fig10.run(scale=TIMING_SCALE, workloads=SUBSET)
        return with_spec, without_spec

    with_spec, without_spec = benchmark.pedantic(run_both, rounds=1,
                                                 iterations=1)
    benchmark.extra_info["table"] = fig10.render(without_spec)

    # shape: speedups grow when the base does not speculate on memory
    # dependences (paper: "significantly higher (often double)")
    hm_spec = harmonic_mean_speedup(
        [r.speedups["selective/RAW+RAR"] for r in with_spec])
    hm_nospec = harmonic_mean_speedup(
        [r.speedups["RAW+RAR"] for r in without_spec])
    assert hm_nospec > hm_spec
