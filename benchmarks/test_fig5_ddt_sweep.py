"""Benchmark: regenerate Figure 5 (dependence visibility vs DDT size)."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import fig5


def test_fig5_ddt_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    assert len(rows) == 18 * len(fig5.DDT_SIZES)
    benchmark.extra_info["table"] = fig5.render(rows)

    # shape: INT leans RAW, FP leans RAR at the 128-entry point
    at_128 = [r for r in rows if r.ddt_size == 128]
    int_rows = [r for r in at_128 if r.category == "int"]
    fp_rows = [r for r in at_128 if r.category == "fp"]
    int_raw = sum(r.raw_fraction for r in int_rows) / len(int_rows)
    int_rar = sum(r.rar_fraction for r in int_rows) / len(int_rows)
    fp_raw = sum(r.raw_fraction for r in fp_rows) / len(fp_rows)
    fp_rar = sum(r.rar_fraction for r in fp_rows) / len(fp_rows)
    assert int_raw > int_rar
    assert fp_rar > fp_raw
