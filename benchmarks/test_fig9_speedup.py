"""Benchmark: regenerate Figure 9 (speedup with naive memory dependence
speculation) on a representative subset of the suite.

The full-suite, full-size version is ``python -m repro.experiments.fig9``.
"""

from benchmarks.conftest import SUBSET, TIMING_SCALE
from repro.experiments import fig9
from repro.util.stats import harmonic_mean_speedup


def test_fig9_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: fig9.run(scale=TIMING_SCALE, workloads=SUBSET),
        rounds=1, iterations=1)
    assert len(rows) == len(SUBSET)
    benchmark.extra_info["table"] = fig9.render(rows)

    # shape (i): selective invalidation beats squash invalidation overall
    selective = harmonic_mean_speedup(
        [r.speedups["selective/RAW+RAR"] for r in rows])
    squash = harmonic_mean_speedup(
        [r.speedups["squash/RAW+RAR"] for r in rows])
    assert selective > squash

    # shape (ii): with selective recovery the mechanism does not lose
    # performance in aggregate
    assert selective > 0.995
