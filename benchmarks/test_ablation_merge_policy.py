"""Ablation: synonym merge policies (Section 5.1).

The paper reports "no noticeable difference in accuracy" between the full
merge and the Chrysos-Emer incremental merge, and that merging at all is
better than never merging.
"""

from benchmarks.conftest import BENCH_SCALE, SUBSET
from repro.core import CloakingConfig, CloakingEngine, CloakingMode
from repro.dependence.ddt import DDTConfig
from repro.experiments.report import format_table, pct
from repro.workloads import get_workload

POLICIES = ("incremental", "full", "never")


def run_ablation(scale=BENCH_SCALE, workloads=SUBSET):
    rows = []
    for name in workloads:
        engines = {
            policy: CloakingEngine(CloakingConfig(
                mode=CloakingMode.RAW_RAR, ddt=DDTConfig(size=128),
                dpnt_entries=None, sf_entries=None, merge_policy=policy))
            for policy in POLICIES
        }
        for inst in get_workload(name).trace(scale=scale):
            for engine in engines.values():
                engine.observe(inst)
        rows.append((name,) + tuple(
            engines[policy].stats.coverage for policy in POLICIES))
    return rows


def test_ablation_merge_policy(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["table"] = format_table(
        ["Ab."] + [f"coverage {p}" for p in POLICIES],
        [[name] + [pct(v) for v in values] for name, *values in
         [(r[0], r[1], r[2], r[3]) for r in rows]],
        title="Ablation: synonym merge policy",
    )
    mean = {policy: sum(r[1 + i] for r in rows) / len(rows)
            for i, policy in enumerate(POLICIES)}
    # incremental ~ full (paper: no noticeable difference)
    assert abs(mean["incremental"] - mean["full"]) < 0.05
    # The paper finds merging better than never merging on SPEC95; on our
    # scaled synthetic subset the two are close (merging can transiently
    # leave a sink reading a synonym nobody deposits to), so assert
    # closeness rather than a strict ordering.
    assert abs(mean["incremental"] - mean["never"]) < 0.06
