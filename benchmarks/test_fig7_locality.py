"""Benchmark: regenerate Figure 7 (address / value locality breakdowns)."""

from benchmarks.conftest import BENCH_SCALE
from repro.experiments import fig7


def test_fig7_locality_breakdowns(benchmark):
    rows = benchmark.pedantic(
        lambda: fig7.run(scale=BENCH_SCALE), rounds=1, iterations=1)
    assert len(rows) == 18
    benchmark.extra_info["table"] = fig7.render(rows)

    # shape: loads with address locality but no visible dependence are rare
    # for nearly all programs (the paper's fpppp caveat allows exceptions)
    few_nodep = sum(1 for r in rows if r.addr_none < 0.15)
    assert few_nodep >= 14

    # for most programs cloaking coverage exceeds value locality (Sec. 5.5)
    cloak_wins = sum(1 for r in rows if r.coverage > r.value_locality)
    assert cloak_wins >= 9
