"""Golden-fingerprint regression tests for the workload suite.

Every experiment number in EXPERIMENTS.md depends on the exact dynamic
traces the kernels produce.  These fingerprints pin the first 5000
committed instructions of each workload (at scale 0.05); any change to a
kernel, the assembler or the interpreter that alters a trace shows up
here, prompting a deliberate regeneration of goldens *and* of the recorded
experiment results.

Regenerate after an intentional change with::

    python -c "
    import hashlib
    from repro.workloads import all_workloads
    for w in all_workloads():
        h = hashlib.sha256()
        for t in w.trace(scale=0.05, max_instructions=5000):
            h.update(f'{t.pc},{t.opclass.value},{t.addr},{t.value!r},{t.taken}'.encode())
        print(f'    \"{w.abbrev}\": \"{h.hexdigest()[:16]}\",')"
"""

import hashlib

import pytest

from repro.workloads import all_workloads, get_workload

GOLDEN_FINGERPRINTS = {
    "go": "383051f05520a818",
    "m88": "b74ccadd27506c91",
    "gcc": "f62b43db1b6dcbdc",
    "com": "2a05a36ae0c6b5c1",
    "li": "97b9872329428c84",
    "ijp": "c67d6acf0468f155",
    "per": "64b16f1fbd8b4ad9",
    "vor": "9d8a2823deeacbbd",
    "tom": "0da37723b8003983",
    "swm": "2de084474325494c",
    "su2": "2efc6fef7aaf23d5",
    "hyd": "a2e4edc550a965e5",
    "mgd": "008b700289abc452",
    "apl": "5a78fe45b6eccb05",
    "trb": "43484e845692a3da",
    "aps": "21082172f715e805",
    "fp*": "cdecfe15be225e30",
    "wav": "80562d33146afe3d",
}


def fingerprint(abbrev: str) -> str:
    digest = hashlib.sha256()
    for t in get_workload(abbrev).trace(scale=0.05, max_instructions=5000):
        digest.update(
            f"{t.pc},{t.opclass.value},{t.addr},{t.value!r},{t.taken}".encode())
    return digest.hexdigest()[:16]


def test_every_workload_has_a_golden():
    assert set(GOLDEN_FINGERPRINTS) == {w.abbrev for w in all_workloads()}


@pytest.mark.parametrize("abbrev", sorted(GOLDEN_FINGERPRINTS))
def test_trace_fingerprint_stable(abbrev):
    assert fingerprint(abbrev) == GOLDEN_FINGERPRINTS[abbrev], (
        f"workload {abbrev!r} produces a different trace than the recorded "
        "golden; if the change is intentional, regenerate the goldens (see "
        "module docstring) and re-run the experiments in EXPERIMENTS.md"
    )
