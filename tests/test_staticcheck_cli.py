"""CLI contract tests for ``python -m repro.staticcheck`` (and aliases).

Pins the exit-status contract (0 clean / 1 findings / 2 usage), the
``--json -`` stream separation (JSON alone on stdout, human lines on
stderr), strict mode, baseline round-trips including stale-entry
failure, and the harness-facing ``ext_staticcheck`` artefact rows.
"""

import json
import textwrap

from repro.staticcheck.__main__ import main

CLEAN = """\
    def lookup(table, key):
        return table[key]
    """

ERROR_VIOLATION = """\
    CACHE = {}

    def put(key, value):
        CACHE[key] = value
    """

WARNING_VIOLATION = """\
    def is_half(x):
        return x != 0.5
    """


def project(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return [str(tmp_path), "--root", str(tmp_path)]


def test_clean_tree_exits_zero(tmp_path, capsys):
    assert main(project(tmp_path, CLEAN) + ["--no-baseline"]) == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_error_exits_one(tmp_path, capsys):
    assert main(project(tmp_path, ERROR_VIOLATION) + ["--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "FS101" in out and "mod.py:1" in out


def test_warnings_fail_only_under_strict(tmp_path):
    argv = project(tmp_path, WARNING_VIOLATION) + ["--no-baseline"]
    assert main(argv) == 0
    assert main(argv + ["--strict"]) == 1


def test_bad_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing.txt"), "--no-baseline"]) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_rule_filter_exits_two(tmp_path, capsys):
    argv = project(tmp_path, CLEAN) + ["--no-baseline", "--rule", "ZZ123"]
    assert main(argv) == 2
    assert "unknown staticcheck rule" in capsys.readouterr().err


def test_rule_filter_limits_report(tmp_path, capsys):
    argv = project(tmp_path, ERROR_VIOLATION) + ["--no-baseline"]
    assert main(argv + ["--rule", "FH101"]) == 0
    assert main(argv + ["--rule", "module-mutable-state"]) == 1


def test_json_dash_separates_streams(tmp_path, capsys):
    argv = project(tmp_path, ERROR_VIOLATION) + ["--no-baseline",
                                                 "--json", "-"]
    assert main(argv) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)      # stdout is pure JSON
    assert payload["errors"] == 1
    assert payload["findings"][0]["rule"] == "FS101"
    assert payload["schema_version"] >= 1
    assert "registry_version" in payload
    assert "FS101" in captured.err          # human report went to stderr


def test_json_file_output(tmp_path):
    report_path = tmp_path / "report.json"
    argv = project(tmp_path, ERROR_VIOLATION) + [
        "--no-baseline", "--json", str(report_path)]
    assert main(argv) == 1
    payload = json.loads(report_path.read_text())
    assert [f["rule"] for f in payload["findings"]] == ["FS101"]


def test_list_rules(tmp_path, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DT101", "DT301", "FH101", "FS101", "CK101"):
        assert rule_id in out


def test_baseline_roundtrip_and_stale_failure(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    argv = project(tmp_path, ERROR_VIOLATION) + ["--baseline", str(baseline)]

    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0                  # grandfathered
    assert "1 baselined" in capsys.readouterr().out

    # finding fixed -> the baseline entry is stale -> the gate fails
    (tmp_path / "mod.py").write_text(textwrap.dedent(CLEAN))
    assert main(argv) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_top_level_alias_dispatches(capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["staticcheck", "--list-rules"]) == 0
    assert "FS101" in capsys.readouterr().out


def test_repo_tree_is_clean_in_strict_mode(capsys):
    """The shipped tree passes its own gate with no baseline help."""
    assert main(["--no-baseline", "--strict"]) == 0
    assert "clean" in capsys.readouterr().out


def test_ext_staticcheck_artefact_rows():
    from repro.harness.jobs import expand_jobs
    from repro.staticcheck.artefact import run_one, scopes

    cells = expand_jobs("ext_staticcheck", 1.0)
    assert [job.workload for job in cells] == scopes()
    assert "harness" in scopes() and "toplevel" in scopes()

    rows = run_one("staticcheck", 1.0)
    assert len(rows) == 1 and rows[0].scope == "staticcheck"
    assert rows[0].errors == 0
    assert rows[0].files > 0
