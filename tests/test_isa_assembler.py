"""Unit tests for the assembler."""

import pytest

from repro.isa import AssemblyError, OpClass, assemble
from repro.isa.program import DATA_BASE
from repro.isa.registers import fp, reg


class TestDataSection:
    def test_word_directive(self):
        program = assemble(".data\nx: .word 1, 2, 3\n.text\nhalt")
        assert program.data[DATA_BASE] == 1
        assert program.data[DATA_BASE + 4] == 2
        assert program.data[DATA_BASE + 8] == 3
        assert program.address_of("x") == DATA_BASE

    def test_float_directive(self):
        program = assemble(".data\npi: .float 3.5\n.text\nhalt")
        assert program.data[DATA_BASE] == 3.5

    def test_space_reserves_words(self):
        program = assemble(
            ".data\nbuf: .space 10\nafter: .word 7\n.text\nhalt"
        )
        assert program.address_of("after") == DATA_BASE + 40
        # .space leaves no explicit initialization
        assert DATA_BASE not in program.data

    def test_hex_word_values(self):
        program = assemble(".data\nx: .word 0x10\n.text\nhalt")
        assert program.data[DATA_BASE] == 16

    def test_negative_space_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nb: .space -1\n.text\nhalt")


class TestLabels:
    def test_text_label_resolution(self):
        program = assemble("main: j end\nnop\nend: halt")
        assert program.labels == {"main": 0, "end": 2}
        assert program.instructions[0].target == 2

    def test_label_on_own_line(self):
        program = assemble("start:\n  nop\n  halt")
        assert program.labels["start"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: halt")

    def test_undefined_branch_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("beq r1, r2, nowhere\nhalt")

    def test_undefined_data_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("la r1, missing\nhalt")


class TestEncodings:
    def test_three_register_format(self):
        program = assemble("add r3, r1, r2\nhalt")
        inst = program.instructions[0]
        assert inst.opclass == OpClass.IALU
        assert inst.rd == reg(3)
        assert inst.srcs == (reg(1), reg(2))

    def test_immediate_format(self):
        inst = assemble("addi r1, r2, -7\nhalt").instructions[0]
        assert inst.imm == -7

    def test_memory_operand(self):
        inst = assemble("lw r1, 8(r2)\nhalt").instructions[0]
        assert inst.opclass == OpClass.LOAD
        assert inst.rd == reg(1)
        assert inst.srcs == (reg(2),)
        assert inst.imm == 8

    def test_store_source_order_is_base_then_data(self):
        inst = assemble("sw r5, -4(r6)\nhalt").instructions[0]
        assert inst.opclass == OpClass.STORE
        assert inst.srcs == (reg(6), reg(5))
        assert inst.imm == -4

    def test_memory_operand_defaults_to_zero_displacement(self):
        inst = assemble("lw r1, (r2)\nhalt").instructions[0]
        assert inst.imm == 0

    def test_fp_registers(self):
        inst = assemble("fadd.d f1, f2, f3\nhalt").instructions[0]
        assert inst.rd == fp(1)
        assert inst.srcs == (fp(2), fp(3))
        assert inst.opclass == OpClass.FADD

    def test_fp_mul_precision_classes(self):
        single = assemble("fmul.s f1, f2, f3\nhalt").instructions[0]
        double = assemble("fmul.d f1, f2, f3\nhalt").instructions[0]
        assert single.opclass == OpClass.FMUL_SP
        assert double.opclass == OpClass.FMUL_DP

    def test_fli_float_immediate(self):
        inst = assemble("fli f1, 0.25\nhalt").instructions[0]
        assert inst.fimm == 0.25

    def test_jal_writes_r31(self):
        program = assemble("jal f\nhalt\nf: jr r31")
        assert program.instructions[0].rd == reg(31)
        assert program.instructions[0].opclass == OpClass.CALL
        assert program.instructions[2].opclass == OpClass.RETURN

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("# a comment\n\nnop  # trailing\nhalt")
        assert len(program) == 2


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("frobnicate r1, r2\nhalt")
        assert "frobnicate" in str(excinfo.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2\nhalt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, r99\nhalt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("lw r1, r2\nhalt")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nadd r1, r2, r3")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("nop\nbogus r1\nhalt")
        assert excinfo.value.line_no == 2

    def test_error_names_the_program(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("nop\nbogus r1\nhalt", name="lisp")
        err = excinfo.value
        assert err.name == "lisp"
        assert str(err).startswith("lisp: ")
        assert "bogus" in str(err)
        assert err.line_no == 2

    def test_anonymous_error_has_no_name_prefix(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("bogus r1\nhalt")
        assert excinfo.value.name is None
        assert not str(excinfo.value).startswith("<anonymous>")

    def test_with_name_rewraps(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("bogus r1\nhalt")
        renamed = excinfo.value.with_name("ker")
        assert renamed.name == "ker"
        assert str(renamed).startswith("ker: ")
        assert renamed.line_no == excinfo.value.line_no
