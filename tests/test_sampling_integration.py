"""Integration tests: sampling + cloaked processor + engine diagnostics."""

import pytest

from repro.core import CloakingConfig
from repro.pipeline import CloakedProcessor, Processor
from repro.trace.sampling import SamplingPlan
from repro.workloads import get_workload


class TestSampledCloakedRuns:
    def test_sampled_cloaked_run_completes(self, com_trace):
        plan = SamplingPlan(1, 2, observation=500)
        processor = CloakedProcessor(cloaking=CloakingConfig.paper_timing())
        result = processor.run(iter(com_trace), sampling=plan)
        assert result.instructions == len(com_trace)
        assert 0 < result.timing_instructions < len(com_trace)
        # the engine observed the whole stream, not just timing segments
        mem_ops = sum(1 for t in com_trace if t.is_mem)
        stats = processor.engine.stats
        assert stats.loads == sum(1 for t in com_trace if t.is_load)

    def test_sampled_speedup_close_to_full(self):
        """The paper: accuracy with sampling was 'very close, often
        identical'.  Our timing analogue: the measured speedup with a 1:2
        plan must approximate the unsampled speedup."""
        workload = get_workload("com")
        trace = list(workload.trace(scale=0.15))
        plan = SamplingPlan(1, 2, observation=2000)

        def speedup(sampling):
            base = Processor()
            cloaked = CloakedProcessor(cloaking=CloakingConfig.paper_timing())
            base.run(iter(trace), sampling=sampling)
            cloaked.run(iter(trace), sampling=sampling)
            return (cloaked.finalize("com")
                    .speedup_over(base.finalize("com")))

        full = speedup(None)
        sampled = speedup(plan)
        assert sampled == pytest.approx(full, abs=0.04)

    def test_sampled_engine_accuracy_close_to_full(self, com_trace):
        """Functional-mode warm-up keeps prediction state continuous, so
        coverage is identical whether or not timing is sampled."""
        plan = SamplingPlan(1, 3, observation=400)
        sampled = CloakedProcessor(cloaking=CloakingConfig.paper_timing())
        sampled.run(iter(com_trace), sampling=plan)
        unsampled = CloakedProcessor(cloaking=CloakingConfig.paper_timing())
        unsampled.run(iter(com_trace))
        assert sampled.engine.stats.coverage == pytest.approx(
            unsampled.engine.stats.coverage, abs=0.01)


class TestEngineDiagnostics:
    def test_describe_reports_occupancy(self, li_trace):
        from repro.core import CloakingEngine

        engine = CloakingEngine(CloakingConfig.paper_accuracy())
        engine.run(iter(li_trace))
        info = engine.describe()
        assert info["mode"] == "RAW+RAR"
        assert info["dpnt_entries"] > 0
        assert info["producer_entries"] <= info["dpnt_entries"]
        assert info["synonyms_allocated"] > 0
        assert info["ddt_rar_detected"] > 0
