"""Recovery-path coverage under adversarial mispredictions.

The paper's recovery policies (Section 5.6.1) only matter when the
predictor is wrong; these tests force it to be wrong for *every used
prediction* — the worst case the mechanism must survive — and check both
halves of the contract:

* **correctness**: committed architectural state still equals the
  functional interpreter's, through the differential oracle;
* **timing sanity**: every recovery policy completes, counts the
  misspeculations, and orders as the paper describes (squash pays at
  least as much as selective; the oracle policy never uses wrong values).
"""

from __future__ import annotations

import pytest

from repro.chaos.oracle import run_oracle
from repro.core import CloakingConfig, CloakingMode
from repro.pipeline import CloakedProcessor, ProcessorConfig
from repro.pipeline.recovery import RecoveryPolicy
from repro.workloads import get_workload

SCALE = 0.05

#: a value no kernel computes, planted into every full SF entry
POISON = 0x7EADBEEF


def poison_every_sf_entry(inst, engine):
    """Adversarial tap: every speculative value a consumer can obtain is
    wrong by the time the next instruction observes the SF."""
    for _, entry in engine.sf.entries():
        if entry.full and entry.value != POISON:
            entry.value = POISON


class TestAdversarialCommittedState:
    """Every prediction wrong → committed state must still be golden."""

    @pytest.mark.parametrize("abbrev", ["li", "com", "swm"])
    def test_committed_state_equals_functional_interpreter(self, abbrev):
        workload = get_workload(abbrev)
        outcome = run_oracle(workload, SCALE, [], 0,
                             pre_observe=poison_every_sf_entry)
        # the poison must actually have been exercised...
        assert outcome.speculated > 0
        assert outcome.misspeculated == outcome.speculated
        # ...and verification caught every single one of them.
        assert outcome.divergence is None

    def test_poison_without_verification_diverges(self):
        """Sanity check that the poison has teeth: skip verification and
        the same run corrupts architectural state immediately."""
        def trusting(observed, true_value):
            if observed is not None and observed.outcome.speculated:
                return observed.spec_value
            return true_value

        outcome = run_oracle(get_workload("li"), SCALE, [], 0,
                             pre_observe=poison_every_sf_entry,
                             commit_rule=trusting)
        assert outcome.divergence is not None


class TestRecoveryPolicyTiming:
    """All three policies survive a misspeculating kernel and order sanely."""

    def _simulate(self, recovery: RecoveryPolicy):
        workload = get_workload("go")  # naturally misspeculation-heavy
        processor = CloakedProcessor(
            ProcessorConfig(),
            cloaking=CloakingConfig.paper_timing(CloakingMode.RAW_RAR),
            recovery=recovery)
        return processor.run(workload.trace(SCALE), name=workload.abbrev), \
            processor

    def test_all_policies_complete_and_count(self):
        results = {}
        for recovery in RecoveryPolicy:
            result, processor = self._simulate(recovery)
            assert result.cycles > 0
            assert result.extra["recovery"] == recovery.value
            results[recovery] = (result, processor)

        selective, _ = results[RecoveryPolicy.SELECTIVE]
        squash, squash_proc = results[RecoveryPolicy.SQUASH]
        oracle, oracle_proc = results[RecoveryPolicy.ORACLE]
        # the kernel really misspeculates under these policies
        assert squash_proc.misspeculations > 0
        assert squash.extra["misspeculations"] == squash_proc.misspeculations
        # squash flushes from the wrong consumer on: never cheaper
        assert squash.cycles >= selective.cycles
        # the oracle policy refuses every wrong value
        assert oracle_proc.misspeculations == 0
        assert oracle.cycles <= squash.cycles

    def test_squash_redirect_advances_fetch(self):
        """The squash path must actually flush (redirect the front end),
        not just pay the selective penalty."""
        _, selective_proc = self._simulate(RecoveryPolicy.SELECTIVE)
        _, squash_proc = self._simulate(RecoveryPolicy.SQUASH)
        assert squash_proc.misspeculations == selective_proc.misspeculations
        assert squash_proc.result.cycles >= selective_proc.result.cycles
