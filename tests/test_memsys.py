"""Unit tests for the cache hierarchy and write buffers."""

import pytest

from repro.memsys.cache import Cache, CacheConfig
from repro.memsys.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.memsys.write_buffer import WriteBuffer


def small_cache(ways=2, blocks=16):
    return Cache(CacheConfig(size_bytes=ways * 4 * blocks, block_bytes=blocks,
                             ways=ways, hit_latency=2, name="test"))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.misses == 1
        assert cache.accesses == 2

    def test_same_block_hits(self):
        cache = small_cache(blocks=16)
        cache.access(0x100)
        assert cache.access(0x10C) is True  # same 16-byte block

    def test_adjacent_block_misses(self):
        cache = small_cache(blocks=16)
        cache.access(0x100)
        assert cache.access(0x110) is False

    def test_set_conflict_eviction(self):
        cache = small_cache(ways=2)  # 4 sets x 2 ways x 16B
        # Three blocks mapping to the same set (stride = sets*block = 64)
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x080)  # evicts 0x000
        assert cache.access(0x000) is False

    def test_lru_within_set(self):
        cache = small_cache(ways=2)
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)   # refresh
        cache.access(0x080)   # should evict 0x040
        assert cache.access(0x000) is True
        assert cache.access(0x040) is False

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(ways=1)
        cache.access(0x000, is_write=True)
        cache.access(0x040)   # evicts dirty block (4 sets: 0x40 -> set 0? )
        # stride to the same set for a 1-way cache with 8 sets: 8*16=128
        cache.clear()
        cache.access(0x000, is_write=True)
        cache.access(0x080, is_write=False)
        assert cache.writebacks >= 0  # structural smoke; precise below

    def test_contains_does_not_allocate(self):
        cache = small_cache()
        assert cache.contains(0x100) is False
        assert cache.misses == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, block_bytes=16, ways=2, hit_latency=1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=96, block_bytes=12, ways=2, hit_latency=1)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x100)
        cache.access(0x100)
        assert cache.miss_rate == pytest.approx(0.5)


class TestWriteBuffer:
    def test_write_combining(self):
        buffer = WriteBuffer(blocks=4, block_bytes=16, drain_latency=10)
        buffer.push(0x100, now=0)
        buffer.push(0x104, now=1)  # same block: combined
        assert buffer.combines == 1
        assert len(buffer) == 1

    def test_load_hit_on_buffered_block(self):
        buffer = WriteBuffer(blocks=4, block_bytes=16, drain_latency=10)
        buffer.push(0x100, now=0)
        assert buffer.probe(0x108, now=1) is True
        assert buffer.probe(0x200, now=1) is False

    def test_drain_after_latency(self):
        buffer = WriteBuffer(blocks=4, block_bytes=16, drain_latency=10)
        buffer.push(0x100, now=0)
        assert buffer.probe(0x100, now=5) is True
        assert buffer.probe(0x100, now=20) is False

    def test_full_buffer_stalls(self):
        buffer = WriteBuffer(blocks=2, block_bytes=16, drain_latency=100)
        buffer.push(0x000, now=0)
        buffer.push(0x100, now=0)
        done = buffer.push(0x200, now=0)
        assert done >= 100  # had to wait for the oldest entry to drain
        assert buffer.stalls == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(blocks=0)
        with pytest.raises(ValueError):
            WriteBuffer(blocks=4, block_bytes=12)


class TestHierarchy:
    def test_latency_tiers(self):
        hierarchy = MemoryHierarchy()
        cold = hierarchy.load(0x1000, now=0)
        config = hierarchy.config
        assert cold == (config.l1d.hit_latency + config.l2.hit_latency
                        + config.memory_latency)
        warm = hierarchy.load(0x1000, now=100)
        assert warm == config.l1d.hit_latency

    def test_l2_hit_latency(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x1000, now=0)
        # Evict from L1 (2-way, 1024 sets of 16B): two conflicting blocks.
        l1_stride = 32 * 1024 // 2
        hierarchy.load(0x1000 + l1_stride, now=10)
        hierarchy.load(0x1000 + 2 * l1_stride, now=20)
        latency = hierarchy.load(0x1000, now=30)
        assert latency == (hierarchy.config.l1d.hit_latency
                           + hierarchy.config.l2.hit_latency)

    def test_store_hit_is_fast(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x1000, now=0)
        assert hierarchy.store(0x1000, now=10) == hierarchy.config.l1d.hit_latency

    def test_fetch_uses_icache(self):
        hierarchy = MemoryHierarchy()
        cold = hierarchy.fetch(0x4000, now=0)
        warm = hierarchy.fetch(0x4000, now=10)
        assert cold > warm
        assert warm == hierarchy.config.l1i.hit_latency

    def test_load_hit_on_l1_l2_write_buffer(self):
        hierarchy = MemoryHierarchy()
        # A store miss pushes the block into the L1->L2 write buffer; a
        # subsequent load to a *different* L1 set... simplest observable:
        # buffer probe path returns an L1-level latency for a block that
        # just left L1.  Construct: store-miss allocates into L1 and
        # buffers; evict it from L1; the quick reload hits the buffer.
        hierarchy.store(0x1000, now=0)
        l1_stride = 32 * 1024 // 2
        hierarchy.load(0x1000 + l1_stride, now=1)
        hierarchy.load(0x1000 + 2 * l1_stride, now=2)
        latency = hierarchy.load(0x1000, now=3)
        assert latency <= (hierarchy.config.l1d.hit_latency
                           + hierarchy.config.l2.hit_latency)
