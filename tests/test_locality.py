"""Unit tests for the dependence-stream locality analyses (Figures 2, 7)."""

import pytest

from repro.dependence.locality import (
    AddressValueLocalityAnalysis,
    RARLocalityAnalysis,
    _MRUList,
)
from repro.isa.instructions import OpClass
from repro.trace.records import DynInst


def load(index, pc, addr, value=0):
    return DynInst(index, pc, OpClass.LOAD, rd=1, addr=addr, value=value)


def store(index, pc, addr, value=0):
    return DynInst(index, pc, OpClass.STORE, addr=addr, value=value)


class TestMRUList:
    def test_insert_and_promote(self):
        mru = _MRUList(capacity=3)
        assert mru.find_and_promote(1) is None
        assert mru.find_and_promote(2) is None
        assert mru.find_and_promote(1) == 1
        assert mru.items == [1, 2]

    def test_capacity_bound(self):
        mru = _MRUList(capacity=2)
        for item in (1, 2, 3):
            mru.find_and_promote(item)
        assert mru.items == [3, 2]
        assert mru.find_and_promote(1) is None


class TestRARLocality:
    def test_repeating_dependence_has_locality_one(self):
        analysis = RARLocalityAnalysis(max_n=4)
        # source pc=10 reads addr, sink pc=20 re-reads it; repeated.
        for i in range(10):
            analysis.observe(load(2 * i, pc=10, addr=4 * 100))
            analysis.observe(load(2 * i + 1, pc=20, addr=4 * 100))
        # sink events: first sink (pc=20) has no history; the 9 repeats hit
        # at position 0.  The source load's self-RAR also registers, giving
        # additional sink events for pc=10.
        assert analysis.locality(1) > 0.8
        assert analysis.locality(4) >= analysis.locality(1)

    def test_alternating_sources_need_larger_n(self):
        """A sink whose dependence alternates between two sources has a
        working set of two: locality(2) captures it, locality(1) cannot.

        The address is fresh every round — the *dependence* (PC pair)
        repeats even though the data moves, the core Section 2 observation.
        """
        analysis = RARLocalityAnalysis(max_n=4)
        for i in range(20):
            addr = 4 * (1000 + i)
            source_pc = 10 if i % 2 == 0 else 20
            analysis.observe(load(2 * i, pc=source_pc, addr=addr))
            analysis.observe(load(2 * i + 1, pc=30, addr=addr))
        loc1 = analysis.locality(1)
        loc2 = analysis.locality(2)
        assert loc1 == 0.0
        assert loc2 > 0.8

    def test_monotone_in_n(self):
        analysis = RARLocalityAnalysis(max_n=4)
        for i in range(50):
            analysis.observe(load(2 * i, pc=10 + (i % 3), addr=4 * (i % 5)))
            analysis.observe(load(2 * i + 1, pc=50, addr=4 * (i % 5)))
        values = [analysis.locality(n) for n in range(1, 5)]
        assert values == sorted(values)

    def test_n_bounds_validated(self):
        analysis = RARLocalityAnalysis(max_n=4)
        with pytest.raises(ValueError):
            analysis.locality(0)
        with pytest.raises(ValueError):
            analysis.locality(5)
        with pytest.raises(ValueError):
            RARLocalityAnalysis(max_n=0)

    def test_window_restriction_hides_distant_sources(self):
        wide = RARLocalityAnalysis(max_n=4, window=None)
        narrow = RARLocalityAnalysis(max_n=4, window=4)
        events = []
        for round_no in range(5):
            events.append(load(len(events), pc=10, addr=4 * 999))
            # eight unique addresses push 999 out of the narrow window
            for k in range(8):
                events.append(load(len(events), pc=20 + k, addr=4 * k))
            events.append(load(len(events), pc=30, addr=4 * 999))
        for event in events:
            wide.observe(event)
            narrow.observe(event)
        assert wide.sink_loads > narrow.sink_loads


class TestAddressValueLocality:
    def test_stable_address_counts_as_local(self):
        analysis = AddressValueLocalityAnalysis()
        for i in range(5):
            analysis.observe(load(i, pc=10, addr=400, value=7))
        assert analysis.address.loads == 5
        # first execution has no history; the remaining 4 are local
        assert analysis.address.local_nodep + analysis.address.local_rar == 4
        assert analysis.value.total_locality == pytest.approx(4 / 5)

    def test_changing_address_is_not_local(self):
        analysis = AddressValueLocalityAnalysis()
        for i in range(5):
            analysis.observe(load(i, pc=10, addr=400 + 4 * i, value=7))
        assert analysis.address.total_locality == 0.0
        assert analysis.value.total_locality == pytest.approx(4 / 5)

    def test_dependence_buckets(self):
        analysis = AddressValueLocalityAnalysis()
        analysis.observe(store(0, pc=1, addr=400, value=3))
        analysis.observe(load(1, pc=10, addr=400, value=3))   # RAW, no history
        # The store entry persists in the DDT (loads are recorded only when
        # no store holds the address), so the repeat load is also RAW.
        analysis.observe(load(2, pc=10, addr=400, value=3))   # RAW, local
        assert analysis.address.local_raw == 1
        assert analysis.address.local_rar == 0
        # A pure load-load pair lands in the RAR bucket.
        analysis.observe(load(3, pc=20, addr=800, value=5))
        analysis.observe(load(4, pc=20, addr=800, value=5))
        assert analysis.address.local_rar == 1

    def test_fraction_api(self):
        analysis = AddressValueLocalityAnalysis()
        analysis.observe(load(0, pc=10, addr=400, value=1))
        analysis.observe(load(1, pc=10, addr=400, value=1))
        assert analysis.address.fraction("rar") == pytest.approx(0.5)
        assert analysis.address.fraction("raw") == 0.0
        assert analysis.value.fraction("rar") == pytest.approx(0.5)
