"""Tests for chart renderers and the extension harness CLIs."""

import pytest

from repro.experiments import ext_distance, ext_hybrid, ext_predictors
from repro.experiments import fig2, fig5, fig6


class TestChartRenderers:
    def test_fig2_chart(self):
        rows = fig2.run(scale=0.01, workloads=["li", "swm"])
        chart = fig2.render_chart(rows)
        assert "locality" in chart
        assert chart.count("|") >= 8  # two bars per program, two delimiters

    def test_fig5_chart(self):
        rows = fig5.run(scale=0.01, workloads=["li"], sizes=(32, 128))
        chart = fig5.render_chart(rows, ddt_size=128)
        assert "DDT 128" in chart
        assert "RAW" in chart and "RAR" in chart

    def test_fig6_chart(self):
        rows = fig6.run(scale=0.01, workloads=["li"])
        chart = fig6.render_chart(rows)
        assert "2-bit adaptive" in chart
        assert "#" in chart

    def test_chart_flag_via_main(self, capsys):
        fig5.main(["--scale", "0.01", "--workloads", "li", "--chart"])
        out = capsys.readouterr().out
        assert "Figure 5 (DDT 128)" in out


class TestExtensionCLIs:
    @pytest.mark.parametrize("module", [ext_hybrid, ext_distance,
                                        ext_predictors])
    def test_main_runs(self, module, capsys):
        module.main(["--scale", "0.01", "--workloads", "li"])
        assert capsys.readouterr().out.strip()

    def test_report_card_main(self, capsys):
        from repro.experiments import report_card

        report_card.main(["--scale", "0.02",
                          "--workloads", "li", "com", "swm", "aps"])
        out = capsys.readouterr().out
        assert "criteria PASS" in out
