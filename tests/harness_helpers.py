"""A fault-injecting artefact module for the harness tests.

Registered under the name ``boom`` by ``tests/test_harness.py``; exposes
the same ``run``/``run_one``/``render`` interface as the real experiment
modules but fails on demand: the ``go`` cell raises, the ``m88`` cell
hard-exits its worker process (simulating a crash), the ``gcc`` cell
ignores SIGTERM and hangs (an unkillable-without-SIGKILL worker), the
``per`` cell sleeps for a long time *without* masking signals (a slow
but well-behaved job, for drain/kill drills), every other cell succeeds.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

RAISING_WORKLOAD = "go"
DYING_WORKLOAD = "m88"
HANGING_WORKLOAD = "gcc"
SLEEPING_WORKLOAD = "per"


@dataclass
class BoomRow:
    abbrev: str
    scale: float


def run(scale: float = 1.0,
        workloads: Optional[Sequence[str]] = None) -> List[BoomRow]:
    from repro.experiments.runner import select_workloads

    return [row for w in select_workloads(workloads)
            for row in run_one(w.abbrev, scale)]


def run_one(workload: str, scale: float, **kwargs) -> List[BoomRow]:
    if workload == RAISING_WORKLOAD:
        raise RuntimeError("injected failure")
    if workload == DYING_WORKLOAD:
        os._exit(13)
    if workload == HANGING_WORKLOAD:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(3600)
    if workload == SLEEPING_WORKLOAD:
        time.sleep(3600)
    return [BoomRow(abbrev=workload, scale=scale)]


def render(rows: List[BoomRow]) -> str:
    return "\n".join(f"{row.abbrev} {row.scale:g}" for row in rows)
