"""Unit tests for the base out-of-order timing model."""

import pytest

from repro.isa.instructions import OpClass
from repro.pipeline import Processor, ProcessorConfig
from repro.pipeline.functional_units import BandwidthLimiter, IssueBandwidth
from repro.trace.records import DynInst
from repro.trace.sampling import SamplingPlan


# Synthetic streams loop over a small PC window (like a real inner loop)
# so that instruction-cache behaviour does not dominate the effect under
# test.  An unbounded PC stream would cold-miss the I-cache on every block.
def _pc(index):
    return 0x1000 + 4 * (index % 64)


def alu(index, pc=None, rd=1, srcs=()):
    return DynInst(index, pc if pc is not None else _pc(index),
                   OpClass.IALU, rd=rd, srcs=srcs)


def load(index, addr, rd=1, srcs=(), pc=None):
    return DynInst(index, pc if pc is not None else _pc(index),
                   OpClass.LOAD, rd=rd, srcs=srcs, addr=addr, value=0)


def store(index, addr, srcs=(2, 3), pc=None):
    return DynInst(index, pc if pc is not None else _pc(index),
                   OpClass.STORE, srcs=srcs, addr=addr, value=0)


def branch(index, taken, pc=None):
    return DynInst(index, pc if pc is not None else _pc(index),
                   OpClass.BRANCH, srcs=(1,), taken=taken, target_pc=0x1000)


class TestBandwidth:
    def test_limiter_spills_to_next_cycle(self):
        limiter = BandwidthLimiter(2)
        assert [limiter.allocate(5) for _ in range(5)] == [5, 5, 6, 6, 7]

    def test_limiter_validation(self):
        with pytest.raises(ValueError):
            BandwidthLimiter(0)

    def test_issue_bandwidth_respects_class_limits(self):
        config = ProcessorConfig(issue_width=8,
                                 fu_limits={OpClass.IDIV: 1})
        bandwidth = IssueBandwidth(config)
        cycles = [bandwidth.allocate(0, OpClass.IDIV) for _ in range(3)]
        assert cycles == [0, 1, 2]
        # other classes are unaffected
        assert bandwidth.allocate(0, OpClass.IALU) == 0


class TestDataflowTiming:
    def test_independent_stream_reaches_issue_width(self):
        processor = Processor()
        # long enough that cold-start I-cache misses amortize away
        result = processor.run(alu(i, rd=(i % 16) + 1) for i in range(20000))
        assert result.ipc > 6.0

    def test_serial_chain_is_latency_bound(self):
        processor = Processor()
        # every instruction reads the previous one's destination
        result = processor.run(alu(i, rd=1, srcs=(1,)) for i in range(4000))
        assert result.ipc == pytest.approx(1.0, abs=0.05)

    def test_multiply_chain_slower_than_add_chain(self):
        def chain(cls):
            trace = [DynInst(i, _pc(i), cls, rd=1, srcs=(1,))
                     for i in range(2000)]
            return Processor().run(iter(trace)).cycles

        mul_trace = chain(OpClass.IMUL)
        add_trace = chain(OpClass.IALU)
        # latencies are 4 vs 1 cycles; warmup overhead dilutes the ratio
        assert mul_trace > 2.5 * add_trace

    def test_commit_width_bounds_ipc(self):
        config = ProcessorConfig(commit_width=2)
        result = Processor(config).run(
            alu(i, rd=(i % 16) + 1) for i in range(4000))
        assert result.ipc <= 2.01

    def test_window_size_limits_overlap(self):
        """With a serial miss at the head, a small window throttles more."""
        def run(window):
            config = ProcessorConfig(window_size=window)
            trace = []
            for i in range(0, 3000, 3):
                trace.append(load(i, addr=0x100000 + 64 * i, rd=1))
                trace.append(alu(i + 1, rd=2, srcs=(1,)))
                trace.append(alu(i + 2, rd=3, srcs=(2,)))
            return Processor(config).run(iter(trace)).cycles

        assert run(16) > run(128)


class TestBranches:
    def test_mispredicts_cost_cycles(self):
        # Same static branch alternating taken/not-taken at low history
        # correlation... use a pseudo-random pattern instead.
        import random
        rng = random.Random(7)
        pattern = [rng.random() < 0.5 for _ in range(3000)]
        trace_random = [branch(i, taken) for i, taken in enumerate(pattern)]
        trace_stable = [branch(i, True) for i in range(3000)]
        cycles_random = Processor().run(iter(trace_random)).cycles
        cycles_stable = Processor().run(iter(trace_stable)).cycles
        assert cycles_random > cycles_stable * 1.5

    def test_branch_stats_recorded(self):
        result = Processor().run(iter([branch(0, True), branch(1, True)]))
        assert result.branches == 2
        assert 0.0 <= result.branch_accuracy <= 1.0

    def test_call_return_pair_predicts(self):
        trace = []
        for i in range(0, 600, 2):
            pc = 0x1000 + 4 * i
            trace.append(DynInst(i, pc, OpClass.CALL, rd=31, taken=True,
                                 target_pc=0x2000))
            trace.append(DynInst(i + 1, 0x2000, OpClass.RETURN, srcs=(31,),
                                 taken=True, target_pc=pc + 4))
        result = Processor().run(iter(trace))
        assert result.branch_mispredicts == 0


class TestMemoryScheduling:
    def test_store_to_load_forwarding(self):
        """A load after a same-address store gets forwarded data, not the
        (cold, slow) memory value."""
        trace = [store(0, addr=0x2000), load(1, addr=0x2000, rd=1)]
        processor = Processor()
        result = processor.run(iter(trace))
        assert processor.lsq.loads_forwarded == 1
        assert processor.lsq.loads_from_memory == 0

    def test_unrelated_load_goes_to_memory(self):
        trace = [store(0, addr=0x2000), load(1, addr=0x4000, rd=1)]
        processor = Processor()
        processor.run(iter(trace))
        assert processor.lsq.loads_from_memory == 1

    def test_no_speculation_serializes_on_store_addresses(self):
        """Figure 10's base: loads wait for all preceding store addresses.
        A stream of stores (with slow addresses) then loads must run slower
        without memory dependence speculation."""
        def trace():
            out = []
            index = 0
            for i in range(500):
                # slow address generation: a dependent multiply chain
                out.append(DynInst(index, 0x1000, OpClass.IMUL, rd=4,
                                   srcs=(4,))); index += 1
                out.append(store(index, addr=0x2000 + 8 * i, srcs=(4, 3),
                                 pc=0x1004)); index += 1
                out.append(load(index, addr=0x8000 + 8 * i, rd=1,
                                pc=0x1008)); index += 1
                out.append(DynInst(index, 0x100C, OpClass.IALU, rd=2,
                                   srcs=(1,))); index += 1
            return out

        spec = Processor(ProcessorConfig(memory_speculation=True))
        nospec = Processor(ProcessorConfig(memory_speculation=False))
        cycles_spec = spec.run(iter(trace())).cycles
        cycles_nospec = nospec.run(iter(trace())).cycles
        assert cycles_nospec > cycles_spec

    def test_lsq_width_binds_memory_bandwidth(self):
        # a small, warm address pool so cache misses do not dominate
        trace = [load(i, addr=0x2000 + 16 * (i % 32), rd=(i % 8) + 1)
                 for i in range(2000)]
        wide = Processor(ProcessorConfig(lsq_width=8)).run(iter(trace)).cycles
        narrow = Processor(ProcessorConfig(lsq_width=1)).run(iter(trace)).cycles
        assert narrow > wide * 1.5


class TestSampling:
    def test_sampled_run_times_fewer_instructions(self, li_trace):
        plan = SamplingPlan(1, 2, observation=500)
        processor = Processor()
        result = processor.run(iter(li_trace), sampling=plan)
        assert result.instructions == len(li_trace)
        assert result.timing_instructions < len(li_trace)
        assert result.timing_instructions > 0
        assert result.cycles > 0

    def test_sampled_ipc_close_to_full(self, com_trace):
        full = Processor().run(iter(com_trace)).ipc
        sampled = Processor().run(
            iter(com_trace), sampling=SamplingPlan(1, 1, observation=500)).ipc
        assert sampled == pytest.approx(full, rel=0.35)


class TestSimResult:
    def test_speedup_requires_matching_streams(self):
        a = Processor().run(alu(i, rd=1) for i in range(100))
        b = Processor().run(alu(i, rd=1) for i in range(200))
        with pytest.raises(ValueError):
            b.speedup_over(a)

    def test_speedup_identity(self):
        a = Processor().run(alu(i, rd=1) for i in range(100))
        b = Processor().run(alu(i, rd=1) for i in range(100))
        assert b.speedup_over(a) == pytest.approx(1.0)
